"""Packing core: tenants, servers, placement state, CUBEFIT."""

from .tenant import Tenant, Replica, TenantSequence, make_tenants, LOAD_EPS
from .server import Server, UNIT_CAPACITY
from .placement import PlacementState, DirtyTracker
from .classes import SizeClassifier
from .config import (CubeFitConfig, TINY_POLICY_ALPHA,
                     TINY_POLICY_LAST_CLASS, TINY_POLICIES)
from .cube import ClassCubes, SlotAddress, to_digits, from_digits, \
    rotate_right
from .multireplica import MultiReplica, MultiReplicaPolicy
from .cubefit import CubeFit
from .validation import (audit, brute_force_audit, exact_failure_audit,
                         domain_failure_audit, AuditReport, Violation,
                         IncrementalAuditor,
                         shared_tenant_counts, max_shared_tenants)
from .recovery import RecoveryPlanner, RecoveryPlan, ReplicaMove

__all__ = [
    "Tenant", "Replica", "TenantSequence", "make_tenants", "LOAD_EPS",
    "Server", "UNIT_CAPACITY", "PlacementState", "DirtyTracker",
    "SizeClassifier",
    "CubeFitConfig", "TINY_POLICY_ALPHA", "TINY_POLICY_LAST_CLASS",
    "TINY_POLICIES", "ClassCubes", "SlotAddress", "to_digits",
    "from_digits", "rotate_right", "MultiReplica", "MultiReplicaPolicy",
    "CubeFit", "audit", "brute_force_audit", "exact_failure_audit",
    "domain_failure_audit", "IncrementalAuditor",
    "AuditReport", "Violation", "shared_tenant_counts",
    "max_shared_tenants", "RecoveryPlanner", "RecoveryPlan",
    "ReplicaMove",
]
