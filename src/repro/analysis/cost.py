"""Operating-cost model (Table I).

The paper prices servers at Amazon EC2's c4.4xlarge on-demand rate of
$0.822 per hour (an instance size comparable to its testbed machines) and
assumes continuous, year-round operation, so the yearly saving of using
``s`` fewer servers is ``s * 0.822 * 24 * 365``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: On-demand hourly price of a c4.4xlarge instance used by the paper.
C4_4XLARGE_HOURLY_USD = 0.822

#: Hours of continuous operation per (non-leap) year.
HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class CostModel:
    """Converts server counts into yearly dollar figures."""

    hourly_usd: float = C4_4XLARGE_HOURLY_USD
    hours_per_year: int = HOURS_PER_YEAR

    def __post_init__(self) -> None:
        if self.hourly_usd <= 0:
            raise ConfigurationError(
                f"hourly price must be positive, got {self.hourly_usd}")
        if self.hours_per_year <= 0:
            raise ConfigurationError(
                f"hours_per_year must be positive, got {self.hours_per_year}")

    def yearly_cost(self, servers: float) -> float:
        """Yearly cost of running ``servers`` machines continuously."""
        if servers < 0:
            raise ConfigurationError(
                f"server count must be non-negative, got {servers}")
        return servers * self.hourly_usd * self.hours_per_year

    def yearly_savings(self, baseline_servers: float,
                       candidate_servers: float) -> float:
        """Yearly dollars saved by the candidate over the baseline."""
        return self.yearly_cost(baseline_servers) \
            - self.yearly_cost(candidate_servers)
