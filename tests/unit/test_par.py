"""Unit tests for the parallel experiment engine (repro.par)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import EventJournal, MetricsRegistry, absorb_snapshot
from repro.par import derive_seed, fork_available, pmap, validate_jobs
from repro.par import pool as par_pool


def square(item, obs):
    if obs is not None:
        obs.counter("calls").inc()
        obs.histogram("value", (1.0, 10.0)).observe(float(item))
        obs.emit("squared", item=item)
    return item * item


class TestValidateJobs:
    def test_accepts_positive_integers(self):
        assert validate_jobs(1) == 1
        assert validate_jobs(16) == 16

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", None, True, False])
    def test_rejects_non_positive_and_non_int(self, bad):
        with pytest.raises(ConfigurationError):
            validate_jobs(bad)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_varies_with_index_and_base(self):
        seeds = {derive_seed(base, index)
                 for base in range(4) for index in range(16)}
        assert len(seeds) == 4 * 16

    def test_plain_int(self):
        assert isinstance(derive_seed(0, 0), int)


class TestPmap:
    def test_results_in_item_order(self):
        assert pmap(square, [3, 1, 2], jobs=1) == [9, 1, 4]
        if fork_available():
            assert pmap(square, [3, 1, 2], jobs=3) == [9, 1, 4]

    def test_empty_items(self):
        assert pmap(square, [], jobs=4) == []

    def test_single_item_runs_inline(self):
        assert pmap(square, [5], jobs=8) == [25]

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            pmap(square, [1, 2], jobs=0)

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_obs_identical_across_jobs(self, jobs):
        registry = MetricsRegistry(journal=EventJournal())
        results = pmap(square, [1, 2, 3, 4], jobs=jobs, obs=registry)
        assert results == [1, 4, 9, 16]
        snapshot = registry.snapshot()
        assert snapshot["calls"]["value"] == 4
        assert snapshot["value"]["count"] == 4
        assert snapshot["value"]["total"] == 10.0
        assert snapshot["value"]["min"] == 1.0
        assert snapshot["value"]["max"] == 4.0
        events = [(e.type, e.data) for e in registry.journal]
        assert events == [("squared", {"item": i}) for i in (1, 2, 3, 4)]
        # Re-emitted events are renumbered coherently by the parent.
        assert [e.seq for e in registry.journal] == [0, 1, 2, 3]

    def test_without_obs_fn_sees_none(self):
        seen = []

        def spy(item, obs):
            seen.append(obs)
            return item

        pmap(spy, [1, 2], jobs=1)
        assert seen == [None, None]

    def test_exceptions_propagate_serial_and_parallel(self):
        def boom(item, obs):
            raise ValueError(f"item {item}")

        with pytest.raises(ValueError):
            pmap(boom, [1, 2], jobs=1)
        if fork_available():
            with pytest.raises(ValueError):
                pmap(boom, [1, 2], jobs=2)

    def test_nested_pmap_degrades_to_serial(self, monkeypatch):
        # Simulate being inside a worker: nesting must not fork again.
        monkeypatch.setattr(par_pool, "_IN_WORKER", True)
        assert pmap(square, [2, 3], jobs=4) == [4, 9]

    def test_lambda_and_closure_items_work_parallel(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        offset = 10
        results = pmap(lambda item, obs: item + offset, [1, 2, 3],
                       jobs=2)
        assert results == [11, 12, 13]


class TestAbsorbSnapshot:
    def test_counters_sum_gauges_overwrite(self):
        source = MetricsRegistry()
        source.counter("c").inc(3)
        source.gauge("g").set(1.5)
        target = MetricsRegistry()
        target.counter("c").inc(2)
        absorb_snapshot(target, source.snapshot())
        absorb_snapshot(target, source.snapshot())
        assert target.counter("c").value == 8
        assert target.gauge("g").value == 1.5

    def test_histograms_merge_bucketwise(self):
        source = MetricsRegistry()
        histogram = source.histogram("h", (1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        target = MetricsRegistry()
        target.histogram("h", (1.0, 2.0)).observe(1.2)
        absorb_snapshot(target, source.snapshot())
        merged = target.histogram("h")
        assert merged.count == 4
        assert merged.counts == [1, 2, 1]
        assert merged.min == 0.5
        assert merged.max == 99.0
        assert merged.total == pytest.approx(0.5 + 1.5 + 99.0 + 1.2)

    def test_empty_histogram_does_not_pollute_min_max(self):
        source = MetricsRegistry()
        source.histogram("h", (1.0,))
        target = MetricsRegistry()
        target.histogram("h", (1.0,)).observe(5.0)
        absorb_snapshot(target, source.snapshot())
        merged = target.histogram("h")
        assert merged.count == 1
        assert merged.min == 5.0

    def test_bucket_mismatch_raises(self):
        source = MetricsRegistry()
        source.histogram("h", (1.0, 2.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("h", (5.0,)).observe(0.5)
        with pytest.raises(ConfigurationError):
            absorb_snapshot(target, source.snapshot())

    def test_kind_mismatch_raises(self):
        source = MetricsRegistry()
        source.counter("x").inc()
        target = MetricsRegistry()
        target.gauge("x").set(1.0)
        with pytest.raises(ConfigurationError):
            absorb_snapshot(target, source.snapshot())


@pytest.mark.skipif(not fork_available(), reason="requires fork")
class TestPoolTeardown:
    """A parent-side failure mid-collection must terminate and reap
    every forked worker — the regression where workers outlived a
    parent that raised while absorbing snapshots (zombies holding
    orphaned result pipes)."""

    def _child_pids(self, tmp_path):
        return {int(p.read_text()) for p in tmp_path.glob("pid-*")
                if p.read_text().strip()}

    def _assert_all_dead(self, pids, timeout=10.0):
        import os
        import time
        assert pids, "workers never started"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            alive = set()
            for pid in pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue  # terminated AND reaped
                alive.add(pid)
            if not alive:
                return
            time.sleep(0.05)
        raise AssertionError(
            f"worker pids still alive after parent failure: "
            f"{sorted(alive)}")

    def test_parent_absorb_failure_reaps_workers(self, tmp_path,
                                                 monkeypatch):
        import os
        import time

        def work(item, registry):
            (tmp_path / f"pid-{item}").write_text(str(os.getpid()))
            if registry is not None:
                registry.counter("n").inc()
            if item > 0:
                time.sleep(30.0)  # outlives the test unless terminated
            return item

        def broken_absorb(target, snapshot):
            raise RuntimeError("parent failed mid-collection")

        monkeypatch.setattr(par_pool, "absorb_snapshot", broken_absorb)
        obs = MetricsRegistry()
        with pytest.raises(RuntimeError, match="mid-collection"):
            pmap(work, list(range(6)), jobs=3, obs=obs)
        self._assert_all_dead(self._child_pids(tmp_path))

    def test_worker_exception_reaps_workers(self, tmp_path):
        import os
        import time

        def work(item, registry):
            (tmp_path / f"pid-{item}").write_text(str(os.getpid()))
            if item == 0:
                time.sleep(0.2)  # let the others start first
                raise ValueError("worker died")
            time.sleep(30.0)
            return item

        with pytest.raises(ValueError, match="worker died"):
            pmap(work, list(range(6)), jobs=3)
        self._assert_all_dead(self._child_pids(tmp_path))

    def test_success_path_reaps_workers(self, tmp_path):
        import os

        def work(item, registry):
            (tmp_path / f"pid-{item}").write_text(str(os.getpid()))
            return item * 2

        assert pmap(work, list(range(6)), jobs=3) == \
            [0, 2, 4, 6, 8, 10]
        self._assert_all_dead(self._child_pids(tmp_path))
