#!/usr/bin/env python
"""Coverage floor ratchet.

Compares the total statement coverage of ``src/repro`` — as reported by
``coverage json`` — against the committed floor in
``tools/coverage_floor.json`` and fails if coverage dropped below it.
The floor only moves *up*: when real coverage has risen and you want to
lock in the gain, re-run with ``--update``.

Usage (mirrors the CI steps)::

    coverage run --source=src/repro -m pytest -q
    coverage json -o coverage.json
    python tools/check_coverage.py coverage.json
    python tools/check_coverage.py coverage.json --update   # ratchet up

The floor deliberately sits a few points below measured coverage so a
refactor that moves lines around does not flake the gate; see
docs/testing.md for the policy.
"""

import argparse
import json
import math
import sys
from pathlib import Path

FLOOR_FILE = Path(__file__).resolve().parent / "coverage_floor.json"


def read_percent(report_path: Path) -> float:
    with open(report_path) as fh:
        report = json.load(fh)
    try:
        return float(report["totals"]["percent_covered"])
    except (KeyError, TypeError) as exc:
        raise SystemExit(
            f"{report_path}: not a coverage.py JSON report "
            f"(missing totals.percent_covered): {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path,
                        help="coverage.py JSON report (coverage json -o ...)")
    parser.add_argument("--update", action="store_true",
                        help="raise the committed floor to the current "
                             "measurement (never lowers it)")
    args = parser.parse_args(argv)

    percent = read_percent(args.report)
    floor_data = json.loads(FLOOR_FILE.read_text())
    floor = float(floor_data["floor_percent"])

    if args.update:
        new_floor = math.floor(percent)
        if new_floor <= floor:
            print(f"floor stays at {floor:.0f}% "
                  f"(measured {percent:.2f}%)")
            return 0
        floor_data["floor_percent"] = new_floor
        FLOOR_FILE.write_text(json.dumps(floor_data, indent=2) + "\n")
        print(f"floor ratcheted {floor:.0f}% -> {new_floor}% "
              f"(measured {percent:.2f}%)")
        return 0

    if percent < floor:
        print(f"FAIL: src/repro statement coverage {percent:.2f}% is "
              f"below the committed floor {floor:.0f}% "
              f"({FLOOR_FILE.name}). Add tests for what you added, or "
              f"— only as a deliberate decision — lower the floor.",
              file=sys.stderr)
        return 1
    print(f"OK: coverage {percent:.2f}% >= floor {floor:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
