"""Struct-of-arrays mirror of placement state (the *array core*).

:class:`~repro.core.placement.PlacementState` keeps exact per-server
state in Python objects and dicts; every feasibility probe then pays a
chain of attribute lookups and memo-dict probes per server.  This module
mirrors the quantities the hot paths actually read into flat numpy
vectors — per server id:

* ``capacity`` and ``load`` (the bin level),
* the memoized worst-case failover load (the paper's top-``f``
  shared-load sum),
* ``headroom = capacity - load`` and the robust availability
  ``avail = headroom - worst_failover``,
* the replica count and an eligibility mask (CUBEFIT maturity).

The vectors are kept in sync *incrementally* through the placement's
existing invalidation stream (:meth:`PlacementState.dirty_tracker`):
each mutation marks the affected servers, and the core refreshes
exactly those — eagerly before a vector query (:meth:`sync`), or lazily
per server id on scalar reads (:meth:`scalar`), so probe-heavy
algorithms never pay for servers they are not looking at.

Crucially the worst-failover entries are **assigned from**
:meth:`PlacementState.worst_failover_load` — never maintained by
incremental float arithmetic — so a scalar read from the core is
bit-identical to the dict path and the array core can never drift the
screened-feasibility decisions of
:func:`repro.algorithms.base.robust_after_placement`.  The
``REPRO_ARRAY_CORE`` switch (on by default) disables the whole layer for
differential testing: the property suite replays identical workloads
with the core on and off and demands identical packings and identical
``feasibility.*`` accounting.

:meth:`ArrayCore.batch_screen` is the vectorized face of PR 4's
screened feasibility: one pass classifies every server as
screen-feasible / screen-infeasible / ambiguous using the same
``1e-9`` guard band; only the ambiguous band needs the scalar exact
``worst_shared_sum`` (see
:func:`repro.algorithms.base.batch_robust_after_placement` for the
resolver that drops to it).

The ``array_core.desync`` failpoint corrupts a worst-failover value as
it is written into the vector (a simulated stale read).  The default
float mutator *inflates* the value, which keeps the screen conservative
— a desynced core may refuse placements but never admits a
non-robust one — so under chaos the conformance contract (typed error
XOR audit-clean) holds on the audit-clean side; ``raise``/``crash``
policies exercise the typed side.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Iterable, Iterator, Set, Tuple, TYPE_CHECKING

import numpy as np

from .. import faults
from ..errors import ConfigurationError, PlacementError
from .tenant import LOAD_EPS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .placement import PlacementState

#: Environment switch for the array-core layer (on unless "0"/"false"/...).
ARRAY_CORE_ENV_VAR = "REPRO_ARRAY_CORE"

#: Safety margin on the screened feasibility bounds (see
#: :func:`repro.algorithms.base.robust_after_placement`): decisions
#: closer than this to a cached bound fall into the ambiguous band and
#: are settled by the exact top-``f`` sum.
SCREEN_MARGIN = 1e-9

#: :meth:`ArrayCore.batch_screen` verdict codes.
FEASIBLE = np.int8(1)
INFEASIBLE = np.int8(-1)
AMBIGUOUS = np.int8(0)


def _env_enabled() -> bool:
    return os.environ.get(ARRAY_CORE_ENV_VAR, "").strip().lower() \
        not in ("0", "false", "no", "off")


_ENABLED = _env_enabled()


def enabled() -> bool:
    """Whether new indexes/placements build array cores."""
    return _ENABLED


def set_enabled(value: bool) -> bool:
    """Set the switch; returns the previous value.

    Only affects *newly constructed* cores/indexes — live objects keep
    the engine they were built with (that is what makes on/off
    differential runs meaningful).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(value)
    return previous


@contextmanager
def overridden(value: bool) -> Iterator[None]:
    """Scoped :func:`set_enabled` (the differential-test helper)."""
    previous = set_enabled(value)
    try:
        yield
    finally:
        set_enabled(previous)


class ArrayCore:
    """Per-``failures`` struct-of-arrays view over one placement.

    Two usage modes share the implementation:

    * ``eligibility=True`` — owned by a
      :class:`~repro.algorithms.base.ServerIndex`: servers are tracked
      explicitly via :meth:`track`, ineligible servers keep the
      ``avail = -inf`` sentinel (one float compare doubles as the
      eligibility filter) and are skipped by :meth:`sync`, exactly the
      PR 4 semantics.  The index *registers* its core with the
      placement (:meth:`PlacementState.register_array_core`), so the
      scalar probe path (:func:`~repro.algorithms.base
      .robust_after_placement`) reads ``headroom``/``worst_failover``
      out of the very vectors the index's candidate queries keep
      synced — one set of arrays per failure budget, no duplicate
      bookkeeping.
    * ``eligibility=False`` — standalone: every placement server is
      tracked automatically on sync, for direct :meth:`batch_screen`
      use over a whole placement without an index.
    """

    _GROW = 1024

    def __init__(self, placement: "PlacementState", failures: int,
                 eligibility: bool = False) -> None:
        if failures < 0:
            raise ConfigurationError(
                f"failures must be non-negative, got {failures}")
        self.placement = placement
        self.failures = failures
        self._explicit_eligibility = eligibility
        n = self._GROW
        self._cap = np.zeros(n, dtype=np.float64)
        self._load = np.zeros(n, dtype=np.float64)
        self._wfl = np.zeros(n, dtype=np.float64)
        self._avail = np.full(n, -np.inf, dtype=np.float64)
        self._nrep = np.zeros(n, dtype=np.int64)
        self._eligible = np.zeros(n, dtype=bool)
        self.size = 0
        self._tracker = placement.dirty_tracker()
        #: Drained-but-unrefreshed ids (the lazy scalar-read mode).
        self._pending: Set[int] = set()

    def close(self) -> None:
        """Unsubscribe from the placement's invalidation stream."""
        self._tracker.close()

    # ------------------------------------------------------------------
    # Growth / tracking
    # ------------------------------------------------------------------
    def _ensure(self, server_id: int) -> None:
        while server_id >= len(self._load):
            grow = self._GROW
            self._cap = np.concatenate(
                [self._cap, np.zeros(grow, dtype=np.float64)])
            self._load = np.concatenate(
                [self._load, np.zeros(grow, dtype=np.float64)])
            self._wfl = np.concatenate(
                [self._wfl, np.zeros(grow, dtype=np.float64)])
            self._avail = np.concatenate(
                [self._avail, np.full(grow, -np.inf, dtype=np.float64)])
            self._nrep = np.concatenate(
                [self._nrep, np.zeros(grow, dtype=np.int64)])
            self._eligible = np.concatenate(
                [self._eligible, np.zeros(grow, dtype=bool)])
        self.size = max(self.size, server_id + 1)

    def track(self, server_id: int, eligible: bool = True) -> None:
        """Start mirroring ``server_id`` (must exist in the placement)."""
        self._ensure(server_id)
        # Capacity is fixed at server creation; mirror it once here so
        # refresh never re-writes it.
        self._cap[server_id] = self.placement._servers[server_id].capacity
        self._eligible[server_id] = eligible
        self.refresh((server_id,))

    def set_eligible(self, server_id: int, eligible: bool) -> None:
        self._ensure(server_id)
        if bool(self._eligible[server_id]) == eligible:
            return
        self._eligible[server_id] = eligible
        self.refresh((server_id,))

    def is_eligible(self, server_id: int) -> bool:
        return server_id < self.size and bool(self._eligible[server_id])

    # ------------------------------------------------------------------
    # Incremental sync
    # ------------------------------------------------------------------
    def refresh(self, server_ids: Iterable[int]) -> None:
        """Recompute the vectors for the given (tracked) servers.

        Ineligible servers keep ``avail = -inf`` and skip the
        worst-failover recomputation — candidate queries cannot return
        them, and their vectors are rebuilt the moment
        :meth:`set_eligible` promotes them.  Only the mutable hot
        quantities are written here (load, worst-failover,
        availability); capacity is mirrored once at :meth:`track` time
        and headroom / replica counts are derived on read, which keeps
        the per-server refresh at three array writes — the incremental
        cost that every candidate-query sync pays.
        """
        placement = self.placement
        servers = placement._servers
        wfl_of = placement.worst_failover_load
        failures = self.failures
        size = self.size
        eligible = self._eligible
        failpoints = faults.FAILPOINTS
        for sid in server_ids:
            if sid >= size:
                continue
            server = servers[sid]
            load = server.load
            self._load[sid] = load
            if eligible[sid]:
                value = wfl_of(sid, failures)
                if failpoints._active:
                    value = failpoints.corrupt("array_core.desync", value)
                self._wfl[sid] = value
                self._avail[sid] = (server.capacity - load) - value
            else:
                self._avail[sid] = -np.inf

    def sync(self) -> None:
        """Eagerly refresh every server mutated since the last query."""
        tracker = self._tracker
        pending = self._pending
        if tracker._dirty:
            pending |= tracker.drain()
        if not pending:
            return
        if not self._explicit_eligibility:
            for sid in pending:
                self._auto_track(sid)
        self.refresh(pending)
        pending.clear()

    def _auto_track(self, server_id: int) -> None:
        """Automatic tracking (standalone mode)."""
        if server_id >= self.size:
            self._ensure(server_id)
        self._cap[server_id] = self.placement._servers[server_id].capacity
        self._eligible[server_id] = True

    def scalar(self, server_id: int) -> Tuple[float, float]:
        """``(headroom, worst_failover)`` of one server, lazily synced.

        Probes of servers untouched since the last refresh read straight
        out of the vectors (as plain Python floats — downstream float
        arithmetic is much cheaper than on numpy scalars).  Dirty,
        untracked or ineligible servers are answered from the placement
        — the same memoized values a refresh would assign, so the
        result is identical — without writing the vectors, and dirty
        ids stay pending for the next vector query: a probe after a
        mutation costs O(1) regardless of how many servers the mutation
        touched, and pure scalar workloads never pay for array writes
        at all.
        """
        # Membership tests only — the dirty set is left for the next
        # vector query to drain, so a scalar probe never allocates.
        if server_id not in self._tracker._dirty \
                and server_id not in self._pending \
                and server_id < self.size \
                and self._eligible[server_id]:
            return (self._cap.item(server_id)
                    - self._load.item(server_id),
                    self._wfl.item(server_id))
        placement = self.placement
        try:
            server = placement._servers[server_id]
        except KeyError:
            raise PlacementError(
                f"no such server: {server_id}") from None
        if self._explicit_eligibility and server_id >= self.size:
            raise PlacementError(
                f"server {server_id} is not tracked by this index")
        value = placement.worst_failover_load(server_id, self.failures)
        if faults.FAILPOINTS._active:
            value = faults.FAILPOINTS.corrupt("array_core.desync", value)
        return server.capacity - server.load, value

    # ------------------------------------------------------------------
    # Vector reads (tests / reporting)
    # ------------------------------------------------------------------
    def loads(self) -> np.ndarray:
        """Per-server load vector (synced view, length :attr:`size`)."""
        self.sync()
        return self._load[:self.size]

    def worst_failovers(self) -> np.ndarray:
        self.sync()
        return self._wfl[:self.size]

    def avails(self) -> np.ndarray:
        self.sync()
        return self._avail[:self.size]

    def headrooms(self) -> np.ndarray:
        """Per-server ``capacity - load`` (derived; not stored)."""
        self.sync()
        n = self.size
        return self._cap[:n] - self._load[:n]

    def replica_counts(self) -> np.ndarray:
        """Per-server replica counts, rebuilt on read.

        Counts are reporting-only, so they are not maintained by the
        incremental refresh (that would tax every candidate-query
        sync); this recounts the tracked prefix from the placement.
        """
        self.sync()
        servers = self.placement._servers
        for sid in range(self.size):
            server = servers.get(sid)
            self._nrep[sid] = 0 if server is None else len(server)
        return self._nrep[:self.size]

    def eligibles(self) -> np.ndarray:
        self.sync()
        return self._eligible[:self.size]

    # ------------------------------------------------------------------
    # Vectorized screening
    # ------------------------------------------------------------------
    def batch_screen(self, replica_load: float, n_bumped: int = 0,
                     extra_reserve: float = 0.0) -> np.ndarray:
        """Classify every tracked server for hosting one replica.

        Returns an ``int8`` array of length :attr:`size`:
        :data:`FEASIBLE` (+1) where the sufficient bound accepts,
        :data:`INFEASIBLE` (-1) where the necessary bound rejects, and
        :data:`AMBIGUOUS` (0) in between — exactly the bounds of
        :func:`repro.algorithms.base.robust_after_placement` with
        ``n_bumped`` anticipated shared-load bumps (placed siblings
        plus future siblings), evaluated in one vectorized pass.
        Ineligible servers are reported infeasible.

        Ambiguous entries must be settled by the exact
        ``worst_shared_sum``; see
        :func:`repro.algorithms.base.batch_robust_after_placement`.
        """
        for name, value in (("replica_load", replica_load),
                            ("extra_reserve", extra_reserve)):
            if not math.isfinite(value):
                raise ConfigurationError(
                    f"{name} must be finite, got {value!r}")
        if n_bumped < 0:
            raise ConfigurationError(
                f"n_bumped must be non-negative, got {n_bumped}")
        self.sync()
        n = self.size
        verdict = np.zeros(n, dtype=np.int8)
        if n == 0:
            return verdict
        # Mirror the scalar screen's float expressions operation for
        # operation so batch and scalar classifications are bit-equal.
        empty_after = ((self._cap[:n] - self._load[:n]) - replica_load) \
            - extra_reserve
        failures = self.failures
        if failures <= 0:
            feasible = empty_after + LOAD_EPS >= 0.0
            verdict[feasible] = FEASIBLE
            verdict[~feasible] = INFEASIBLE
        else:
            wfl = self._wfl[:n]
            delta = replica_load * min(failures, n_bumped)
            infeasible = empty_after + LOAD_EPS < wfl - SCREEN_MARGIN
            feasible = empty_after >= (wfl + SCREEN_MARGIN) + delta
            verdict[feasible] = FEASIBLE
            verdict[infeasible] = INFEASIBLE
        verdict[~self._eligible[:n]] = INFEASIBLE
        return verdict
