"""Unit tests for the workload distributions."""

import numpy as np
import pytest

from repro.workloads.distributions import (DiscreteUniformClients,
                                           ModelLoad, NormalizedClients,
                                           TraceLoads, UniformLoad,
                                           ZipfClients)
from repro.workloads.loadmodel import LinearLoadModel
from repro.errors import ConfigurationError


def rng():
    return np.random.default_rng(0)


class TestUniformLoad:
    def test_range(self):
        dist = UniformLoad(max_load=0.4)
        samples = dist.sample(rng(), 5000)
        assert samples.min() > 0.0
        assert samples.max() <= 0.4
        assert samples.mean() == pytest.approx(0.2, abs=0.01)

    def test_name(self):
        assert UniformLoad(0.2).name == "uniform(0,0.2]"

    @pytest.mark.parametrize("bad", [0.0, 1.5, -0.3])
    def test_invalid_max(self, bad):
        with pytest.raises(ConfigurationError):
            UniformLoad(max_load=bad)

    def test_sample_one(self):
        assert 0 < UniformLoad(1.0).sample_one(rng()) <= 1.0


class TestDiscreteUniformClients:
    def test_range_and_coverage(self):
        dist = DiscreteUniformClients(1, 15)
        samples = dist.sample(rng(), 5000)
        assert samples.min() == 1
        assert samples.max() == 15
        assert set(np.unique(samples)) == set(range(1, 16))

    def test_equiprobable(self):
        samples = DiscreteUniformClients(1, 4).sample(rng(), 40000)
        counts = np.bincount(samples)[1:]
        assert counts.min() > 0.9 * counts.max()

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            DiscreteUniformClients(5, 4)
        with pytest.raises(ConfigurationError):
            DiscreteUniformClients(0, 4)


class TestZipfClients:
    def test_bounded_support(self):
        dist = ZipfClients(exponent=3.0, max_clients=52)
        samples = dist.sample(rng(), 5000)
        assert samples.min() >= 1
        assert samples.max() <= 52

    def test_heavy_skew_toward_one(self):
        dist = ZipfClients(exponent=3.0, max_clients=52)
        samples = dist.sample(rng(), 10000)
        assert (samples == 1).mean() > 0.7  # 1/zeta(3) ~ 0.83

    def test_pmf_normalized_and_decreasing(self):
        dist = ZipfClients(exponent=2.0, max_clients=10)
        pmf = dist.pmf
        assert pmf.sum() == pytest.approx(1.0)
        assert all(a > b for a, b in zip(pmf, pmf[1:]))

    def test_mean_matches_pmf(self):
        dist = ZipfClients(exponent=3.0, max_clients=52)
        samples = dist.sample(rng(), 50000)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ZipfClients(exponent=0.0)
        with pytest.raises(ConfigurationError):
            ZipfClients(exponent=2.0, max_clients=0)


class TestNormalizedClients:
    def test_divides_by_capacity(self):
        """Section V-C: sample 1..C and divide by C."""
        dist = NormalizedClients(DiscreteUniformClients(1, 52),
                                 max_clients=52)
        samples = dist.sample(rng(), 2000)
        assert samples.min() >= 1 / 52 - 1e-12
        assert samples.max() <= 1.0

    def test_loads_are_multiples_of_1_over_c(self):
        dist = NormalizedClients(DiscreteUniformClients(1, 10),
                                 max_clients=10)
        samples = dist.sample(rng(), 100)
        scaled = samples * 10
        assert np.allclose(scaled, np.round(scaled))


class TestModelLoad:
    def test_applies_linear_model(self):
        model = LinearLoadModel(delta=0.02, beta=0.01)
        dist = ModelLoad(DiscreteUniformClients(5, 5), model)
        samples = dist.sample(rng(), 10)
        assert np.allclose(samples, 0.02 * 5 + 0.01)

    def test_clipped_to_unit(self):
        model = LinearLoadModel(delta=0.5, beta=0.9)
        dist = ModelLoad(DiscreteUniformClients(5, 5), model)
        assert dist.sample(rng(), 3).max() <= 1.0


class TestTraceLoads:
    def test_replays_in_order(self):
        dist = TraceLoads([0.1, 0.2, 0.3])
        assert list(dist.sample(rng(), 3)) == [0.1, 0.2, 0.3]

    def test_wraps_around(self):
        dist = TraceLoads([0.1, 0.2])
        assert list(dist.sample(rng(), 5)) == [0.1, 0.2, 0.1, 0.2, 0.1]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            TraceLoads([])
        with pytest.raises(ConfigurationError):
            TraceLoads([0.0])
