"""Unit tests for the opt-gap harness and the mixed-gamma sweep."""

import pytest

from repro.analysis.optimum import SearchBudget
from repro.errors import ConfigurationError
from repro.sim.optgap import DEFAULT_GAP_ALGORITHMS, run_opt_gap
from repro.sim.sensitivity import sla_sensitivity
from repro.workloads.distributions import (NormalizedClients, UniformLoad,
                                           ZipfClients)

DISTS = [UniformLoad(0.6),
         NormalizedClients(ZipfClients(exponent=3.0))]


class TestRunOptGap:
    def test_sandwich_holds_on_two_distributions(self):
        report = run_opt_gap(DISTS, n_tenants=7, runs=2, gamma=2,
                             seed=5)
        assert len(report.rows) == len(DISTS) * 2
        assert report.failures == 1
        for row in report.rows:
            assert row.certified
            assert row.lower_bound == row.upper_bound
            for name in DEFAULT_GAP_ALGORITHMS:
                assert row.servers[name] >= row.lower_bound
                assert row.gap(name) >= 1.0
        assert report.certified_rows == len(report.rows)
        assert report.mean_gap("rfi") <= report.worst_gap("rfi")

    def test_gamma3_uses_weakest_guarantee(self):
        # RFI reserves for one failure regardless of gamma, so the
        # oracle must be solved at failures=1 — otherwise RFI could
        # report fewer servers than "OPT".
        report = run_opt_gap([DISTS[0]], n_tenants=6, runs=1, gamma=3,
                             seed=0)
        assert report.failures == 1
        for row in report.rows:
            for name in DEFAULT_GAP_ALGORITHMS:
                assert row.servers[name] >= row.lower_bound

    def test_budget_exhaustion_reports_interval(self):
        report = run_opt_gap([DISTS[0]], n_tenants=14, runs=1, gamma=2,
                             seed=1, budget=SearchBudget(max_nodes=3))
        row = report.rows[0]
        assert not row.certified
        assert row.lower_bound < row.upper_bound
        assert row.optimum_label == \
            f"[{row.lower_bound}, {row.upper_bound}]"
        assert "certified" in report.to_table().title
        assert report.max_nodes == 3
        assert "--budget 3" in report.repro_line

    def test_parallel_is_bit_identical(self):
        serial = run_opt_gap(DISTS, n_tenants=6, runs=2, seed=9)
        parallel = run_opt_gap(DISTS, n_tenants=6, runs=2, seed=9,
                               jobs=4)
        assert serial == parallel

    def test_repro_line_carries_parameters(self):
        report = run_opt_gap([DISTS[0]], n_tenants=6, runs=1, gamma=2,
                             seed=4)
        assert report.repro_line == \
            "repro opt-gap --tenants 6 --runs 1 --gamma 2 --seed 4"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_opt_gap([], n_tenants=6)
        with pytest.raises(ConfigurationError):
            run_opt_gap(DISTS, algorithms=())
        with pytest.raises(ConfigurationError):
            run_opt_gap(DISTS, runs=0)
        with pytest.raises(ConfigurationError):
            run_opt_gap(DISTS, algorithms=("no-such-algorithm",))


class TestSlaSensitivity:
    def test_sweep_tightening_targets(self):
        curve = sla_sensitivity(UniformLoad(0.9), n_tenants=80, seed=3)
        assert curve.parameter_name == "sla_target"
        assert len(curve.points) == 5
        # Looser targets choose smaller gammas: the loosest point can
        # never need more servers than the strictest.
        servers = [p.servers for p in curve.points]
        assert servers[0] <= max(servers)
        assert all(p.servers >= 1 for p in curve.points)

    def test_empty_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            sla_sensitivity(UniformLoad(0.6), n_tenants=10, targets=())

    def test_parallel_is_bit_identical(self):
        serial = sla_sensitivity(UniformLoad(0.9), n_tenants=60, seed=7)
        parallel = sla_sensitivity(UniformLoad(0.9), n_tenants=60,
                                   seed=7, jobs=3)
        assert serial == parallel
