"""Property-based tests for the baseline algorithms and failure planner."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.algorithms.naive import RobustBestFit, RobustFirstFit
from repro.algorithms.rfi import RFI
from repro.cluster.failures import (project_client_counts,
                                    worst_overload_failures)
from repro.core.tenant import make_tenants
from repro.core.validation import audit

loads_strategy = st.lists(
    st.floats(min_value=0.001, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=50)


@given(loads=loads_strategy, gamma=st.sampled_from([2, 3]),
       mu=st.floats(min_value=0.5, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_rfi_always_single_failure_robust(loads, gamma, mu):
    algo = RFI(gamma=gamma, mu=mu)
    algo.consolidate(make_tenants(loads))
    assert audit(algo.placement, failures=1).ok


@given(loads=loads_strategy,
       cls=st.sampled_from([RobustBestFit, RobustFirstFit]),
       gamma=st.sampled_from([2, 3]))
@settings(max_examples=40, deadline=None)
def test_baselines_robust_at_their_budget(loads, cls, gamma):
    algo = cls(gamma=gamma)
    algo.consolidate(make_tenants(loads))
    assert audit(algo.placement, failures=algo.failures).ok


tenant_maps = st.integers(min_value=2, max_value=12).flatmap(
    lambda n_tenants: st.tuples(
        st.just(n_tenants),
        st.lists(st.integers(min_value=1, max_value=20),
                 min_size=n_tenants, max_size=n_tenants),
        st.lists(st.permutations(range(6)), min_size=n_tenants,
                 max_size=n_tenants),
    ))


@given(data=tenant_maps, f=st.sampled_from([1, 2]))
@settings(max_examples=50, deadline=None)
def test_exhaustive_failure_planner_is_optimal(data, f):
    """The planner's chosen failure set is at least as bad as every
    other candidate set."""
    n_tenants, clients, perms = data
    homes = {tid: list(perms[tid][:2]) for tid in range(n_tenants)}
    counts = {tid: clients[tid] for tid in range(n_tenants)}
    plan = worst_overload_failures(homes, counts, f)
    servers = sorted({h for hs in homes.values() for h in hs})
    for failed in itertools.combinations(servers, f):
        projected = project_client_counts(homes, counts, failed)
        for fid in failed:
            projected.pop(fid, None)
        value = max(projected.values()) if projected else 0.0
        assert plan.projected_max_clients >= value - 1e-9


@given(data=tenant_maps)
@settings(max_examples=50, deadline=None)
def test_client_mass_conserved_unless_tenants_die(data):
    """Redistribution conserves total clients except for tenants whose
    every replica failed."""
    n_tenants, clients, perms = data
    homes = {tid: list(perms[tid][:2]) for tid in range(n_tenants)}
    counts = {tid: clients[tid] for tid in range(n_tenants)}
    failed = (0, 1)
    projected = project_client_counts(homes, counts, failed)
    dead = sum(counts[tid] for tid, hs in homes.items()
               if set(hs) <= set(failed))
    assert abs(sum(projected.values()) - (sum(counts.values()) - dead)) \
        < 1e-9
