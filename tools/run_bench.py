#!/usr/bin/env python
"""Run the placement-speed benchmark scenarios and record a baseline.

``benchmarks/bench_placement_speed.py`` measures consolidation wall
time under pytest-benchmark; this runner re-times the same scenarios
standalone (no pytest dependency, no statistics plugin) and writes the
results to ``BENCH_placement.json`` so the bench trajectory can be
diffed commit over commit.

Usage::

    PYTHONPATH=src python tools/run_bench.py [--output BENCH_placement.json]

Environment:
    REPRO_BENCH_N   sequence length (default 2000, same as the bench).

The output schema::

    {"format": "repro-bench", "version": 1, "n_tenants": 2000,
     "rounds": 3,
     "scenarios": {"cubefit": {"seconds_mean": ..., "seconds_min": ...,
                               "tenants_per_second": ...,
                               "servers": ..., "utilization": ...},
                   ...}}

Timings are machine-dependent; ``servers`` and ``utilization`` are
deterministic and meaningful to diff.  A committed baseline therefore
carries the packing-quality numbers as regression anchors and the
throughput numbers as order-of-magnitude context.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT))
sys.path.insert(0, str(_ROOT / "src"))

from benchmarks.bench_placement_speed import FACTORIES, N_TENANTS  # noqa: E402
from repro.workloads.distributions import UniformLoad  # noqa: E402
from repro.workloads.sequences import generate_sequence  # noqa: E402

BENCH_FORMAT = "repro-bench"
BENCH_VERSION = 1
DEFAULT_ROUNDS = 3


def time_scenario(factory, sequence, rounds):
    """Consolidate ``sequence`` ``rounds`` times on fresh instances."""
    seconds = []
    algo = None
    for _ in range(rounds):
        algo = factory()
        start = time.perf_counter()
        algo.consolidate(sequence)
        seconds.append(time.perf_counter() - start)
    mean = sum(seconds) / len(seconds)
    return {
        "seconds_mean": round(mean, 6),
        "seconds_min": round(min(seconds), 6),
        "tenants_per_second": round(len(sequence) / max(mean, 1e-9)),
        "servers": algo.placement.num_servers,
        "utilization": round(algo.placement.utilization(), 4),
    }


def run(rounds=DEFAULT_ROUNDS, n_tenants=None):
    n = n_tenants if n_tenants is not None else N_TENANTS
    sequence = generate_sequence(UniformLoad(0.6), n, seed=0)
    scenarios = {}
    for name in sorted(FACTORIES):
        scenarios[name] = time_scenario(FACTORIES[name], sequence,
                                        rounds)
        print(f"{name:>9}: {scenarios[name]['tenants_per_second']:>8,} "
              f"tenants/s  {scenarios[name]['servers']:>4} servers  "
              f"util {scenarios[name]['utilization']:.4f}")
    return {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "n_tenants": n,
        "rounds": rounds,
        "scenarios": scenarios,
    }


def main(argv=None):
    repo_root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(
        description="Time placement algorithms; write a bench baseline.")
    parser.add_argument("--output", type=Path,
                        default=repo_root / "BENCH_placement.json")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    args = parser.parse_args(argv)
    payload = run(rounds=args.rounds)
    args.output.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
