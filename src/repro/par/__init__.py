"""``repro.par`` — deterministic parallel experiment engine.

:func:`pmap` fans independent experiment items (sweep points, seeds,
comparison runs) out over forked worker processes and guarantees the
outcome — results *and* merged observability — is bit-identical to
running the same items serially.  See :mod:`repro.par.pool` for the
design notes.
"""

from .pool import (derive_seed, fork_available, pmap, validate_jobs)

__all__ = ["pmap", "validate_jobs", "fork_available", "derive_seed"]
