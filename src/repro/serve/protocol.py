"""JSONL-over-socket wire protocol of the placement service.

One *frame* is one JSON object on one newline-terminated line.  A
client sends request frames::

    {"id": 7, "verb": "place", "tenant": 12, "load": 0.25}

and receives exactly one response frame per request, carrying the same
``id``::

    {"id": 7, "ok": true, "result": {"servers": [0, 3]}}
    {"id": 7, "ok": false,
     "error": {"type": "CapacityError", "message": "..."}}

Error payloads are *typed*: ``error.type`` is the class name of the
:class:`~repro.errors.ReproError` subclass the operation raised, so a
client can rehydrate the exact exception (:func:`raise_error`).  Two
protocol-level conditions get their own types:

* ``ProtocolError`` — malformed JSON, a missing/duplicate field, an
  unknown verb, or an oversized frame.  The response's ``id`` is
  ``null`` when the frame was unreadable.  The connection survives.
* ``BackpressureError`` — the bounded admission queue was full; the
  payload carries ``retry_after`` (seconds), the server's explicit
  back-off hint.

Frames larger than ``max_frame_bytes`` are consumed and answered with
a typed ``ProtocolError`` — never a dropped connection — so a
misbehaving client learns *why* it was refused.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from .. import errors
from ..errors import BackpressureError, ProtocolError, ReproError

#: Verbs the service understands, with the request fields each needs.
VERBS: Dict[str, Tuple[str, ...]] = {
    "place": ("tenant", "load"),
    "remove": ("tenant",),
    "update_load": ("tenant", "load"),
    "stats": (),
    "checkpoint": (),
    "ping": (),
}

#: Hard ceiling on one frame's bytes (newline included); a request
#: naming gamma servers per replica stays far below this.
MAX_FRAME_BYTES = 64 * 1024

#: ``error.type`` values :func:`raise_error` can rehydrate — every
#: public ReproError subclass, collected once at import.
ERROR_TYPES: Dict[str, type] = {
    name: obj for name, obj in vars(errors).items()
    if isinstance(obj, type) and issubclass(obj, ReproError)}


class Request:
    """One parsed request frame."""

    __slots__ = ("id", "verb", "params")

    def __init__(self, request_id, verb: str,
                 params: Dict[str, object]) -> None:
        self.id = request_id
        self.verb = verb
        self.params = params

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Request(id={self.id!r}, verb={self.verb!r})"


def encode(payload: Dict[str, object]) -> bytes:
    """One frame: compact JSON plus the terminating newline."""
    return (json.dumps(payload, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def encode_request(request_id, verb: str, **params) -> bytes:
    frame = {"id": request_id, "verb": verb}
    frame.update(params)
    return encode(frame)


def encode_result(request_id, result: Dict[str, object]) -> bytes:
    return encode({"id": request_id, "ok": True, "result": result})


def encode_error(request_id, err: BaseException) -> bytes:
    """Typed error frame for any exception an operation raised."""
    error: Dict[str, object] = {
        "type": type(err).__name__ if isinstance(err, ReproError)
        else "InternalError",
        "message": str(err),
    }
    retry_after = getattr(err, "retry_after", None)
    if retry_after is not None:
        error["retry_after"] = retry_after
    failpoint = getattr(err, "failpoint", None)
    if failpoint:
        error["failpoint"] = failpoint
    return encode({"id": request_id, "ok": False, "error": error})


def _fail(message: str, request_id=None) -> ProtocolError:
    """Build a :class:`ProtocolError` carrying the request id when the
    frame got far enough to reveal one — the server echoes it back so
    the client can match the rejection to its request."""
    err = ProtocolError(message)
    err.request_id = request_id
    return err


def _reject_constant(name: str) -> None:
    """``json.loads`` hook: the wire grammar has no non-finite numbers.

    Python's decoder accepts the bare ``NaN`` / ``Infinity`` /
    ``-Infinity`` literals by default; letting them through would hand
    verbs like ``update_load`` a load that defeats every downstream
    ``<= 0`` guard, so the frame is refused before validation."""
    raise _fail(f"frame contains non-finite number {name}; "
                f"NaN/Infinity are not accepted")


def parse_request(line: bytes) -> Request:
    """Parse one raw frame into a validated :class:`Request`.

    Raises :class:`~repro.errors.ProtocolError` on anything the server
    cannot honour: invalid JSON, a non-object frame, a non-finite
    number literal (``NaN``/``Infinity``), a missing ``id`` or
    ``verb``, an unknown verb, or missing/unknown verb parameters.
    Once the frame's ``id`` has parsed, it rides on the error as
    ``err.request_id`` (else ``None``).
    """
    try:
        raw = json.loads(line.decode("utf-8", errors="strict"),
                         parse_constant=_reject_constant)
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise _fail(f"malformed frame: {err}") from None
    if not isinstance(raw, dict):
        raise _fail(
            f"frame must be a JSON object, got {type(raw).__name__}")
    if "id" not in raw:
        raise _fail("frame has no 'id'")
    request_id = raw["id"]
    if not isinstance(request_id, (str, int)) \
            or isinstance(request_id, bool):
        raise _fail(
            f"'id' must be a string or integer, got {request_id!r}")
    verb = raw.get("verb")
    if not isinstance(verb, str) or verb not in VERBS:
        raise _fail(f"unknown verb {verb!r}; known: {sorted(VERBS)}",
                    request_id)
    params = {key: value for key, value in raw.items()
              if key not in ("id", "verb")}
    required = VERBS[verb]
    missing = [field for field in required if field not in params]
    if missing:
        raise _fail(f"verb {verb!r} requires field(s) {missing}",
                    request_id)
    unknown = sorted(set(params) - set(required))
    if unknown:
        raise _fail(f"verb {verb!r} does not take field(s) {unknown}",
                    request_id)
    return Request(request_id, verb, params)


def parse_response(line: bytes) -> Tuple[object, Dict[str, object]]:
    """Client side: split a response frame into ``(id, body)``.

    ``body`` is the raw decoded object; use :func:`raise_error` to turn
    an ``ok: false`` body into its typed exception.
    """
    try:
        raw = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"malformed response frame: {err}") from None
    if not isinstance(raw, dict) or "ok" not in raw:
        raise ProtocolError(f"not a response frame: {raw!r}")
    return raw.get("id"), raw


def raise_error(body: Dict[str, object]) -> None:
    """Rehydrate and raise the typed error of an ``ok: false`` body."""
    error = body.get("error") or {}
    name = str(error.get("type", "ReproError"))
    message = str(error.get("message", "unknown server error"))
    cls = ERROR_TYPES.get(name, ReproError)
    if cls is BackpressureError:
        raise BackpressureError(
            message, retry_after=float(error.get("retry_after", 0.0)))
    try:
        err = cls(message)
    except TypeError:  # subclass with a richer signature
        raise ReproError(f"{name}: {message}") from None
    failpoint = error.get("failpoint")
    if failpoint and hasattr(err, "failpoint"):
        err.failpoint = str(failpoint)
    raise err


def read_frame(sock_file, max_frame_bytes: int = MAX_FRAME_BYTES
               ) -> Optional[bytes]:
    """Read one newline-terminated frame from a buffered socket file.

    Returns the line without its newline, or ``None`` on a clean EOF.
    An oversized line is consumed to its newline (so the stream stays
    framed) and raises :class:`~repro.errors.ProtocolError`.
    """
    line = sock_file.readline(max_frame_bytes + 1)
    if not line:
        return None
    if len(line) > max_frame_bytes:
        # Over the ceiling (newline included) no matter how it ends;
        # an unterminated read must still be drained to its newline so
        # the stream stays framed for the next request.
        swallowed = len(line)
        while not line.endswith(b"\n"):
            chunk = sock_file.readline(max_frame_bytes)
            if not chunk:
                break
            swallowed += len(chunk)
            line = chunk
        raise ProtocolError(
            f"frame exceeds {max_frame_bytes} bytes "
            f"({swallowed}+ read); oversized payload rejected")
    return line.rstrip(b"\n")


__all__ = [
    "MAX_FRAME_BYTES", "VERBS", "Request",
    "encode", "encode_request", "encode_result", "encode_error",
    "parse_request", "parse_response", "raise_error", "read_frame",
]
