"""The long-running placement daemon.

:class:`PlacementServer` turns the durable controller into a service: a
unix-domain socket accepting JSONL request frames
(:mod:`repro.serve.protocol`), a bounded admission queue with explicit
backpressure, one mutation worker serialising every operation against a
:class:`~repro.store.DurableStore`-attached
:class:`~repro.algorithms.naive.RobustBestFit`, and a timer running WAL
checkpoint + compaction while traffic flows.

Lifecycle
---------
``start()`` opens the store — recovering and adopting prior committed
state when the directory has any (warm start), else starting a fresh
placement — binds the socket, and launches the accept, worker, and
timer threads.  ``stop()`` is the *graceful* path (SIGTERM): stop
admitting, drain the queue, checkpoint, compact, close the WAL.  A
:class:`~repro.errors.SimulatedCrash` escaping any seam is the *crash*
path (kill -9): the process dies with nothing flushed beyond what the
WAL already committed, and the next ``start()`` on the same store
recovers via checkpoint + tail replay.

Threading model
---------------
One handler thread per connection parses frames and admits requests;
the single worker thread applies them in admission order, so placement
decisions are serialised without locking the placement itself.  ``ping``
is answered inline by the handler (readiness probes must not consume
queue slots); everything else — including ``stats`` and ``checkpoint``
— flows through the queue.

Failpoints
----------
``serve.accept`` (drop a fresh connection), ``serve.handler`` (typed
error or daemon crash per request), and ``serve.checkpoint_timer``
(skip a checkpoint round or crash un-checkpointed) are compiled into
the corresponding seams; the chaos harness
(:func:`repro.sim.chaos.run_serve_chaos`) drills all three against a
live server.
"""

from __future__ import annotations

import math
import os
import queue
import socket
import struct
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import faults
from ..algorithms.naive import RobustBestFit
from ..core.tenant import Tenant
from ..errors import (BackpressureError, ConfigurationError, FaultInjected,
                      ProtocolError, ReproError, SimulatedCrash)
from ..obs import MetricsRegistry, active
from ..store import DurableStore
from ..store.wal import FSYNC_ALWAYS
from .protocol import (MAX_FRAME_BYTES, encode_error, encode_result,
                       parse_request, read_frame)

PathLike = Union[str, Path]

#: Exit status the daemon dies with when a simulated crash fires in
#: ``crash_mode="exit"`` (the CLI default) — distinguishable from a
#: clean shutdown and from a real signal death.
CRASH_EXIT_CODE = 70


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one daemon run."""

    #: Replication factor of a *cold* start (warm starts recover the
    #: recorded gamma and refuse a mismatch via ``meta.json``).
    gamma: int = 2
    capacity: float = 1.0
    #: Bound of the admission queue; a full queue rejects with
    #: :class:`~repro.errors.BackpressureError`, never blocks.
    queue_size: int = 64
    #: Back-off hint (seconds) carried by backpressure rejections.
    retry_after: float = 0.05
    #: Seconds between timer-driven checkpoint+compaction runs;
    #: ``0`` disables the timer (checkpoints then happen only on
    #: explicit ``checkpoint`` requests and at graceful shutdown).
    checkpoint_interval: float = 0.0
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Kernel send timeout (seconds) on accepted sockets; a client
    #: that stops reading is declared dead after this long instead of
    #: blocking the worker forever.  ``0`` disables the timeout.
    send_timeout: float = 5.0
    fsync: str = FSYNC_ALWAYS
    segment_records: int = 512
    #: What a :class:`~repro.errors.SimulatedCrash` does: ``"exit"``
    #: kills the process with :data:`CRASH_EXIT_CODE` (daemon mode),
    #: ``"abort"`` tears the server down in place without flushing
    #: (in-process harnesses, which then recover from the directory).
    crash_mode: str = "exit"
    #: Shard this daemon serves when it is one member of a
    #: :mod:`repro.fleet` deployment; ``None`` for a standalone
    #: controller.  Purely descriptive — reported by the ``stats``
    #: verb so operators can tell shards apart — the daemon itself
    #: never routes.
    shard_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.gamma < 1:
            raise ConfigurationError(
                f"gamma must be >= 1, got {self.gamma}")
        if self.queue_size < 1:
            raise ConfigurationError(
                f"queue_size must be >= 1, got {self.queue_size}")
        if self.retry_after < 0:
            raise ConfigurationError(
                f"retry_after must be >= 0, got {self.retry_after}")
        if self.checkpoint_interval < 0:
            raise ConfigurationError(
                f"checkpoint_interval must be >= 0, got "
                f"{self.checkpoint_interval}")
        if self.max_frame_bytes < 64:
            raise ConfigurationError(
                f"max_frame_bytes must be >= 64, got "
                f"{self.max_frame_bytes}")
        if self.send_timeout < 0:
            raise ConfigurationError(
                f"send_timeout must be >= 0, got {self.send_timeout}")
        if self.crash_mode not in ("exit", "abort"):
            raise ConfigurationError(
                f"crash_mode must be 'exit' or 'abort', got "
                f"{self.crash_mode!r}")
        if self.shard_id is not None and self.shard_id < 0:
            raise ConfigurationError(
                f"shard_id must be >= 0, got {self.shard_id}")


class _Connection:
    """One client session: the socket, its buffered reader, and a write
    lock shared by the handler (protocol errors, pings) and the worker
    (results), so response frames never interleave.

    Writes carry a kernel-level send timeout (``SO_SNDTIMEO`` — scoped
    to sends only, so the handler's blocking reads are unaffected): a
    client that stops reading fills its socket buffer, and without the
    timeout ``sendall`` would block the single worker thread forever,
    stalling placements for every other client.  A timed-out send marks
    the connection dead and drops the frame."""

    __slots__ = ("sock", "reader", "lock", "closed")

    def __init__(self, sock: socket.socket,
                 send_timeout: float = 0.0) -> None:
        self.sock = sock
        if send_timeout > 0:
            secs = int(send_timeout)
            usecs = int(round((send_timeout - secs) * 1e6))
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDTIMEO,
                                struct.pack("ll", secs, usecs))
            except OSError:  # pragma: no cover - platform without it
                pass
        self.reader = sock.makefile("rb")
        self.lock = threading.Lock()
        self.closed = False

    def send(self, frame: bytes) -> bool:
        with self.lock:
            if self.closed:
                return False
            try:
                self.sock.sendall(frame)
                return True
            except OSError:
                # Includes a timed-out send (EAGAIN under SO_SNDTIMEO):
                # the peer stopped reading, so the session is dead.
                self.closed = True
                return False

    def close(self) -> None:
        with self.lock:
            self.closed = True
        # Shut the socket down *before* touching the buffered reader:
        # a handler thread blocked in readline() holds the reader's
        # internal lock, and reader.close() would wait on it forever.
        # shutdown() wakes that read with EOF, releasing the lock.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.reader.close()
        except (OSError, ValueError):
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _Job:
    """One admitted request plus the connection awaiting its response
    (``None`` for internal jobs, e.g. the timer's checkpoints)."""

    __slots__ = ("request", "conn")

    def __init__(self, request, conn: Optional[_Connection]) -> None:
        self.request = request
        self.conn = conn


#: Worker-queue sentinels.
_STOP = object()


class PlacementServer:
    """The always-on placement service over one durable store."""

    def __init__(self, store_dir: PathLike, socket_path: PathLike,
                 config: Optional[ServeConfig] = None,
                 obs=None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.store_dir = Path(store_dir)
        self.socket_path = Path(socket_path)
        self._obs = active(obs if obs is not None
                           else MetricsRegistry())
        self.store: Optional[DurableStore] = None
        self.algorithm: Optional[RobustBestFit] = None
        self._queue: "queue.Queue" = queue.Queue(
            maxsize=self.config.queue_size)
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conns: List[_Connection] = []
        self._conns_lock = threading.Lock()
        self._shutdown = threading.Event()
        self._draining = False
        self._started = False
        self._stopped = False
        #: The SimulatedCrash that killed the server, if one did.
        self.crashed: Optional[SimulatedCrash] = None
        self._started_at = 0.0
        self._recovered_state = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open (or recover) the store, bind the socket, go live."""
        if self._started:
            raise ConfigurationError("server already started")
        cfg = self.config
        store = DurableStore(self.store_dir, fsync=cfg.fsync,
                             segment_records=cfg.segment_records,
                             obs=self._obs)
        if store.has_state:
            recovered = store.recover()
            self._recovered_state = recovered
            algorithm = RobustBestFit(gamma=recovered.gamma,
                                      failures=recovered.failures,
                                      capacity=recovered.capacity)
            algorithm.adopt(recovered.placement)
        else:
            algorithm = RobustBestFit(gamma=cfg.gamma,
                                      capacity=cfg.capacity)
        if self._obs is not None:
            algorithm.attach_obs(self._obs)
        algorithm.attach_store(store)
        self.store = store
        self.algorithm = algorithm

        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            # A stale socket file from a crashed daemon: nothing is
            # listening (connect would have to succeed), so unlink it.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(str(self.socket_path))
            except OSError:
                self.socket_path.unlink()
            else:
                probe.close()
                listener.close()
                store.close()
                raise ConfigurationError(
                    f"socket {self.socket_path} is already served")
            finally:
                probe.close()
        listener.bind(str(self.socket_path))
        listener.listen(16)
        self._listener = listener
        self._started = True
        self._started_at = time.monotonic()

        accept = threading.Thread(target=self._accept_loop,
                                  name="serve-accept", daemon=True)
        worker = threading.Thread(target=self._worker_loop,
                                  name="serve-worker", daemon=True)
        self._threads = [accept, worker]
        if cfg.checkpoint_interval > 0:
            self._threads.append(threading.Thread(
                target=self._timer_loop, name="serve-checkpoint",
                daemon=True))
        for thread in self._threads:
            thread.start()
        if self._obs is not None:
            self._obs.emit("serve_start",
                           store=str(self.store_dir),
                           socket=str(self.socket_path),
                           warm=self._recovered_state is not None)

    def run(self) -> None:
        """Block until shutdown is requested, then finish accordingly.

        The CLI's main loop: a signal handler (or a client-side actor)
        calls :meth:`request_shutdown`; a crash seam fires
        :meth:`_fatal_crash`.  On a graceful request this drains and
        closes (:meth:`stop`); after an in-process crash it re-raises
        the :class:`~repro.errors.SimulatedCrash`.
        """
        self._shutdown.wait()
        if self.crashed is not None:
            raise self.crashed
        self.stop()

    def request_shutdown(self) -> None:
        """Ask for a graceful stop (signal-handler safe)."""
        self._draining = True
        self._shutdown.set()

    def stop(self) -> None:
        """Graceful shutdown: drain queue → checkpoint → close WAL."""
        if not self._started or self._stopped:
            return
        self._stopped = True
        self._draining = True
        self._shutdown.set()
        self._close_listener()
        # Let the worker drain everything already admitted, then stop.
        # Never block on a full queue: if the worker is already dead
        # (a crash in `abort` mode) nothing drains it, so make room by
        # rejecting one pending job per attempt instead of hanging.
        while True:
            try:
                self._queue.put_nowait(_STOP)
                break
            except queue.Full:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    continue
                if job is not _STOP and job.conn is not None:
                    job.conn.send(encode_error(
                        job.request.id,
                        ProtocolError("server is shutting down")))
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        # Requests that raced past the drain flag after the sentinel
        # are answered, not dropped.
        self._reject_pending("server is shutting down")
        if self.crashed is None and self.store is not None \
                and self.algorithm is not None:
            self.store.checkpoint_and_compact(self.algorithm.placement)
            self.store.close()
        self._close_conns()
        if self.socket_path.exists():
            try:
                self.socket_path.unlink()
            except OSError:
                pass
        if self._obs is not None:
            self._obs.emit("serve_stop", crashed=self.crashed is not None)

    def _fatal_crash(self, err: SimulatedCrash) -> None:
        """Kill-9 semantics: die with nothing flushed beyond the WAL's
        already-committed records — no drain, no checkpoint, no clean
        close.  ``crash_mode="exit"`` takes the whole process down."""
        if self.crashed is not None:
            return
        self.crashed = err
        if self._obs is not None:
            self._obs.counter("serve.crashes").inc()
        if self.config.crash_mode == "exit":
            os._exit(CRASH_EXIT_CODE)
        self._draining = True
        self._close_listener()
        self._close_conns()
        self._shutdown.set()

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            # shutdown() wakes a thread blocked in accept(); close()
            # alone leaves it stuck in the syscall until the join
            # timeout expires.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass

    def _close_conns(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            conn.close()

    def _reject_pending(self, message: str) -> None:
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            if job is _STOP or job.conn is None:
                continue
            job.conn.send(encode_error(job.request.id,
                                       ProtocolError(message)))

    # ------------------------------------------------------------------
    # Accept / handler threads
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                sock, _ = listener.accept()
            except OSError:
                return  # listener closed (shutdown or crash)
            try:
                if faults.active():
                    faults.fire("serve.accept")
            except SimulatedCrash as err:
                sock.close()
                self._fatal_crash(err)
                return
            except FaultInjected:
                # The connection is dropped; the daemon keeps serving.
                if self._obs is not None:
                    self._obs.counter("serve.accept_dropped").inc()
                sock.close()
                continue
            conn = _Connection(sock, self.config.send_timeout)
            with self._conns_lock:
                self._conns.append(conn)
            if self._obs is not None:
                self._obs.counter("serve.connections").inc()
            threading.Thread(target=self._handle, args=(conn,),
                             name="serve-handler", daemon=True).start()

    def _handle(self, conn: _Connection) -> None:
        cfg = self.config
        obs = self._obs
        try:
            while not conn.closed:
                try:
                    line = read_frame(conn.reader, cfg.max_frame_bytes)
                except ProtocolError as err:
                    if obs is not None:
                        obs.counter("serve.protocol_errors").inc()
                    conn.send(encode_error(None, err))
                    continue
                except (OSError, ValueError):
                    return  # connection torn down under the reader
                if line is None:
                    return  # clean EOF
                if not line.strip():
                    continue
                try:
                    request = parse_request(line)
                except ProtocolError as err:
                    if obs is not None:
                        obs.counter("serve.protocol_errors").inc()
                    conn.send(encode_error(
                        getattr(err, "request_id", None), err))
                    continue
                try:
                    if faults.active():
                        faults.fire("serve.handler")
                except SimulatedCrash as err:
                    self._fatal_crash(err)
                    return
                except FaultInjected as err:
                    conn.send(encode_error(request.id, err))
                    continue
                if request.verb == "ping":
                    conn.send(encode_result(request.id, {
                        "pong": True, "pid": os.getpid(),
                        "draining": self._draining}))
                    continue
                if self._draining:
                    conn.send(encode_error(request.id, ProtocolError(
                        "server is shutting down")))
                    continue
                try:
                    self._queue.put_nowait(_Job(request, conn))
                except queue.Full:
                    if obs is not None:
                        obs.counter("serve.rejected.backpressure").inc()
                    conn.send(encode_error(request.id, BackpressureError(
                        f"admission queue full "
                        f"({cfg.queue_size} requests)",
                        retry_after=cfg.retry_after)))
                    continue
                if obs is not None:
                    obs.counter("serve.admitted").inc()
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Worker / timer threads
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            request, conn = job.request, job.conn
            try:
                result = self._execute(request)
            except SimulatedCrash as err:
                self._fatal_crash(err)
                return
            except Exception as err:  # typed ReproError or internal
                if conn is not None:
                    conn.send(encode_error(request.id, err))
                if self._obs is not None:
                    kind = ("typed" if isinstance(err, ReproError)
                            else "internal")
                    self._obs.counter(f"serve.errors.{kind}").inc()
            else:
                if conn is not None:
                    conn.send(encode_result(request.id, result))

    def _timer_loop(self) -> None:
        interval = self.config.checkpoint_interval
        while not self._shutdown.wait(interval):
            try:
                if faults.active():
                    faults.fire("serve.checkpoint_timer")
            except SimulatedCrash as err:
                self._fatal_crash(err)
                return
            except FaultInjected:
                # This round's checkpoint is skipped; traffic continues
                # and the next tick tries again.
                if self._obs is not None:
                    self._obs.counter("serve.checkpoint_skipped").inc()
                continue
            try:
                self._queue.put_nowait(
                    _Job(_TimerCheckpoint(), None))
            except queue.Full:
                # Under backpressure the maintenance job yields to
                # traffic; the next tick retries.
                if self._obs is not None:
                    self._obs.counter("serve.checkpoint_deferred").inc()

    # ------------------------------------------------------------------
    # Request execution (worker thread only)
    # ------------------------------------------------------------------
    def _execute(self, request) -> Dict[str, object]:
        verb = request.verb
        if verb == "checkpoint":
            return self._do_checkpoint()
        if verb == "stats":
            return self._do_stats()
        params = request.params
        if verb == "place":
            tenant_id = _as_int(params["tenant"], "tenant")
            load = _as_float(params["load"], "load")
            chosen = self.algorithm.place(Tenant(tenant_id, load))
            return {"servers": list(chosen)}
        if verb == "remove":
            tenant_id = _as_int(params["tenant"], "tenant")
            self.algorithm.remove(tenant_id)
            return {"removed": tenant_id}
        if verb == "update_load":
            tenant_id = _as_int(params["tenant"], "tenant")
            load = _as_float(params["load"], "load")
            chosen = self.algorithm.update_load(tenant_id, load)
            return {"servers": list(chosen)}
        raise ProtocolError(f"unhandled verb {verb!r}")  # unreachable

    def _do_checkpoint(self) -> Dict[str, object]:
        path, removed = self.store.checkpoint_and_compact(
            self.algorithm.placement)
        if self._obs is not None:
            self._obs.counter("serve.checkpoints").inc()
        return {"checkpoint": str(path),
                "wal_applied": self.store.wal.next_seq,
                "segments_compacted": len(removed)}

    def _do_stats(self) -> Dict[str, object]:
        placement = self.algorithm.placement
        stats: Dict[str, object] = {
            "placement": {
                "servers": placement.num_servers,
                "tenants": placement.num_tenants,
                "utilization": placement.utilization(),
                "gamma": placement.gamma,
            },
            "wal": {"next_seq": self.store.wal.next_seq},
            "queue": {"depth": self._queue.qsize(),
                      "capacity": self.config.queue_size},
            "shard": {
                "id": self.config.shard_id,
                "store": str(self.store.directory),
                "wal_segments": [path.name for path
                                 in self.store.wal.segments()],
                "checkpoint": str(self.store.checkpoint_path),
                "checkpoint_exists":
                    self.store.checkpoint_path.exists(),
                "queue_depth": self._queue.qsize(),
            },
            "uptime_seconds": time.monotonic() - self._started_at,
            "draining": self._draining,
        }
        if self._obs is not None:
            stats["metrics"] = self._obs.snapshot()
        return stats


class _TimerCheckpoint:
    """Internal request shape for the timer's checkpoint jobs."""

    __slots__ = ("id", "verb", "params")

    def __init__(self) -> None:
        self.id = None
        self.verb = "checkpoint"
        self.params: Dict[str, object] = {}


def _as_int(value, field: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            f"'{field}' must be an integer, got {value!r}")
    return value


def _as_float(value, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"'{field}' must be a number, got {value!r}")
    result = float(value)
    # The protocol layer already refuses bare NaN/Infinity literals;
    # this guard keeps the invariant local — a non-finite load would
    # slip past every `<= 0` domain check and corrupt the placement.
    if not math.isfinite(result):
        raise ProtocolError(
            f"'{field}' must be finite, got {value!r}")
    return result


__all__ = ["CRASH_EXIT_CODE", "PlacementServer", "ServeConfig"]
