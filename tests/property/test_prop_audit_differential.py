"""Differential testing of the three audit levels.

On small random packings (at most 8 servers, so the exponential audits
stay cheap) the three checkers must agree on a strict ordering:

* :func:`audit` (top-``f`` bound) and :func:`brute_force_audit`
  (enumerate all failure sets, conservative formula) are *equivalent*:
  with non-negative shared loads, the worst failure set is exactly the
  ``f`` largest shared partners.
* :func:`exact_failure_audit` (true redistribution semantics) is never
  *stricter* than the conservative pair — a conservative audit may
  reject a packing the exact one admits, never the other way round.

The :class:`IncrementalAuditor` must agree with :func:`audit` after any
mutation history, since it is the same condition evaluated lazily.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.placement import PlacementState
from repro.core.tenant import Tenant
from repro.core.validation import (IncrementalAuditor, audit,
                                   brute_force_audit,
                                   exact_failure_audit)
from repro.errors import CapacityError

MAX_SERVERS = 8


@st.composite
def small_packings(draw):
    """A placement with up to MAX_SERVERS servers and a few tenants.

    Built through the normal mutation API with *no* robustness
    admission control, so packings that violate the condition are
    generated too — the audits must order correctly on both sides.
    A removal op exercises the audits after ``remove_tenant``.
    """
    gamma = draw(st.integers(min_value=2, max_value=3))
    ps = PlacementState(gamma=gamma, shadow_audit=True)
    n_servers = draw(st.integers(min_value=gamma, max_value=MAX_SERVERS))
    for _ in range(n_servers):
        ps.open_server()
    n_tenants = draw(st.integers(min_value=0, max_value=6))
    placed = []
    for tid in range(n_tenants):
        load = draw(st.floats(min_value=0.05, max_value=1.0))
        targets = draw(st.permutations(range(n_servers)))[:gamma]
        try:
            ps.place_tenant(Tenant(tid, load), targets)
        except CapacityError:
            continue
        placed.append(tid)
    if placed and draw(st.booleans()):
        ps.remove_tenant(draw(st.sampled_from(placed)))
    return ps


@given(packing=small_packings(), failures=st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_topf_audit_equals_brute_force(packing, failures):
    fast = audit(packing, failures=failures)
    brute = brute_force_audit(packing, failures=failures)
    assert fast.min_slack == pytest.approx(brute.min_slack, abs=1e-9)
    assert {v.server_id for v in fast.violations} \
        == {v.server_id for v in brute.violations}


@given(packing=small_packings(), failures=st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_conservative_never_more_permissive_than_exact(packing, failures):
    brute = brute_force_audit(packing, failures=failures)
    exact = exact_failure_audit(packing, failures=failures)
    # Exact redistribution redirects at most the conservative bound, so
    # exact slack dominates and every exact violation is also flagged
    # by the conservative audits.
    assert exact.min_slack >= brute.min_slack - 1e-9
    exact_violators = {v.server_id for v in exact.violations}
    brute_violators = {v.server_id for v in brute.violations}
    assert exact_violators <= brute_violators, (
        f"conservative audit admitted servers the exact audit rejects: "
        f"{sorted(exact_violators - brute_violators)}")
    per_server_exact = {v.server_id: v for v in exact.violations}
    for server_id, violation in per_server_exact.items():
        conservative = next(v for v in brute.violations
                            if v.server_id == server_id)
        assert conservative.failover_load >= \
            violation.failover_load - 1e-9


@given(packing=small_packings(), failures=st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_incremental_auditor_matches_full_audit(packing, failures):
    auditor = IncrementalAuditor(packing, failures=failures)
    expected = audit(packing, failures=failures)
    got = auditor.check()
    assert got.min_slack == pytest.approx(expected.min_slack, abs=1e-9)
    assert {v.server_id for v in got.violations} \
        == {v.server_id for v in expected.violations}
    # Mutate and re-check: the auditor only re-evaluates dirty servers.
    if packing.tenant_ids:
        packing.remove_tenant(packing.tenant_ids[0])
    next_tid = max(packing.tenant_ids, default=-1) + 1
    try:
        packing.place_tenant(
            Tenant(next_tid, 0.4),
            packing.server_ids[:packing.gamma])
    except CapacityError:
        pass
    expected = audit(packing, failures=failures)
    got = auditor.check()
    assert got.min_slack == pytest.approx(expected.min_slack, abs=1e-9)
    assert {v.server_id for v in got.violations} \
        == {v.server_id for v in expected.violations}
