"""Unit tests for the cluster experiment harness."""

import pytest

from repro.cluster.experiment import (ClusterConfig, ClusterExperiment,
                                      ClusterResult)
from repro.errors import ConfigurationError, SimulationError


def small_config(**overrides):
    defaults = dict(warmup=5.0, measure=15.0, seed=0)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def two_server_scenario(clients=10):
    homes = {0: [0, 1], 1: [0, 1]}
    counts = {0: clients, 1: clients}
    return ClusterExperiment(homes, counts, small_config())


class TestConfig:
    def test_invalid_durations(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(warmup=-1.0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(measure=0.0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(time_scale=0.0)

    def test_time_scale(self):
        cfg = ClusterConfig(warmup=100.0, measure=200.0, time_scale=0.1)
        assert cfg.scaled_warmup == pytest.approx(10.0)
        assert cfg.scaled_measure == pytest.approx(20.0)


class TestRun:
    def test_healthy_run_produces_latencies(self):
        result = two_server_scenario().run()
        assert result.completed > 50
        assert result.p99 > 0
        assert result.global_p99 <= result.p99 + 1e-9
        assert result.dropped == 0
        assert result.meets_sla

    def test_utilization_reported_per_machine(self):
        result = two_server_scenario().run()
        assert set(result.utilization) == {0, 1}
        assert all(0.0 <= u <= 1.0 for u in result.utilization.values())

    def test_failure_increases_latency(self):
        exp = two_server_scenario(clients=25)
        healthy = exp.run()
        failed = exp.run(fail_servers=[1])
        assert failed.failed_servers == [1]
        assert failed.p99 > healthy.p99

    def test_all_servers_failed_drops_queries(self):
        exp = two_server_scenario()
        result = exp.run(fail_servers=[0, 1])
        assert result.dropped > 0
        assert not result.meets_sla

    def test_unknown_failed_server_rejected(self):
        exp = two_server_scenario()
        with pytest.raises(SimulationError):
            exp.run(fail_servers=[99])

    def test_runs_are_reproducible(self):
        a = two_server_scenario().run()
        b = two_server_scenario().run()
        assert a.p99 == pytest.approx(b.p99)
        assert a.completed == b.completed

    def test_seed_changes_results(self):
        homes = {0: [0, 1]}
        counts = {0: 10}
        a = ClusterExperiment(homes, counts, small_config(seed=1)).run()
        b = ClusterExperiment(homes, counts, small_config(seed=2)).run()
        assert a.p99 != b.p99

    def test_result_str(self):
        result = two_server_scenario().run()
        assert "p99" in str(result)


class TestValidation:
    def test_no_tenants_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterExperiment({}, {}, small_config())

    def test_negative_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterExperiment({0: [0]}, {0: -1}, small_config())

    def test_zero_clients_everywhere_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterExperiment({0: [0]}, {0: 0}, small_config()).run()


class TestLatencyCsvExport:
    def test_run_writes_latency_csv(self, tmp_path):
        exp = two_server_scenario()
        path = tmp_path / "latency.csv"
        result = exp.run(latency_csv=str(path))
        lines = path.read_text().splitlines()
        assert lines[0] == \
            "completed_at,tenant_id,server_id,query,latency"
        assert len(lines) == result.completed + 1
