"""Self-contained placement checkpoints (format version 2).

The v1 ``repro-placement`` snapshot (:mod:`repro.workloads.trace_io`)
stores only replica *assignments* and re-derives loads from a companion
trace, which makes it useless for crash recovery: it cannot express
elastic load updates (the trace has the arrival load, not the current
one), fan-out states whose replica indices are not ``0..gamma-1``, or
replicas with unequal loads.  Format v2 is self-contained — it stores
``gamma``, the per-server capacity, every replica's exact load, the
server tags algorithms hang their bookkeeping on (e.g. CUBEFIT's
``mature`` flag), and the next-server-id counter — so a checkpoint plus
a WAL tail fully determines the controller's placement state::

    {"format": "repro-checkpoint", "version": 2,
     "algorithm": "cubefit", "gamma": 2, "capacity": 1.0,
     "wal_applied": 123, "next_server_id": 7,
     "servers": [{"id": 0, "tags": {"mature": true},
                  "replicas": [[7, 0, 0.125], ...]}, ...]}

``wal_applied`` is the number of WAL records the checkpointed state
reflects; recovery replays records with ``seq >= wal_applied``.

Floats survive exactly: ``json`` serializes doubles with shortest
round-trip ``repr``, so a restored replica load is bitwise equal to the
live one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .. import faults
from ..core.placement import PlacementState
from ..core.tenant import LOAD_EPS, Replica
from ..errors import (ConfigurationError, SimulatedCrash,
                      StoreCorruptionError)

PathLike = Union[str, Path]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 2


def _jsonable(value):
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"checkpoint field of type {type(value).__name__} is not "
        f"JSON-serializable: {value!r}")


@dataclass
class Checkpoint:
    """Parsed checkpoint contents; :meth:`restore` rebuilds the state."""

    gamma: int
    capacity: float
    wal_applied: int
    next_server_id: int
    algorithm: str = ""
    #: server id -> (tags, [(tenant_id, index, load), ...])
    servers: Dict[int, Tuple[Dict[str, object],
                             List[Tuple[int, int, float]]]] = \
        field(default_factory=dict)

    def restore(self) -> PlacementState:
        """Rebuild an exact :class:`PlacementState`.

        Servers are provisioned up to ``next_server_id`` (so ids opened
        but empty at checkpoint time survive and future ids continue
        where the crashed controller left off), tags are restored, and
        every replica is re-placed with its recorded index and exact
        load — the shared-load index rebuilds itself through the normal
        mutation path.
        """
        placement = PlacementState(gamma=self.gamma,
                                   capacity=self.capacity)
        for _ in range(self.next_server_id):
            placement.open_server()
        by_tenant: Dict[int, List[Tuple[int, int, float]]] = {}
        for sid, (tags, replicas) in self.servers.items():
            if sid >= self.next_server_id:
                raise StoreCorruptionError(
                    f"checkpoint: server {sid} >= next_server_id "
                    f"{self.next_server_id}")
            placement.server(sid).tags.update(tags)
            for tenant_id, index, load in replicas:
                by_tenant.setdefault(tenant_id, []).append(
                    (index, sid, load))
        # Per tenant, replicas go back in index order — the order
        # place_tenant used originally — so the per-tenant load
        # accumulator sums in a deterministic order.
        for tenant_id in sorted(by_tenant):
            for index, sid, load in sorted(by_tenant[tenant_id]):
                placement.place(
                    Replica(tenant_id=tenant_id, index=index, load=load),
                    sid)
        return placement


def save_checkpoint(placement: PlacementState, path: PathLike,
                    wal_applied: int = 0, algorithm: str = "") -> None:
    """Write a v2 checkpoint of ``placement`` atomically.

    The payload is written to a temporary file and ``os.replace``-d
    into place, so a crash mid-checkpoint leaves either the previous
    checkpoint or the new one — never a half-written file.
    """
    if wal_applied < 0:
        raise ConfigurationError(
            f"wal_applied must be >= 0, got {wal_applied}")
    servers = []
    for server in placement.servers:
        servers.append({
            "id": server.server_id,
            "tags": dict(server.tags),
            "replicas": [[tenant_id, index, replica.load]
                         for (tenant_id, index), replica
                         in sorted(server.replicas.items())],
        })
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "algorithm": algorithm,
        "gamma": placement.gamma,
        "capacity": placement.capacity,
        "wal_applied": wal_applied,
        "next_server_id": placement._next_server_id,
        "servers": servers,
    }
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    if faults.active():
        # Before the temp file exists: the previous checkpoint (if
        # any) stays untouched and authoritative.
        faults.fire("store.checkpoint.write")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, default=_jsonable)
        handle.flush()
        os.fsync(handle.fileno())
    if faults.active() and faults.should("store.checkpoint.partial"):
        # Crash between writing the temp file and the atomic rename:
        # truncate the temp to half so the artifact is genuinely
        # partial, then die.  Recovery never reads ``*.tmp`` files,
        # so the previous checkpoint still governs.
        with open(tmp, "r+", encoding="utf-8") as handle:
            size = handle.seek(0, os.SEEK_END)
            handle.truncate(size // 2)
        raise SimulatedCrash(
            f"failpoint store.checkpoint.partial left {tmp.name} "
            f"half-written", failpoint="store.checkpoint.partial")
    os.replace(tmp, target)


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Read a checkpoint previously written by :func:`save_checkpoint`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise ConfigurationError(
            f"cannot read checkpoint {path}: {err}") from err
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise ConfigurationError(
            f"{path}: expected format {CHECKPOINT_FORMAT!r}, got "
            f"{payload.get('format')!r}")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"{path}: unsupported checkpoint version "
            f"{payload.get('version')!r}")
    try:
        checkpoint = Checkpoint(
            gamma=int(payload["gamma"]),
            capacity=float(payload["capacity"]),
            wal_applied=int(payload["wal_applied"]),
            next_server_id=int(payload["next_server_id"]),
            algorithm=str(payload.get("algorithm", "")))
        for entry in payload["servers"]:
            replicas = [(int(t), int(i), float(load))
                        for t, i, load in entry["replicas"]]
            checkpoint.servers[int(entry["id"])] = (
                dict(entry.get("tags", {})), replicas)
    except (KeyError, TypeError, ValueError) as err:
        raise StoreCorruptionError(
            f"{path}: malformed checkpoint payload ({err})") from None
    return checkpoint


def diff_placements(a: PlacementState, b: PlacementState,
                    load_tol: float = LOAD_EPS,
                    compare_tags: bool = True,
                    ignore_provisioning: bool = False) -> List[str]:
    """Differences between two placement states (empty == identical).

    Replica *assignments* and per-replica loads are compared exactly
    (both survive serialization bitwise); the per-tenant load
    accumulators are compared within ``load_tol`` because a recovered
    state re-sums them fresh, while a long-lived state carries the
    rounding history of every remove-and-replace it survived.

    ``compare_tags=False`` skips server tags.  Tags are algorithm
    bookkeeping (CUBEFIT's maturity/slot counters) mutated outside the
    logged operations, so they are durable only up to the latest
    *checkpoint*, not the WAL tail; crash-recovery differentials
    compare them loosely for that reason (see ``docs/durability.md``).

    ``ignore_provisioning=True`` skips the server-count and
    next-server-id comparison.  A fault between an ``open_server``
    record and the operation that needed the server (e.g. an fsync
    failure mid-operation) legitimately leaves the recovered state with
    a trailing *empty* server the in-memory state rolled back; the
    chaos conformance differential tolerates exactly that, and nothing
    else.
    """
    diffs: List[str] = []
    if a.gamma != b.gamma:
        diffs.append(f"gamma: {a.gamma} != {b.gamma}")
    if a.capacity != b.capacity:
        diffs.append(f"capacity: {a.capacity!r} != {b.capacity!r}")
    if not ignore_provisioning:
        if a.num_servers != b.num_servers:
            diffs.append(
                f"num_servers: {a.num_servers} != {b.num_servers}")
        if a._next_server_id != b._next_server_id:
            diffs.append(f"next_server_id: {a._next_server_id} != "
                         f"{b._next_server_id}")
    snap_a, snap_b = a.snapshot(), b.snapshot()
    if ignore_provisioning:
        snap_a = {sid: reps for sid, reps in snap_a.items() if reps}
        snap_b = {sid: reps for sid, reps in snap_b.items() if reps}
    if snap_a != snap_b:
        changed = sorted(sid for sid in set(snap_a) | set(snap_b)
                         if snap_a.get(sid) != snap_b.get(sid))
        diffs.append(f"replica assignment differs on servers {changed}")
    for sid in sorted(set(a.server_ids) & set(b.server_ids)):
        sa, sb = a.server(sid), b.server(sid)
        for key in set(sa.replicas) & set(sb.replicas):
            if sa.replicas[key].load != sb.replicas[key].load:
                diffs.append(
                    f"server {sid} replica {key}: load "
                    f"{sa.replicas[key].load!r} != "
                    f"{sb.replicas[key].load!r}")
        if compare_tags and sa.tags != sb.tags:
            diffs.append(f"server {sid} tags: {sa.tags!r} != "
                         f"{sb.tags!r}")
    tenants_a, tenants_b = set(a.tenant_ids), set(b.tenant_ids)
    if tenants_a != tenants_b:
        diffs.append(
            f"tenant sets differ: only-a={sorted(tenants_a - tenants_b)}"
            f" only-b={sorted(tenants_b - tenants_a)}")
    for tenant_id in sorted(tenants_a & tenants_b):
        la, lb = a.tenant_load(tenant_id), b.tenant_load(tenant_id)
        if abs(la - lb) > load_tol:
            diffs.append(
                f"tenant {tenant_id} load: {la!r} != {lb!r}")
    return diffs
