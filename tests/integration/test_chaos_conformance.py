"""Chaos conformance: every catalogued failpoint fires, and every
firing either surfaces typed or leaves an audit-clean system.

The soak-reachable points run under :func:`repro.sim.chaos.run_chaos_soak`
with its full conformance contract (typed-or-clean, crash differential,
accounting).  The par and cluster seams — which a placement soak never
reaches — get dedicated exercises here with the same typed-or-clean
assertion.  The final test closes the loop: the union of everything
fired in this module equals :data:`repro.faults.CATALOG`, so a
failpoint cannot be added to the catalogue without a conformance
exercise.
"""

import pytest

from repro import faults
from repro.algorithms.naive import RobustBestFit
from repro.cluster.experiment import ClusterConfig, ClusterExperiment
from repro.core.cubefit import CubeFit
from repro.errors import FaultInjected, SimulationError
from repro.obs import MetricsRegistry
from repro.sim.chaos import (SOAK_FAILPOINTS, ChaosConfig, FaultEvent,
                             default_schedule, format_schedule,
                             parse_schedule, run_chaos_soak)

#: Accumulates every failpoint name fired by this module's tests; the
#: catalogue-coverage test at the bottom audits it.  Session-scoped by
#: module-global on purpose: pytest runs this file's tests in order.
_FIRED = set()


def _record_fired(counts):
    _FIRED.update(name for name, n in counts.items() if n > 0)


class TestSoakConformance:
    @pytest.mark.parametrize("seed,gamma", [(7, 2), (11, 3)])
    def test_full_schedule_is_conformant(self, tmp_path, seed, gamma):
        report = run_chaos_soak(
            lambda: RobustBestFit(gamma=gamma), tmp_path / "chaos",
            ChaosConfig(operations=150, seed=seed),
            obs=MetricsRegistry())
        assert report.ok, "\n".join(report.failures)
        # Every soak-reachable failpoint fired exactly once.
        assert report.fired == {name: 1 for name in SOAK_FAILPOINTS}
        assert report.crashes >= 1
        assert report.recoveries == report.crashes
        assert report.typed_errors >= 1
        _record_fired(report.fired)

    def test_cubefit_controller_survives_chaos(self, tmp_path):
        """CUBEFIT cannot be re-adopted after a crash; the harness must
        resume under bestfit and stay conformant."""
        report = run_chaos_soak(
            lambda: CubeFit(gamma=2, num_classes=10),
            tmp_path / "chaos",
            ChaosConfig(operations=150, seed=3), obs=MetricsRegistry())
        assert report.ok, "\n".join(report.failures)
        assert report.crashes >= 1
        _record_fired(report.fired)

    def test_schedule_reproduces_identically(self, tmp_path):
        config = ChaosConfig(operations=120, seed=5)
        first = run_chaos_soak(lambda: RobustBestFit(gamma=2),
                               tmp_path / "a", config)
        replay = ChaosConfig(
            operations=120, seed=5,
            schedule=parse_schedule(format_schedule(first.schedule)))
        second = run_chaos_soak(lambda: RobustBestFit(gamma=2),
                                tmp_path / "b", replay)
        assert first.ok and second.ok
        assert second.schedule == first.schedule

        def normalized(report, store):
            return [line.replace(str(tmp_path / store), "STORE")
                    for line in report.error_log]

        assert normalized(second, "b") == normalized(first, "a")
        assert second.result.counts == first.result.counts
        _record_fired(first.fired)

    def test_explicit_schedule_entry_beyond_ops_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            ChaosConfig(operations=10, schedule=(
                FaultEvent(at_op=10, spec="algo.place=raise"),))

    def test_default_schedule_is_deterministic(self):
        assert default_schedule(150, 9) == default_schedule(150, 9)
        assert default_schedule(150, 9) != default_schedule(150, 10)


class TestParSeams:
    def test_worker_death_mid_batch_is_typed(self):
        from repro.par import pmap
        with faults.injected("par.worker", action="raise",
                             after_hits=2):
            with pytest.raises(FaultInjected) as exc:
                pmap(lambda item, registry: item, [1, 2, 3], jobs=1)
        assert exc.value.failpoint == "par.worker"
        _record_fired(faults.FAILPOINTS.fired_counts())

    def test_absorb_drop_undercounts_only_obs(self):
        from repro.par import pmap
        obs = MetricsRegistry()

        def work(item, registry):
            if registry is not None:
                registry.counter("n").inc()
            return item

        with faults.injected("par.absorb.drop", action="raise"):
            assert pmap(work, [1, 2, 3], jobs=1, obs=obs) == [1, 2, 3]
        assert obs.counter("n").value == 2
        _record_fired(faults.FAILPOINTS.fired_counts())


class TestClusterSeams:
    def _experiment(self, clients=12):
        homes = {0: [0, 1, 2], 1: [0, 1, 2]}
        counts = {0: clients, 1: clients}
        return ClusterExperiment(
            homes, counts, ClusterConfig(warmup=5.0, measure=15.0,
                                         seed=0))

    def test_machine_failure_mid_experiment(self):
        """The chaos victim joins failed_servers and the run completes
        on the survivors — degraded, never silently wrong."""
        healthy = self._experiment().run()
        with faults.injected("cluster.machine.fail", action="raise"):
            chaotic = self._experiment().run()
        assert chaotic.failed_servers == [2]
        assert chaotic.completed > 0
        # The victim died before the measurement window: it did less
        # work than in the healthy run (latency itself is stochastic
        # under rebalanced round-robin, so compare utilization).
        assert chaotic.utilization[2] < healthy.utilization[2]
        _record_fired(faults.FAILPOINTS.fired_counts())

    def test_routing_to_dead_machine_is_typed(self):
        """A stale routing table submits to a failed machine: the
        machine rejects it with a typed SimulationError."""
        exp = self._experiment()
        with faults.injected("cluster.route.dead", action="raise"):
            with pytest.raises(SimulationError):
                exp.run(fail_servers=[2])
        _record_fired(faults.FAILPOINTS.fired_counts())


class TestArrayCoreSeam:
    """``array_core.desync`` — a stale struct-of-arrays read.

    The seam sits where a worst-failover value is written into the
    array mirror, so it is only reachable with the array core enabled;
    the tests force the switch on so the exercise also covers the
    ``REPRO_ARRAY_CORE=0`` differential CI run.
    """

    def _run_workload(self, gamma=2, tenants=40, seed=13):
        from random import Random
        from repro.core.tenant import Tenant
        rng = Random(seed)
        algo = RobustBestFit(gamma=gamma)
        for tid in range(tenants):
            algo.place(Tenant(tid, round(rng.uniform(0.05, 0.3), 3)))
        return algo

    def test_desync_corruption_is_audit_clean(self):
        """The default float mutator inflates the mirrored value, so a
        desynced core only ever *refuses* placements — the packing that
        comes out may be sparser but must still be robust."""
        from repro.core import arrays
        from repro.core.validation import audit
        with arrays.overridden(True):
            with faults.injected("array_core.desync", action="corrupt"):
                chaotic = self._run_workload()
            healthy = self._run_workload()
        assert faults.FAILPOINTS.fired_counts().get(
            "array_core.desync", 0) > 0
        audit(chaotic.placement).raise_if_violated()
        # Conservative, never admissive: at least as many servers open.
        assert chaotic.placement.num_servers >= \
            healthy.placement.num_servers
        _record_fired(faults.FAILPOINTS.fired_counts())

    def test_desync_raise_is_typed(self):
        from repro.core import arrays
        from repro.core.tenant import Tenant
        with arrays.overridden(True):
            with faults.injected("array_core.desync", action="raise"):
                algo = RobustBestFit(gamma=2)
                with pytest.raises(FaultInjected) as exc:
                    for tid in range(5):
                        algo.place(Tenant(tid, 0.2))
        assert exc.value.failpoint == "array_core.desync"
        _record_fired(faults.FAILPOINTS.fired_counts())


class TestServeSeams:
    """``serve.*`` — the placement daemon's failpoints, drilled against
    a live in-process server (crash mode ``abort`` so a simulated
    crash tears the server down, not the test process)."""

    def _server(self, tmp_path, name="store", **overrides):
        from repro.serve import PlacementServer, ServeConfig
        overrides.setdefault("crash_mode", "abort")
        server = PlacementServer(tmp_path / name,
                                 tmp_path / f"{name}.sock",
                                 ServeConfig(**overrides))
        server.start()
        return server

    def test_accept_fault_drops_connection_server_survives(
            self, tmp_path):
        from repro.errors import ProtocolError
        from repro.serve import ServeClient
        server = self._server(tmp_path)
        try:
            with faults.injected("serve.accept", action="raise"):
                victim = ServeClient(server.socket_path, timeout=5.0)
                with pytest.raises(ProtocolError):
                    victim.ping()
                victim.close()
            # The daemon kept serving: a fresh connection works.
            with ServeClient(server.socket_path) as client:
                assert client.ping()["pong"] is True
        finally:
            server.stop()
        assert faults.FAILPOINTS.fired("serve.accept") == 1
        _record_fired(faults.FAILPOINTS.fired_counts())

    def test_handler_fault_is_typed_error_response(self, tmp_path):
        from repro.serve import ServeClient
        server = self._server(tmp_path)
        try:
            with ServeClient(server.socket_path) as client:
                with faults.injected("serve.handler", action="raise"):
                    with pytest.raises(FaultInjected) as exc:
                        client.place(1, 0.2)
                assert exc.value.failpoint == "serve.handler"
                # Same connection, next request: fully served.
                assert client.place(1, 0.2)
        finally:
            server.stop()
        _record_fired(faults.FAILPOINTS.fired_counts())

    def test_handler_crash_kills_daemon_recovery_holds(self, tmp_path):
        from repro.errors import ProtocolError, ReproError
        from repro.serve import ServeClient
        from repro.store import recover
        server = self._server(tmp_path)
        acked = {}
        client = ServeClient(server.socket_path, timeout=5.0)
        try:
            for tenant in (1, 2, 3):
                acked[tenant] = client.place(tenant, 0.2)
            with faults.injected("serve.handler", action="crash"):
                with pytest.raises((ProtocolError, ReproError, OSError)):
                    client.place(4, 0.2)
        finally:
            client.close()
            server.stop()
        assert server.crashed is not None
        # Kill -9 semantics: every acked placement recovered exactly.
        state = recover(tmp_path / "store")
        assert state.audit.ok
        assert set(state.placement.tenant_ids) == set(acked)
        for tenant, servers in acked.items():
            by_index = state.placement.tenant_servers(tenant)
            assert [by_index[i] for i in sorted(by_index)] == servers
        _record_fired(faults.FAILPOINTS.fired_counts())

    def test_checkpoint_timer_fault_skips_round_only(self, tmp_path):
        import time
        from repro.serve import ServeClient
        from repro.store import recover
        server = self._server(tmp_path, checkpoint_interval=0.05)
        try:
            with faults.injected("serve.checkpoint_timer",
                                 action="raise"):
                with ServeClient(server.socket_path) as client:
                    client.place(1, 0.3)
                    deadline = time.monotonic() + 10.0
                    while (faults.FAILPOINTS.fired(
                            "serve.checkpoint_timer") == 0
                           and time.monotonic() < deadline):
                        time.sleep(0.01)
                    # Daemon survived the skipped round and still
                    # serves and checkpoints on demand.
                    assert client.ping()["pong"] is True
                    assert client.checkpoint()["wal_applied"] > 0
        finally:
            server.stop()
        assert faults.FAILPOINTS.fired("serve.checkpoint_timer") == 1
        state = recover(tmp_path / "store")
        assert state.audit.ok and state.placement.num_tenants == 1
        _record_fired(faults.FAILPOINTS.fired_counts())

    def test_checkpoint_timer_crash_dies_uncheckpointed(self, tmp_path):
        import time
        from repro.serve import ServeClient
        from repro.store import recover
        server = self._server(tmp_path, checkpoint_interval=0.05)
        client = ServeClient(server.socket_path, timeout=5.0)
        try:
            acked = {t: client.place(t, 0.2) for t in (1, 2)}
            with faults.injected("serve.checkpoint_timer",
                                 action="crash"):
                deadline = time.monotonic() + 10.0
                while (server.crashed is None
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
            assert server.crashed is not None
        finally:
            client.close()
            server.stop()
        # No checkpoint was ever taken — recovery is pure WAL replay,
        # and the acked placements are all there.
        state = recover(tmp_path / "store")
        assert state.checkpoint_seq == 0
        assert state.records_replayed > 0
        assert state.audit.ok
        assert set(state.placement.tenant_ids) == set(acked)
        _record_fired(faults.FAILPOINTS.fired_counts())


class TestFleetSeams:
    """``fleet.*`` — the sharded fleet's routing, spillover, and
    rebalancing seams, drilled against a live serial
    :class:`~repro.fleet.PlacementFleet`."""

    def _fleet(self, tmp_path, **overrides):
        from repro.fleet import PlacementFleet
        overrides.setdefault("shards", 2)
        return PlacementFleet(tmp_path / "fleet", **overrides)

    def test_route_fault_is_typed_and_fleet_unchanged(self, tmp_path):
        from repro.core.tenant import Tenant
        fleet = self._fleet(tmp_path)
        try:
            fleet.place(Tenant(1, 0.2))
            before = fleet.router.snapshot()
            with faults.injected("fleet.route", action="raise"):
                with pytest.raises(FaultInjected) as exc:
                    fleet.place(Tenant(2, 0.2))
            assert exc.value.failpoint == "fleet.route"
            # The refused admission mutated nothing: router estimates
            # are untouched and the next placement is fully served.
            assert fleet.router.snapshot() == before
            shard, servers = fleet.place(Tenant(2, 0.2))
            assert servers
            for report in fleet.audit_all().values():
                report.raise_if_violated()
        finally:
            fleet.close()
        _record_fired(faults.FAILPOINTS.fired_counts())

    def test_spill_fault_surfaces_typed_saturation_stays(self, tmp_path):
        """With the spill path fault-blocked, a saturated target shard
        cannot hand off — the refusal surfaces typed, and removing the
        fault lets the same tenant spill to the sibling."""
        from repro.core.tenant import Tenant
        fleet = self._fleet(tmp_path, policy="least-loaded",
                            max_servers_per_shard=2)
        try:
            fleet.place(Tenant(1, 0.4))  # fills shard 0's two servers
            fleet.place(Tenant(2, 0.4))  # fills shard 1's two servers
            with faults.injected("fleet.spill", action="raise"):
                with pytest.raises(FaultInjected) as exc:
                    fleet.place(Tenant(3, 0.9))
            assert exc.value.failpoint == "fleet.spill"
            for report in fleet.audit_all().values():
                report.raise_if_violated()
        finally:
            fleet.close()
        _record_fired(faults.FAILPOINTS.fired_counts())

    def test_rebalance_fault_abandons_move_whole(self, tmp_path):
        """The failpoint sits before either shard mutates: a faulted
        migration is abandoned entirely, never half-applied."""
        from repro.core.tenant import Tenant
        fleet = self._fleet(tmp_path, policy="hash")
        try:
            for tid in range(12):
                fleet.place(Tenant(tid, 0.3))
            tenants_before = {
                shard_id: set(controller.placement.tenant_ids)
                for shard_id, controller in enumerate(fleet.shards)}
            with faults.injected("fleet.rebalance", action="raise"):
                with pytest.raises(FaultInjected) as exc:
                    fleet.rebalance(max_moves=4, tolerance=0.0)
            assert exc.value.failpoint == "fleet.rebalance"
            tenants_after = {
                shard_id: set(controller.placement.tenant_ids)
                for shard_id, controller in enumerate(fleet.shards)}
            assert tenants_after == tenants_before
            for report in fleet.audit_all().values():
                report.raise_if_violated()
        finally:
            fleet.close()
        _record_fired(faults.FAILPOINTS.fired_counts())

    def test_fleet_chaos_drill_counts_faults(self, tmp_path):
        """The whole-shard drill stays conformant with the route seam
        firing mid-stream: the fault is typed, counted, and the run
        still finishes audit-clean."""
        from repro.fleet import FleetChaosConfig, run_fleet_chaos
        with faults.injected("fleet.route", action="raise",
                             after_hits=10):
            report = run_fleet_chaos(
                tmp_path / "chaos",
                FleetChaosConfig(operations=80, shards=2, seed=4),
                obs=MetricsRegistry())
        assert report.ok, "\n".join(report.failures)
        assert report.counts.get("fault", 0) >= 1
        assert report.typed_errors.get("FaultInjected", 0) >= 1
        assert report.fired.get("fleet.route", 0) >= 1
        _record_fired(faults.FAILPOINTS.fired_counts())


class TestCatalogueCoverage:
    def test_every_catalogued_failpoint_fired_in_this_module(self):
        """Adding a CATALOG entry without a conformance exercise is a
        test failure, not silent drift."""
        missing = set(faults.CATALOG) - _FIRED
        assert not missing, (
            f"catalogued failpoints never fired in the conformance "
            f"suite: {sorted(missing)}")
