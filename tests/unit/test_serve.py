"""The placement service: wire protocol, admission, lifecycle.

Protocol error paths are exercised both at the parser level and
against a live in-process server over a real unix socket: a malformed
frame, an unknown verb, an oversized payload, and a full admission
queue must each come back as a *typed error response* on a surviving
connection — never a dropped connection, never a hang.
"""

import json
import socket
import threading

import pytest

from repro.errors import (BackpressureError, ConfigurationError,
                          FaultInjected, ProtocolError, ReproError)
from repro.serve import (PlacementServer, ServeClient, ServeConfig,
                         wait_until_ready)
from repro.serve import protocol
from repro.store import recover


# ---------------------------------------------------------------------
# Protocol unit tests (no server involved)
# ---------------------------------------------------------------------
class TestProtocolParsing:
    def test_round_trip(self):
        frame = protocol.encode_request(7, "place", tenant=3, load=0.5)
        request = protocol.parse_request(frame.rstrip(b"\n"))
        assert (request.id, request.verb) == (7, "place")
        assert request.params == {"tenant": 3, "load": 0.5}

    @pytest.mark.parametrize("line,fragment", [
        (b"not json at all", "malformed frame"),
        (b"[1, 2, 3]", "must be a JSON object"),
        (b'{"verb": "ping"}', "no 'id'"),
        (b'{"id": true, "verb": "ping"}', "'id' must be"),
        (b'{"id": 1.5, "verb": "ping"}', "'id' must be"),
        (b'{"id": 1, "verb": "explode"}', "unknown verb"),
        (b'{"id": 1}', "unknown verb"),
        (b'{"id": 1, "verb": "place", "tenant": 2}', "requires field"),
        (b'{"id": 1, "verb": "ping", "extra": 0}', "does not take"),
        (b'{"id": 1, "verb": "place", "tenant": 2, "load": NaN}',
         "non-finite"),
        (b'{"id": 1, "verb": "place", "tenant": 2, "load": Infinity}',
         "non-finite"),
        (b'{"id": 1, "verb": "update_load", "tenant": 2, '
         b'"load": -Infinity}', "non-finite"),
    ])
    def test_bad_frames_are_typed(self, line, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            protocol.parse_request(line)

    def test_error_carries_request_id_once_parsed(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.parse_request(b'{"id": 42, "verb": "explode"}')
        assert exc.value.request_id == 42
        with pytest.raises(ProtocolError) as exc:
            protocol.parse_request(b"garbage")
        assert exc.value.request_id is None

    def test_error_frame_rehydrates_typed(self):
        frame = protocol.encode_error(
            3, BackpressureError("full", retry_after=0.25))
        _, body = protocol.parse_response(frame.rstrip(b"\n"))
        assert body["error"]["type"] == "BackpressureError"
        with pytest.raises(BackpressureError) as exc:
            protocol.raise_error(body)
        assert exc.value.retry_after == 0.25

    def test_unknown_error_type_falls_back_to_base(self):
        body = {"ok": False, "error": {"type": "NotAThing",
                                       "message": "m"}}
        with pytest.raises(ReproError):
            protocol.raise_error(body)

    def test_internal_errors_are_not_named(self):
        frame = protocol.encode_error(1, ValueError("boom"))
        _, body = protocol.parse_response(frame.rstrip(b"\n"))
        assert body["error"]["type"] == "InternalError"

    def test_fault_errors_carry_failpoint(self):
        frame = protocol.encode_error(
            1, FaultInjected("injected", failpoint="serve.handler"))
        _, body = protocol.parse_response(frame.rstrip(b"\n"))
        assert body["error"]["failpoint"] == "serve.handler"

    def test_read_frame_oversize_consumes_to_newline(self):
        import io
        big = b"x" * 300 + b"\n"
        stream = io.BytesIO(big + b'{"id":1,"verb":"ping"}\n')
        with pytest.raises(ProtocolError, match="exceeds 128 bytes"):
            protocol.read_frame(stream, max_frame_bytes=128)
        # The stream stays framed: the next read is the next frame.
        assert protocol.read_frame(stream, 128) == \
            b'{"id":1,"verb":"ping"}'

    def test_read_frame_ceiling_counts_the_newline(self):
        import io
        # Exactly at the documented ceiling (newline included): fine.
        at_limit = b"x" * 127 + b"\n"
        assert protocol.read_frame(io.BytesIO(at_limit), 128) == \
            b"x" * 127
        # One byte over, even though newline-terminated: rejected,
        # and the stream stays framed for the next frame.
        stream = io.BytesIO(b"y" * 128 + b"\n" + b"next\n")
        with pytest.raises(ProtocolError, match="exceeds 128 bytes"):
            protocol.read_frame(stream, 128)
        assert protocol.read_frame(stream, 128) == b"next"

    def test_non_finite_floats_rejected_directly(self):
        from repro.serve import server as server_mod
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ProtocolError, match="finite"):
                server_mod._as_float(bad, "load")
        assert server_mod._as_float(0.5, "load") == 0.5


# ---------------------------------------------------------------------
# In-process server fixture
# ---------------------------------------------------------------------
@pytest.fixture
def server(tmp_path):
    """One live in-process server; crash-mode ``abort`` so a simulated
    crash tears the server down instead of the test process."""
    servers = []

    def make(**overrides):
        overrides.setdefault("crash_mode", "abort")
        instance = PlacementServer(
            tmp_path / f"store{len(servers)}",
            tmp_path / f"serve{len(servers)}.sock",
            ServeConfig(**overrides))
        instance.start()
        servers.append(instance)
        return instance

    yield make
    for instance in servers:
        instance.stop()


def _raw_conn(server):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(str(server.socket_path))
    return sock, sock.makefile("rb")


class TestServerRoundTrips:
    def test_verbs_and_stats(self, server):
        instance = server()
        with ServeClient(instance.socket_path) as client:
            assert client.ping()["pong"] is True
            first = client.place(1, 0.3)
            assert len(first) == instance.config.gamma
            client.place(2, 0.4)
            moved = client.update_load(1, 0.1)
            assert len(moved) == instance.config.gamma
            client.remove(2)
            stats = client.stats()
            assert stats["placement"]["tenants"] == 1
            assert stats["queue"]["capacity"] == \
                instance.config.queue_size
            result = client.checkpoint()
            assert result["wal_applied"] > 0

    def test_stats_shard_section_describes_the_store(self, server):
        instance = server(shard_id=3)
        with ServeClient(instance.socket_path) as client:
            client.place(1, 0.3)
            client.checkpoint()
            shard = client.stats()["shard"]
        assert shard["id"] == 3
        assert shard["store"] == str(instance.store_dir)
        assert shard["checkpoint_exists"] is True
        assert shard["wal_segments"]  # at least the live segment
        assert all(name.startswith("wal-") and name.endswith(".jsonl")
                   for name in shard["wal_segments"])
        assert shard["queue_depth"] == 0

    def test_stats_shard_id_defaults_to_null(self, server):
        instance = server()
        with ServeClient(instance.socket_path) as client:
            shard = client.stats()["shard"]
        assert shard["id"] is None
        assert shard["checkpoint_exists"] is False

    def test_negative_shard_id_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="shard_id"):
            ServeConfig(shard_id=-1)

    def test_typed_domain_errors_survive_the_wire(self, server):
        instance = server()
        with ServeClient(instance.socket_path) as client:
            with pytest.raises(ConfigurationError, match="load"):
                client.place(1, 5.0)
            # The connection survived the typed rejection.
            assert client.ping()["pong"] is True

    def test_graceful_stop_checkpoints_exact_state(self, server):
        instance = server()
        with ServeClient(instance.socket_path) as client:
            acked = {t: client.place(t, 0.2) for t in range(1, 8)}
        instance.stop()
        state = recover(instance.store_dir)
        assert state.audit.ok
        assert set(state.placement.tenant_ids) == set(acked)
        for tenant_id, servers_ in acked.items():
            by_index = state.placement.tenant_servers(tenant_id)
            assert [by_index[i] for i in sorted(by_index)] == servers_
        # Graceful stop checkpointed: recovery replays no WAL tail.
        assert state.records_replayed == 0

    def test_warm_restart_adopts_recovered_state(self, server):
        first = server()
        with ServeClient(first.socket_path) as client:
            client.place(1, 0.3)
            client.place(2, 0.4)
        first.stop()
        second = PlacementServer(first.store_dir, first.socket_path,
                                 ServeConfig(crash_mode="abort"))
        second.start()
        try:
            with ServeClient(second.socket_path) as client:
                assert client.stats()["placement"]["tenants"] == 2
                client.place(3, 0.2)
        finally:
            second.stop()


class TestServerProtocolErrorPaths:
    def test_malformed_frame_gets_typed_response(self, server):
        instance = server()
        sock, reader = _raw_conn(instance)
        try:
            sock.sendall(b"this is not json\n")
            _, body = protocol.parse_response(
                protocol.read_frame(reader))
            assert body["ok"] is False
            assert body["error"]["type"] == "ProtocolError"
            assert body["id"] is None
            # Connection survives: a well-formed frame still answers.
            sock.sendall(protocol.encode_request(5, "ping"))
            got_id, body = protocol.parse_response(
                protocol.read_frame(reader))
            assert got_id == 5 and body["ok"] is True
        finally:
            sock.close()

    def test_unknown_verb_echoes_request_id(self, server):
        instance = server()
        sock, reader = _raw_conn(instance)
        try:
            sock.sendall(protocol.encode(
                {"id": 9, "verb": "explode"}))
            got_id, body = protocol.parse_response(
                protocol.read_frame(reader))
            assert got_id == 9
            assert body["error"]["type"] == "ProtocolError"
            assert "unknown verb" in body["error"]["message"]
        finally:
            sock.close()

    def test_oversized_payload_rejected_connection_survives(
            self, server):
        instance = server(max_frame_bytes=256)
        sock, reader = _raw_conn(instance)
        try:
            sock.sendall(b'{"id": 1, "verb": "ping", "x": "'
                         + b"y" * 1024 + b'"}\n')
            _, body = protocol.parse_response(
                protocol.read_frame(reader))
            assert body["error"]["type"] == "ProtocolError"
            assert "exceeds 256 bytes" in body["error"]["message"]
            sock.sendall(protocol.encode_request(2, "ping"))
            got_id, body = protocol.parse_response(
                protocol.read_frame(reader))
            assert got_id == 2 and body["ok"] is True
        finally:
            sock.close()

    def test_queue_full_is_typed_backpressure(self, server):
        instance = server(queue_size=2, retry_after=0.125)
        original = instance._execute
        entered, release = threading.Event(), threading.Event()

        def gated(request):
            if request.params.get("tenant") == 1:
                entered.set()
                release.wait(10.0)
            return original(request)

        instance._execute = gated
        sock, reader = _raw_conn(instance)
        try:
            # Request 1 occupies the worker; 2..3 fill the queue; 4
            # must be rejected immediately with the back-off hint.
            sock.sendall(protocol.encode_request(1, "place",
                                                 tenant=1, load=0.1))
            assert entered.wait(10.0)
            for rid in (2, 3):
                sock.sendall(protocol.encode_request(
                    rid, "place", tenant=rid, load=0.1))
            sock.sendall(protocol.encode_request(4, "place",
                                                 tenant=4, load=0.1))
            got_id, body = protocol.parse_response(
                protocol.read_frame(reader))
            assert got_id == 4
            assert body["error"]["type"] == "BackpressureError"
            assert body["error"]["retry_after"] == 0.125
            release.set()
            # The admitted requests all complete in admission order.
            for expected in (1, 2, 3):
                got_id, body = protocol.parse_response(
                    protocol.read_frame(reader))
                assert got_id == expected and body["ok"] is True
        finally:
            release.set()
            sock.close()

    def test_nan_load_rejected_and_tenant_survives(self, server):
        """Regression: a NaN ``load`` once slipped past validation and
        silently removed the tenant before the typed error fired —
        state and WAL diverged.  The frame must now be refused at the
        protocol layer with the placement untouched."""
        instance = server()
        sock, reader = _raw_conn(instance)
        try:
            sock.sendall(protocol.encode_request(1, "place",
                                                 tenant=1, load=0.3))
            _, body = protocol.parse_response(
                protocol.read_frame(reader))
            assert body["ok"] is True
            sock.sendall(b'{"id": 2, "verb": "update_load", '
                         b'"tenant": 1, "load": NaN}\n')
            _, body = protocol.parse_response(
                protocol.read_frame(reader))
            assert body["ok"] is False
            assert body["error"]["type"] == "ProtocolError"
            assert "non-finite" in body["error"]["message"]
            # The tenant is still placed: the bad frame changed nothing.
            sock.sendall(protocol.encode_request(3, "stats"))
            got_id, body = protocol.parse_response(
                protocol.read_frame(reader))
            assert got_id == 3
            assert body["result"]["placement"]["tenants"] == 1
            assert instance.algorithm.placement.tenant_servers(1)
        finally:
            sock.close()

    def test_draining_server_rejects_new_requests(self, server):
        instance = server()
        with ServeClient(instance.socket_path) as client:
            client.place(1, 0.2)
            instance._draining = True
            with pytest.raises(ProtocolError, match="shutting down"):
                client.place(2, 0.2)
            # Readiness probes still answer and report the drain.
            assert client.ping()["draining"] is True


class TestServerRobustness:
    def test_slow_reader_send_times_out(self):
        """A client that stops reading must not wedge the writer: the
        kernel send timeout turns a blocked ``sendall`` into a dead
        connection after ``send_timeout`` seconds."""
        import time
        from repro.serve import server as server_mod
        left, right = socket.socketpair(socket.AF_UNIX,
                                        socket.SOCK_STREAM)
        left.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
        conn = server_mod._Connection(left, send_timeout=0.2)
        try:
            frame = b"x" * 65536
            deadline = time.monotonic() + 20.0
            sent = True
            # `right` never reads, so the buffers fill and the send
            # must fail by timeout instead of blocking forever.
            while sent and time.monotonic() < deadline:
                sent = conn.send(frame)
            assert sent is False
            assert conn.closed
        finally:
            conn.close()
            right.close()

    def test_stop_with_idle_connected_client_is_prompt(self, server):
        """Regression: closing a connection's buffered reader blocked
        on the handler thread's readline() lock, so graceful shutdown
        hung until every idle client went away on its own."""
        import time
        instance = server()
        sock, reader = _raw_conn(instance)
        try:
            sock.sendall(protocol.encode_request(1, "place",
                                                 tenant=1, load=0.3))
            _, body = protocol.parse_response(
                protocol.read_frame(reader))
            assert body["ok"] is True
            # The client stays connected and idle across stop().
            started = time.monotonic()
            instance.stop()
            assert time.monotonic() - started < 5.0, \
                "stop() waited on an idle client"
        finally:
            sock.close()

    def test_stop_with_dead_worker_and_full_queue(self, server):
        """Regression: ``stop()`` used a blocking put for its sentinel;
        with the worker already dead (crash in ``abort`` mode) and the
        queue full it hung forever.  It must now drain and return."""
        from repro.serve import server as server_mod
        instance = server(queue_size=2)
        # Kill the worker the way a crash leaves it: consumed sentinel,
        # thread gone, queue still full of un-drained jobs.
        instance._queue.put(server_mod._STOP)
        for thread in instance._threads:
            if thread.name == "serve-worker":
                thread.join(5.0)
                assert not thread.is_alive()
        instance._queue.put_nowait(
            server_mod._Job(server_mod._TimerCheckpoint(), None))
        instance._queue.put_nowait(
            server_mod._Job(server_mod._TimerCheckpoint(), None))
        stopper = threading.Thread(target=instance.stop)
        stopper.start()
        stopper.join(10.0)
        assert not stopper.is_alive(), "stop() hung on a full queue"
        assert instance._stopped


class TestClientRetry:
    def test_place_retry_sleeps_off_backpressure(self, server,
                                                 monkeypatch):
        instance = server()
        naps = []
        monkeypatch.setattr("repro.serve.client.time.sleep",
                            naps.append)
        calls = {"n": 0}
        original = ServeClient.place

        def flaky(self, tenant, load):
            calls["n"] += 1
            if calls["n"] < 3:
                raise BackpressureError("full", retry_after=0.5)
            return original(self, tenant, load)

        monkeypatch.setattr(ServeClient, "place", flaky)
        with ServeClient(instance.socket_path) as client:
            assert len(client.place_retry(1, 0.2)) == 2
        assert naps == [0.5, 0.5]


class TestServeConfigValidation:
    @pytest.mark.parametrize("overrides", [
        {"gamma": 0}, {"queue_size": 0}, {"retry_after": -1.0},
        {"checkpoint_interval": -0.5}, {"max_frame_bytes": 10},
        {"crash_mode": "panic"}, {"send_timeout": -1.0},
    ])
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            ServeConfig(**overrides)

    def test_double_start_rejected(self, server):
        instance = server()
        with pytest.raises(ConfigurationError, match="already started"):
            instance.start()

    def test_second_server_on_live_socket_rejected(self, server,
                                                   tmp_path):
        instance = server()
        clash = PlacementServer(tmp_path / "other-store",
                                instance.socket_path,
                                ServeConfig(crash_mode="abort"))
        with pytest.raises(ConfigurationError, match="already served"):
            clash.start()

    def test_stale_socket_file_is_reclaimed(self, server, tmp_path):
        stale = tmp_path / "serve0.sock"
        stale.parent.mkdir(parents=True, exist_ok=True)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(str(stale))
        sock.close()  # bound then closed: file left, nobody listening
        instance = server()  # binds the same path
        assert instance.socket_path == stale
        wait_until_ready(stale, timeout=5.0)


class TestWireFormat:
    def test_frames_are_single_json_lines(self):
        frame = protocol.encode_result(1, {"servers": [0, 1]})
        assert frame.endswith(b"\n") and frame.count(b"\n") == 1
        assert json.loads(frame) == {
            "id": 1, "ok": True, "result": {"servers": [0, 1]}}
