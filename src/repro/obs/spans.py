"""Nestable wall-clock span timers.

``span("recovery", registry=reg)`` times a block and records the
duration into the registry histogram ``span.<path>.seconds``, where
``<path>`` joins the names of all enclosing spans with ``/`` — nesting
is explicit in the metric name, so ``span.repack.seconds`` and
``span.soak/repack.seconds`` stay distinguishable.

Spans are usable without a registry (the ``duration`` attribute is
always populated on exit), and the active stack is thread-local so
concurrent harnesses do not interleave paths.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from .metrics import DEFAULT_BUCKETS, MetricsRegistry

_LOCAL = threading.local()


def _stack() -> List["span"]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def current_span() -> Optional["span"]:
    """The innermost active span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


class span:
    """Context-manager timer; see the module docstring.

    Attributes after exit: ``duration`` (seconds), ``path`` (the
    ``/``-joined nesting path the duration was recorded under).
    """

    __slots__ = ("name", "registry", "path", "duration", "_start")

    def __init__(self, name: str,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.name = name
        self.registry = registry
        self.path: Optional[str] = None
        self.duration: Optional[float] = None
        self._start: Optional[float] = None

    @property
    def depth(self) -> int:
        """Nesting depth while active (outermost span is 1)."""
        return _stack().index(self) + 1 if self in _stack() else 0

    def __enter__(self) -> "span":
        stack = _stack()
        parts = [s.name for s in stack] + [self.name]
        self.path = "/".join(parts)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start
        stack = _stack()
        # Exits are LIFO under normal with-statement use; be defensive
        # about generator-abandonment leaving stale inner frames.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if self.registry is not None:
            self.registry.histogram(
                f"span.{self.path}.seconds",
                buckets=DEFAULT_BUCKETS).observe(self.duration)
