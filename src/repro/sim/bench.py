"""Canonical placement-speed bench scenarios and baseline checking.

One place defines the benched algorithm lineup (:data:`FACTORIES`), the
timing protocol (:func:`time_scenario`), the feasibility fast-path
profile (:func:`feasibility_profile`) and the baseline tolerance check
(:func:`check_against_baseline`).  Both front-ends —
``tools/run_bench.py`` (writes ``BENCH_placement.json``) and
``benchmarks/bench_placement_speed.py`` (pytest-benchmark) — import
from here so the committed baseline and the pytest bench can never
drift apart on what "the cubefit scenario" means.

Timings are machine-dependent; ``servers`` and ``utilization`` are
deterministic and meaningful to diff, as are the
``feasibility.screened`` / ``feasibility.exact`` counters — the
screened fast path must answer the same placements with strictly fewer
exact top-``f`` evaluations, and the recorded ratio is the proof.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..algorithms.base import OnlinePlacementAlgorithm
from ..algorithms.naive import (RobustBestFit, RobustFirstFit,
                                RobustNextFit)
from ..algorithms.rfi import RFI
from ..core.cubefit import CubeFit
from ..errors import ConfigurationError
from ..obs import MetricsRegistry
from ..par import pmap
from ..workloads.distributions import UniformLoad
from ..workloads.sequences import generate_sequence

BENCH_FORMAT = "repro-bench"
#: Version 3 drops the v1 alias block (top-level ``n_tenants`` +
#: ``scenarios`` duplicating the first scale): every scale lives only
#: under ``scales``/``feasibility``.  :func:`check_against_baseline`
#: reads v2 and v3 payloads interchangeably.
BENCH_VERSION = 3

#: The benched lineup.  Keys are scenario names in the baseline file.
FACTORIES: Dict[str, Callable[[], OnlinePlacementAlgorithm]] = {
    "cubefit": lambda: CubeFit(gamma=2, num_classes=10),
    "rfi": lambda: RFI(gamma=2),
    "bestfit": lambda: RobustBestFit(gamma=2),
    "firstfit": lambda: RobustFirstFit(gamma=2),
    "nextfit": lambda: RobustNextFit(gamma=2),
}

#: Tenant counts timed by default: the historical 2k scenario, a 10k
#: scenario that stresses the screened fast path at fleet scale, and a
#: 100k scenario where the array core's batch screening and candidate
#: vectors carry tens of thousands of servers per query.
DEFAULT_SCALES: Sequence[int] = (2000, 10000, 100000)
DEFAULT_ROUNDS = 3
BENCH_SEED = 0
BENCH_DISTRIBUTION_MAX = 0.6

#: Sharded-fleet scenarios timed by default: ``(tenants, shards)``.
#: The 100k stream over 8 bestfit shards demonstrates the fleet
#: claim — aggregate throughput above the best single-controller
#: scenario at any scale — and the 1M stream over 16 shards exercises
#: the windowed streaming ingestion at the fleet-soak acceptance
#: scale (timed with one round; see :func:`run_bench`).
DEFAULT_FLEET_SCALES: Sequence[tuple] = ((100000, 8), (1000000, 16))

#: Fleet rows at or above this tenant count are timed with a single
#: round regardless of ``rounds`` — a 1M-tenant ingestion is minutes
#: of deterministic compute per round, and the packing fields the
#: baseline check cares about are round-invariant anyway.
FLEET_SINGLE_ROUND_FLOOR = 500000


def bench_sequence(n_tenants: int):
    """The bench workload: ``Uniform(0, 0.6]`` loads, fixed seed."""
    return generate_sequence(UniformLoad(BENCH_DISTRIBUTION_MAX),
                             n_tenants, seed=BENCH_SEED)


def time_scenario(factory: Callable[[], OnlinePlacementAlgorithm],
                  sequence, rounds: int = DEFAULT_ROUNDS) -> Dict:
    """Consolidate ``sequence`` ``rounds`` times on fresh instances.

    ``tenants_per_second`` uses the *fastest* round: consolidation is
    deterministic compute, so the minimum is the least-noise estimate
    on a shared machine, while ``seconds_mean`` keeps the noisy average
    for context.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    seconds: List[float] = []
    algo = None
    for _ in range(rounds):
        algo = factory()
        start = time.perf_counter()
        algo.consolidate(sequence)
        seconds.append(time.perf_counter() - start)
    mean = sum(seconds) / len(seconds)
    return {
        "seconds_mean": round(mean, 6),
        "seconds_min": round(min(seconds), 6),
        "tenants_per_second": round(len(sequence) / max(min(seconds),
                                                        1e-9)),
        "servers": algo.placement.num_servers,
        "utilization": round(algo.placement.utilization(), 4),
    }


def feasibility_profile(factory: Callable[[], OnlinePlacementAlgorithm],
                        sequence) -> Dict:
    """Screened-vs-exact feasibility counters for one consolidation.

    Returns ``{"screened": n, "exact": m, "screened_fraction": f}`` —
    the fraction of single-placement feasibility decisions the bound
    screen answered without an exact top-``f`` evaluation.
    """
    registry = MetricsRegistry()
    algo = factory()
    algo.attach_obs(registry)
    algo.consolidate(sequence)
    snapshot = registry.snapshot()
    screened = int(snapshot.get("feasibility.screened",
                                {"value": 0})["value"])
    exact = int(snapshot.get("feasibility.exact",
                             {"value": 0})["value"])
    checks = screened + exact
    return {
        "screened": screened,
        "exact": exact,
        "screened_fraction": round(screened / checks, 4) if checks
        else 0.0,
    }


#: Tenants routed + admitted per :func:`fleet_scenario` window.
FLEET_BENCH_WINDOW = 4096


def fleet_scenario(n_tenants: int, shards: int,
                   rounds: int = DEFAULT_ROUNDS,
                   policy: str = "hash",
                   window: int = FLEET_BENCH_WINDOW) -> Dict:
    """Time the sharded-fleet streaming pipeline on the bench workload.

    The bench stream is drawn lazily
    (:func:`~repro.workloads.sequences.stream_tenants`), routed
    ``window`` tenants at a time through a deterministic
    :class:`~repro.fleet.router.PlacementRouter`, and each window's
    per-shard groups are admitted through ``place_batch`` on the
    shard's own ``RobustBestFit`` — in memory, like every other bench
    scenario (the durable fleet with WAL + crash drills is
    :func:`repro.fleet.soak.run_fleet_soak`), and never with more
    than one window of the stream resident.  Two rates come out:

    * ``tenants_per_second`` — the full stream over the summed shard
      time, i.e. what one core executing shards back to back sustains;
    * ``aggregate_tenants_per_second`` — the sum of per-shard rates,
      i.e. what the fleet sustains with one core per shard (shards
      share nothing, so this is linear scale-out, and it is the number
      the "sharding beats one big controller" claim is about).

    ``servers`` and ``utilization`` are deterministic, like every
    other scenario: routing depends only on admission order, and
    batched admission is bit-identical to sequential placement.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    from ..fleet.router import PlacementRouter
    from ..workloads.sequences import stream_tenants

    best_wall = None
    best_aggregate = 0.0
    algos = None
    for _ in range(rounds):
        router = PlacementRouter(shards, policy=policy,
                                 seed=BENCH_SEED, batch_size=window)
        stream = stream_tenants(UniformLoad(BENCH_DISTRIBUTION_MAX),
                                n_tenants, seed=BENCH_SEED)
        round_algos = [RobustBestFit(gamma=2) for _ in range(shards)]
        shard_seconds = [0.0] * shards
        shard_counts = [0] * shards
        for groups in router.stream(stream):
            for shard in sorted(groups):
                members = groups[shard]
                start = time.perf_counter()
                round_algos[shard].place_batch(members)
                shard_seconds[shard] += time.perf_counter() - start
                shard_counts[shard] += len(members)
        wall = sum(shard_seconds)
        if best_wall is None or wall < best_wall:
            best_wall = wall
            best_aggregate = sum(
                count / max(seconds, 1e-9)
                for count, seconds in zip(shard_counts, shard_seconds)
                if count)
            algos = round_algos
    total_load = sum(a.placement.total_load() for a in algos)
    nonempty = sum(a.placement.num_nonempty_servers for a in algos)
    return {
        "shards": shards,
        "policy": policy,
        "seconds_min": round(best_wall, 6),
        "tenants_per_second": round(n_tenants / max(best_wall, 1e-9)),
        "aggregate_tenants_per_second": round(best_aggregate),
        "servers": sum(a.placement.num_servers for a in algos),
        "utilization": round(total_load / nonempty, 4) if nonempty
        else 0.0,
    }


def run_bench(scales: Sequence[int] = DEFAULT_SCALES,
              rounds: int = DEFAULT_ROUNDS,
              jobs: int = 1,
              names: Optional[Sequence[str]] = None,
              fleet_scales: Sequence[tuple] = DEFAULT_FLEET_SCALES,
              progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Time every scenario at every scale; return the v3 payload.

    ``jobs > 1`` times the scenarios of each scale on a forked worker
    pool — each worker times in its own process, so wall-clock drops
    while the deterministic fields (servers, utilization, feasibility
    counters) are unaffected.  On a loaded or single-core machine keep
    ``jobs=1`` for the least-noise timings.

    Every scale lives under ``scales`` (timings + packing) and
    ``feasibility`` (screened/exact ratios); fleet rows under
    ``fleet``.  The v2 alias block (top-level ``n_tenants`` +
    ``scenarios`` duplicating the first scale) is gone —
    :func:`check_against_baseline` still reads both versions.  Fleet
    rows at :data:`FLEET_SINGLE_ROUND_FLOOR` tenants or more are
    timed with a single round.
    """
    if not scales:
        raise ConfigurationError("no scales to bench")
    chosen = sorted(names) if names else sorted(FACTORIES)
    unknown = set(chosen) - set(FACTORIES)
    if unknown:
        raise ConfigurationError(
            f"unknown bench scenarios: {sorted(unknown)}")
    say = progress if progress is not None else (lambda line: None)
    per_scale: Dict[str, Dict] = {}
    feasibility: Dict[str, Dict] = {}
    for n_tenants in scales:
        sequence = bench_sequence(n_tenants)

        def one_scenario(name: str, _obs) -> Dict:
            timing = time_scenario(FACTORIES[name], sequence, rounds)
            timing["feasibility"] = feasibility_profile(
                FACTORIES[name], sequence)
            return timing

        timed = pmap(one_scenario, chosen, jobs=jobs)
        scale_key = str(n_tenants)
        per_scale[scale_key] = {}
        feasibility[scale_key] = {}
        for name, timing in zip(chosen, timed):
            feasibility[scale_key][name] = timing.pop("feasibility")
            per_scale[scale_key][name] = timing
            fp = feasibility[scale_key][name]
            say(f"[{n_tenants}] {name:>9}: "
                f"{timing['tenants_per_second']:>8,} tenants/s  "
                f"{timing['servers']:>5} servers  "
                f"util {timing['utilization']:.4f}  "
                f"screened {fp['screened_fraction']:.1%}")
    fleet: Dict[str, Dict] = {}
    for n_tenants, shards in fleet_scales:
        fleet_rounds = (1 if n_tenants >= FLEET_SINGLE_ROUND_FLOOR
                        else rounds)
        timing = fleet_scenario(n_tenants, shards, rounds=fleet_rounds)
        fleet[f"{n_tenants}x{shards}"] = timing
        say(f"[{n_tenants}] fleet x{shards}: "
            f"{timing['tenants_per_second']:>8,} tenants/s wall, "
            f"{timing['aggregate_tenants_per_second']:>8,} aggregate  "
            f"{timing['servers']:>5} servers  "
            f"util {timing['utilization']:.4f}")
    payload = {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "rounds": rounds,
        "seed": BENCH_SEED,
        "distribution": f"uniform(0,{BENCH_DISTRIBUTION_MAX}]",
        "scales": per_scale,
        "feasibility": feasibility,
    }
    if fleet:
        payload["fleet"] = fleet
    return payload


def packing_fingerprint(placement) -> str:
    """sha256 over the canonical sorted ``tenant -> servers`` mapping."""
    canon = json.dumps(
        sorted((tid, sorted(placement.tenant_servers(tid).items()))
               for tid in placement.tenant_ids))
    return hashlib.sha256(canon.encode("ascii")).hexdigest()


def batch_identity_check(n_tenants: int = 2000,
                         names: Optional[Sequence[str]] = None,
                         batch_sizes: Sequence[int] = (1, 64, 0)
                         ) -> List[str]:
    """Assert batched consolidation equals the sequential loop.

    Consolidates the bench workload once per ``batch_size`` (``0``
    means the algorithm's :attr:`~repro.algorithms.base.
    OnlinePlacementAlgorithm.DEFAULT_BATCH`) and compares packing
    fingerprints and server counts against the sequential run
    (``batch_size=1``).  Returns a list of divergences (empty =
    bit-identical) — the CI smoke's guard on the batched admission
    pipeline.
    """
    chosen = sorted(names) if names else sorted(FACTORIES)
    unknown = set(chosen) - set(FACTORIES)
    if unknown:
        raise ConfigurationError(
            f"unknown bench scenarios: {sorted(unknown)}")
    sequence = bench_sequence(n_tenants)
    tenants = list(sequence)
    problems: List[str] = []
    for name in chosen:
        results = {}
        for batch_size in batch_sizes:
            algo = FACTORIES[name]()
            algo.consolidate(tenants,
                             batch_size=batch_size or None)
            results[batch_size] = (
                packing_fingerprint(algo.placement),
                algo.placement.num_servers)
        base_fp, base_servers = results[batch_sizes[0]]
        for batch_size, (fp, servers) in results.items():
            if (fp, servers) != (base_fp, base_servers):
                problems.append(
                    f"{name}: batch_size={batch_size or 'default'} "
                    f"packing ({servers} servers, {fp[:16]}...) "
                    f"diverges from sequential ({base_servers} "
                    f"servers, {base_fp[:16]}...)")
    return problems


def check_against_baseline(payload: Dict, baseline: Dict,
                           slowdown_tolerance: float = 3.0
                           ) -> List[str]:
    """Compare a fresh bench run against a committed baseline.

    Returns a list of problems (empty = pass):

    * packing quality — ``servers`` and ``utilization`` — must match
      the baseline *exactly* (consolidation is deterministic; any drift
      is a behaviour change, not noise);
    * throughput must not be more than ``slowdown_tolerance`` times
      slower than the baseline (a deliberately loose floor: timings on
      shared CI boxes are noisy, and the check is meant to catch a
      10x-regression bug, not a 10% wobble).

    Scales and scenarios present in only one of the two payloads are
    skipped — a baseline predating a new scale stays usable.
    """
    if slowdown_tolerance <= 1.0:
        raise ConfigurationError(
            f"slowdown_tolerance must be > 1, got {slowdown_tolerance}")
    problems: List[str] = []
    base_scales = baseline.get("scales") \
        or {str(baseline.get("n_tenants")): baseline.get("scenarios", {})}
    new_scales = payload.get("scales") \
        or {str(payload.get("n_tenants")): payload.get("scenarios", {})}
    for scale_key, base_scenarios in sorted(base_scales.items()):
        new_scenarios = new_scales.get(scale_key)
        if new_scenarios is None:
            continue
        for name, base in sorted(base_scenarios.items()):
            fresh = new_scenarios.get(name)
            if fresh is None:
                continue
            where = f"[{scale_key}] {name}"
            if fresh["servers"] != base["servers"]:
                problems.append(
                    f"{where}: servers {fresh['servers']} != baseline "
                    f"{base['servers']}")
            if abs(fresh["utilization"] - base["utilization"]) > 5e-5:
                problems.append(
                    f"{where}: utilization {fresh['utilization']} != "
                    f"baseline {base['utilization']}")
            floor = base["tenants_per_second"] / slowdown_tolerance
            if fresh["tenants_per_second"] < floor:
                problems.append(
                    f"{where}: {fresh['tenants_per_second']} tenants/s "
                    f"is more than {slowdown_tolerance:g}x slower than "
                    f"baseline {base['tenants_per_second']}")
    # Fleet scenarios follow the same rules: packing exact, aggregate
    # throughput within the slowdown floor.  A baseline predating the
    # fleet section (or a run that skipped it) is silently compatible.
    for key, base in sorted(baseline.get("fleet", {}).items()):
        fresh = payload.get("fleet", {}).get(key)
        if fresh is None:
            continue
        where = f"[fleet {key}]"
        if fresh["servers"] != base["servers"]:
            problems.append(
                f"{where}: servers {fresh['servers']} != baseline "
                f"{base['servers']}")
        if abs(fresh["utilization"] - base["utilization"]) > 5e-5:
            problems.append(
                f"{where}: utilization {fresh['utilization']} != "
                f"baseline {base['utilization']}")
        floor = base["aggregate_tenants_per_second"] / slowdown_tolerance
        if fresh["aggregate_tenants_per_second"] < floor:
            problems.append(
                f"{where}: {fresh['aggregate_tenants_per_second']} "
                f"aggregate tenants/s is more than "
                f"{slowdown_tolerance:g}x slower than baseline "
                f"{base['aggregate_tenants_per_second']}")
    return problems
