"""Large-scale consolidation simulation runner (Section V-C).

"We implemented a simulator which has a suite of distributions generate
tenant load sequences and these loads are given to the placement
algorithms.  Based on the resulting placement, the simulator captures
statistics including how many servers were used, amount of time each
placement algorithm needs to consolidate tenants onto servers, and the
average server utilization."

:func:`run_once` executes one (algorithm, sequence) pair and captures
those statistics; :func:`compare` runs paired independent repetitions of
several algorithms over the same sequences and aggregates means, 95%
confidence intervals and the relative-difference savings metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..algorithms.base import OnlinePlacementAlgorithm
from ..analysis.stats import (ConfidenceInterval, confidence_interval_95,
                              relative_difference_percent)
from ..core.tenant import TenantSequence
from ..core.validation import audit
from ..errors import ConfigurationError
from ..par import pmap
from ..workloads.distributions import LoadDistribution
from ..workloads.sequences import generate_sequence

#: Factory returning a fresh algorithm instance per run.
AlgorithmFactory = Callable[[], OnlinePlacementAlgorithm]


@dataclass
class RunStats:
    """Statistics of one consolidation run."""

    algorithm: str
    distribution: str
    seed: int
    tenants: int
    servers: int
    utilization: float
    placement_seconds: float
    robust: bool


@dataclass
class ComparisonResult:
    """Aggregated multi-run comparison over one distribution."""

    distribution: str
    tenants: int
    runs: int
    #: algorithm name -> per-run server counts.
    servers: Dict[str, List[int]] = field(default_factory=dict)
    #: algorithm name -> per-run wall seconds.
    seconds: Dict[str, List[float]] = field(default_factory=dict)
    #: algorithm name -> per-run mean utilization.
    utilization: Dict[str, List[float]] = field(default_factory=dict)

    def mean_servers(self, algorithm: str) -> float:
        counts = self.servers[algorithm]
        return sum(counts) / len(counts)

    def servers_ci(self, algorithm: str) -> ConfidenceInterval:
        return confidence_interval_95(
            [float(c) for c in self.servers[algorithm]])

    def savings_percent(self, baseline: str,
                        candidate: str) -> float:
        """Relative difference of mean server counts:
        ``(baseline - candidate)/candidate * 100`` (Figure 6's metric)."""
        return relative_difference_percent(self.mean_servers(baseline),
                                           self.mean_servers(candidate))

    def savings_percent_ci(self, baseline: str,
                           candidate: str) -> ConfidenceInterval:
        """95% CI of per-run paired savings percentages."""
        per_run = [relative_difference_percent(float(b), float(c))
                   for b, c in zip(self.servers[baseline],
                                   self.servers[candidate])]
        return confidence_interval_95(per_run)


def run_once(factory: AlgorithmFactory, sequence: TenantSequence,
             verify: bool = False, obs=None) -> RunStats:
    """Consolidate one sequence with a fresh algorithm instance.

    ``obs`` (a :class:`~repro.obs.MetricsRegistry`) is attached to the
    algorithm so every placement operation feeds counters, duration
    histograms and journal events; ``None`` (the default) keeps the run
    un-instrumented.
    """
    algorithm = factory()
    if obs is not None:
        algorithm.attach_obs(obs)
    algorithm.consolidate(sequence)
    robust = True
    if verify:
        robust = audit(algorithm.placement).ok
    return RunStats(
        algorithm=algorithm.name,
        distribution=sequence.description,
        seed=sequence.seed if sequence.seed is not None else -1,
        tenants=len(sequence),
        servers=algorithm.placement.num_servers,
        utilization=algorithm.placement.utilization(),
        placement_seconds=algorithm.placement_seconds,
        robust=robust,
    )


def compare(factories: Dict[str, AlgorithmFactory],
            distribution: LoadDistribution,
            n_tenants: int, runs: int,
            base_seed: int = 0,
            verify: bool = False,
            jobs: int = 1,
            obs=None) -> ComparisonResult:
    """Paired comparison: every algorithm sees the same ``runs``
    independent sequences (seeds ``base_seed .. base_seed+runs-1``).

    With ``jobs > 1`` the repetitions fan out over a forked worker
    pool (:func:`repro.par.pmap`), one worker per run; each worker
    regenerates its sequence from the same seed the serial loop would
    use and results are folded back in run order, so the aggregate is
    bit-identical at any ``jobs``.  Server counts, wall seconds and
    utilizations are keyed by the factory-dict name exactly as in the
    serial path.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    if not factories:
        raise ConfigurationError("no algorithms to compare")
    result = ComparisonResult(distribution=distribution.name,
                              tenants=n_tenants, runs=runs)
    for name in factories:
        result.servers[name] = []
        result.seconds[name] = []
        result.utilization[name] = []

    def one_run(run_index: int, run_obs) -> List[RunStats]:
        sequence = generate_sequence(distribution, n_tenants,
                                     seed=base_seed + run_index)
        return [run_once(factory, sequence, verify=verify, obs=run_obs)
                for factory in factories.values()]

    for per_run in pmap(one_run, range(runs), jobs=jobs, obs=obs):
        for name, stats in zip(factories, per_run):
            result.servers[name].append(stats.servers)
            result.seconds[name].append(stats.placement_seconds)
            result.utilization[name].append(stats.utilization)
    return result
