"""Command-line entry points: regenerate any figure or table.

Usage::

    python -m repro figure5            # Section V-B failure experiments
    python -m repro figure6            # Section V-C consolidation savings
    python -m repro table1             # Table I dollar savings
    python -m repro theorem2           # competitive-ratio sweep
    python -m repro calibrate          # Section IV load-model calibration
    python -m repro chaos              # fault-injection conformance soak
    python -m repro all                # everything, in order

Set ``REPRO_FULL_SCALE=1`` for paper-scale runs (50,000 tenants x 10
runs, 69 servers, five-minute windows); the default is a laptop-scale
profile with identical shapes.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Optional

from .analysis.report import (figure5_table, figure6_table,
                              table1_table, theorem2_table)
from .cluster.calibration import calibrate_load_model
from .errors import ConfigurationError, ReproError, SimulationError
from .sim.figures import figure5, figure6, table1, theorem2
from .sim.scenarios import current_scale


def _render_svg(args: argparse.Namespace, name: str,
                renderer_factory) -> None:
    """Write a result figure as SVG when --svg DIR was given."""
    if args.svg is None:
        return
    from pathlib import Path
    directory = Path(args.svg)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.svg"
    renderer_factory().save(path)
    print(f"[wrote {path}]")


def _export(args: argparse.Namespace, name: str, table_factory) -> None:
    """Write a result table as CSV when --csv DIR was given.

    ``table_factory`` is a thunk so that table construction is skipped
    entirely when no export was requested.
    """
    if args.csv is None:
        return
    from pathlib import Path
    directory = Path(args.csv)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.csv"
    table_factory().to_csv(path)
    print(f"[wrote {path}]")


def _run_figure5(args: argparse.Namespace) -> None:
    result = figure5(seed=args.seed)
    print(result)
    _export(args, "figure5", lambda: figure5_table(result))
    from .viz.figures import render_figure5
    _render_svg(args, "figure5", lambda: render_figure5(result))


def _run_figure6(args: argparse.Namespace) -> None:
    result = figure6(base_seed=args.seed)
    print(result)
    _export(args, "figure6", lambda: figure6_table(result))
    from .viz.figures import render_figure6
    _render_svg(args, "figure6", lambda: render_figure6(result))


def _run_table1(args: argparse.Namespace) -> None:
    result = table1(base_seed=args.seed)
    print(result)
    _export(args, "table1", lambda: table1_table(result))


def _run_theorem2(args: argparse.Namespace) -> None:
    result = theorem2()
    print(result)
    _export(args, "theorem2", lambda: theorem2_table(result))
    from .viz.figures import render_theorem2
    _render_svg(args, "theorem2", lambda: render_theorem2(result))


def _run_scaling(args: argparse.Namespace) -> None:
    from .algorithms.rfi import RFI
    from .core.cubefit import CubeFit
    from .sim.timing import scaling_study
    from .workloads.distributions import UniformLoad

    profile = current_scale()
    top = max(profile.sim_tenants, 2000)
    counts = [max(top // 16, 100), top // 4, top]
    factories = {
        "cubefit": lambda: CubeFit(gamma=2, num_classes=10),
        "rfi": lambda: RFI(gamma=2),
    }
    study = scaling_study(factories, UniformLoad(0.3), counts,
                          seed=args.seed)
    print(study)
    savings = study.savings_series("rfi", "cubefit")
    print("\nCubeFit savings over RFI by scale (the asymptotic claim):")
    for n, value in savings:
        print(f"  n={n:>7,}: {value:+.1f}%")
    _export(args, "scaling", lambda: study.to_table())
    from .viz.figures import render_scaling
    _render_svg(args, "scaling", lambda: render_scaling(study))


def _run_churn(args: argparse.Namespace) -> None:
    from .algorithms.rfi import RFI
    from .core.cubefit import CubeFit
    from .sim.churn import ChurnConfig, run_churn
    from .workloads.distributions import UniformLoad

    config = ChurnConfig(arrival_rate=8.0, mean_lifetime=30.0,
                         horizon=150.0, sample_every=15.0,
                         seed=args.seed)
    print(f"Churn study: Poisson arrivals at {config.arrival_rate}/t, "
          f"exponential lifetimes (mean {config.mean_lifetime}t), "
          f"~{config.expected_population:.0f} tenants in steady state\n")
    for name, factory in (
            ("cubefit", lambda: CubeFit(gamma=2, num_classes=10)),
            ("rfi", lambda: RFI(gamma=2))):
        result = run_churn(factory, UniformLoad(0.4), config)
        robust = "robust" if result.final_robust else "VIOLATED"
        print(f"{name:>8}: {result.arrivals} arrivals / "
              f"{result.departures} departures; steady-state "
              f"{result.mean_steady_servers:.1f} servers at "
              f"{result.mean_steady_utilization:.2f} utilization "
              f"({robust})")


def _run_soak(args: argparse.Namespace) -> None:
    from .algorithms.rfi import RFI
    from .core.cubefit import CubeFit
    from .sim.soak import SoakConfig, run_soak

    config = SoakConfig(operations=400, seed=args.seed)
    print("Soak: randomized place/remove/resize/fail+recover/repack "
          "stream,\nrobustness audited after every operation.\n")
    for name, factory in (
            ("cubefit", lambda: CubeFit(gamma=2, num_classes=10)),
            ("rfi", lambda: RFI(gamma=2))):
        store = None
        if args.store:
            from pathlib import Path

            from .store import DurableStore
            store = DurableStore(Path(args.store) / name)
        try:
            result = run_soak(factory, config, store=store,
                              checkpoint_every=100 if store else None)
        finally:
            # Closed even when the soak (or an interrupt) aborts the
            # run — an open WAL handle must never outlive the command.
            if store is not None:
                store.close()
        if store is not None:
            print(f"[durable store: {Path(args.store) / name}]")
        print(result)
        if not result.ok:
            raise SystemExit(1)


def _run_checkpoint(args: argparse.Namespace) -> None:
    from .store import DurableStore

    if not args.store:
        raise ConfigurationError(
            "the checkpoint command requires --store DIR")
    with DurableStore(args.store, create=False) as store:
        state = store.recover()
        path = store.checkpoint(state.placement)
        removed = store.compact()
    print(f"recovered {state.placement.num_tenants} tenants on "
          f"{state.placement.num_servers} servers "
          f"(replayed {state.records_replayed} WAL records on top of "
          f"checkpoint seq {state.checkpoint_seq})")
    print(f"checkpoint written: {path} (covers {state.next_seq} "
          f"records); {len(removed)} WAL segment(s) compacted")


def _run_recover(args: argparse.Namespace) -> None:
    from .store import recover

    if not args.store:
        raise ConfigurationError(
            "the recover command requires --store DIR")
    state = recover(args.store)
    print(f"store:     {args.store}")
    print(f"algorithm: {state.algorithm or '(unknown)'}  "
          f"gamma={state.gamma}  capacity={state.capacity}")
    print(f"recovered: {state.placement.num_tenants} tenants on "
          f"{state.placement.num_servers} servers "
          f"({state.placement.num_nonempty_servers} non-empty)")
    print(f"replay:    checkpoint seq {state.checkpoint_seq} + "
          f"{state.records_replayed} WAL record(s); next seq "
          f"{state.next_seq}")
    print(f"audit:     {'OK' if state.audit.ok else 'VIOLATED'} at "
          f"{state.failures} failure(s); min slack "
          f"{state.audit.min_slack:.6f}")


def _run_metrics(args: argparse.Namespace) -> None:
    from .core.cubefit import CubeFit
    from .obs import EventJournal, MetricsRegistry, replay, set_enabled
    from .sim.churn import ChurnConfig, run_churn
    from .workloads.distributions import UniformLoad

    set_enabled(True)  # the subcommand's whole point is observability
    registry = MetricsRegistry(journal=EventJournal())
    config = ChurnConfig(arrival_rate=6.0, mean_lifetime=20.0,
                         horizon=60.0, sample_every=10.0,
                         seed=args.seed)
    print("Observability demo: an instrumented churn run "
          "(CubeFit, gamma=2).\n")
    result = run_churn(lambda: CubeFit(gamma=2, num_classes=10),
                       UniformLoad(0.4), config, obs=registry)
    print(registry.to_table().to_text())
    summary = replay(registry.journal)
    ops = ", ".join(f"{k}={v}" for k, v in sorted(summary.counts.items()))
    print(f"\njournal: {summary.total} events [{ops}]")
    print(f"run: {result.arrivals} arrivals / {result.departures} "
          f"departures, final_robust={result.final_robust}")
    _export(args, "metrics", registry.to_table)


def _run_explain(args: argparse.Namespace) -> None:
    from .algorithms.rfi import RFI
    from .analysis.diagnostics import explain
    from .core.cubefit import CubeFit
    from .workloads.distributions import UniformLoad
    from .workloads.sequences import generate_sequence
    from .workloads.trace_io import load_trace

    if args.trace:
        sequence = load_trace(args.trace)
        print(f"loaded {len(sequence)} tenants from {args.trace}\n")
    else:
        sequence = generate_sequence(UniformLoad(0.5), 2000,
                                     seed=args.seed)
        print(f"no --trace given; using {len(sequence)} tenants "
              f"~ {sequence.description}\n")
    for name, factory in (
            ("cubefit", lambda: CubeFit(gamma=2, num_classes=10)),
            ("rfi", lambda: RFI(gamma=2))):
        algo = factory()
        algo.consolidate(sequence)
        failures = None if name == "cubefit" else 1
        report = explain(algo.placement, failures=failures)
        print(f"=== {name}: {algo.placement.num_servers} servers ===")
        print(report)
        print()


def _run_bench(args: argparse.Namespace) -> None:
    from .sim.bench import run_bench

    print(f"Placement-speed bench ({args.tenants} tenants, "
          f"jobs={args.jobs}); deterministic fields: servers, "
          f"utilization, screened fraction.\n")
    run_bench(scales=(args.tenants,), rounds=2, jobs=args.jobs,
              fleet_scales=((args.tenants, args.shards),),
              progress=print)


def _run_sweep(args: argparse.Namespace) -> None:
    from .sim.sensitivity import (k_sensitivity, mu_sensitivity,
                                  sla_sensitivity)
    from .workloads.distributions import UniformLoad

    distribution = UniformLoad(0.6)
    print(f"Parameter sweeps on {distribution.name} "
          f"({args.tenants} tenants, jobs={args.jobs}).\n")
    mu_curve = mu_sensitivity(distribution, n_tenants=args.tenants,
                              seed=args.seed, jobs=args.jobs)
    print(mu_curve)
    best_mu = mu_curve.best()
    print(f"best mu: {best_mu.parameter} ({best_mu.servers} servers)\n")
    k_curve = k_sensitivity(distribution, n_tenants=args.tenants,
                            seed=args.seed, jobs=args.jobs)
    print(k_curve)
    best_k = k_curve.best()
    print(f"best K: {best_k.parameter:.0f} ({best_k.servers} servers)")
    _export(args, "sweep_mu", mu_curve.to_table)
    _export(args, "sweep_k", k_curve.to_table)
    sla_curve = sla_sensitivity(UniformLoad(0.9), n_tenants=args.tenants,
                                seed=args.seed, jobs=args.jobs)
    print(f"\n{sla_curve}")
    best_sla = sla_curve.best()
    print(f"cheapest robust point: target {best_sla.parameter} "
          f"({best_sla.servers} servers)")
    _export(args, "sweep_sla", sla_curve.to_table)


#: Instance size the opt-gap command uses when --tenants is left at the
#: fleet-scale global default: the exact oracle solves 8-tenant
#: instances in milliseconds, certifying every row.
OPT_GAP_DEFAULT_TENANTS = 8

#: Largest instance the opt-gap command accepts; beyond this even the
#: budget-exhausted interval stops being informative.
OPT_GAP_MAX_TENANTS = 64


def _run_opt_gap(args: argparse.Namespace) -> None:
    from .analysis.optimum import SearchBudget
    from .sim.optgap import run_opt_gap
    from .workloads.distributions import (NormalizedClients, UniformLoad,
                                          ZipfClients)

    if args.gamma < 1:
        raise ConfigurationError(f"gamma must be >= 1, got {args.gamma}")
    tenants = args.tenants
    if tenants == 2000:  # the global default targets sweep-scale runs
        tenants = OPT_GAP_DEFAULT_TENANTS
    if tenants > OPT_GAP_MAX_TENANTS:
        raise ConfigurationError(
            f"opt-gap solves an exact optimum; --tenants must be <= "
            f"{OPT_GAP_MAX_TENANTS}, got {tenants}")
    budget = None
    if args.budget is not None:
        budget = SearchBudget(max_nodes=args.budget)
    distributions = [
        UniformLoad(0.6),
        NormalizedClients(ZipfClients(exponent=3.0)),
    ]
    report = run_opt_gap(distributions, n_tenants=tenants,
                         runs=args.runs, gamma=args.gamma,
                         seed=args.seed, budget=budget, jobs=args.jobs)
    print(report)
    if report.certified_rows < len(report.rows):
        print(f"[{len(report.rows) - report.certified_rows} row(s) hit "
              f"the node budget: their optimum column is a certified "
              f"[LB, UB] interval and their gap an upper bound]")
    _export(args, "opt_gap", report.to_table)


def _run_chaos(args: argparse.Namespace) -> None:
    from .algorithms.naive import RobustBestFit
    from .sim.chaos import (ChaosConfig, default_schedule, parse_schedule,
                            run_chaos_soak)

    if args.gamma < 1:
        raise ConfigurationError(f"gamma must be >= 1, got {args.gamma}")
    if args.schedule and args.faults:
        raise ConfigurationError(
            "--schedule and --faults are mutually exclusive: --schedule "
            "replays an exact run, --faults derives one from the seed")
    if args.schedule:
        schedule = parse_schedule(args.schedule)
        if not schedule:
            raise ConfigurationError("--schedule is empty")
    elif args.faults:
        names = tuple(sorted({part.strip()
                              for part in args.faults.split(",")
                              if part.strip()}))
        if not names:
            raise ConfigurationError("--faults is empty")
        schedule = default_schedule(args.ops, args.seed,
                                    failpoints=names)
    else:
        schedule = ()  # default_schedule over every soak failpoint
    config = ChaosConfig(operations=args.ops, seed=args.seed,
                         schedule=schedule)

    if args.store:
        from pathlib import Path
        store_dir = Path(args.store) / "chaos"
    else:
        import tempfile
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        store_dir = tmp.name
    from .obs import MetricsRegistry
    print(f"Chaos soak: bestfit gamma={args.gamma}, {args.ops} ops, "
          f"seed {args.seed}; every fault must surface typed or leave "
          f"an audit-clean placement.\n")
    report = run_chaos_soak(lambda: RobustBestFit(gamma=args.gamma),
                            store_dir, config, obs=MetricsRegistry())
    for line in report.error_log:
        print(f"  {line}")
    print()
    print(report)
    if not report.ok:
        for failure in report.failures:
            print(f"  FAIL: {failure}", file=sys.stderr)
        reason = (f"{len(report.failures)} conformance failure(s)"
                  if report.failures else "post-fault audit failed")
        raise SimulationError(
            f"{reason}; reproduce: {report.repro_line}")


def _run_serve(args: argparse.Namespace) -> None:
    import signal

    from .obs import MetricsRegistry, set_enabled
    from .serve import PlacementServer, ServeConfig

    if not args.store:
        raise ConfigurationError("the serve command requires --store DIR")
    if not args.socket:
        raise ConfigurationError(
            "the serve command requires --socket PATH")
    set_enabled(True)  # a daemon without its stats verb is blind
    config = ServeConfig(gamma=args.gamma,
                         queue_size=args.queue_size,
                         checkpoint_interval=args.checkpoint_interval,
                         crash_mode="exit",
                         shard_id=args.shard_id)
    server = PlacementServer(args.store, args.socket, config,
                             obs=MetricsRegistry())
    for signum in (signal.SIGTERM, signal.SIGINT):
        # Graceful path: drain the queue, checkpoint, close the WAL.
        signal.signal(signum,
                      lambda _sig, _frm: server.request_shutdown())
    server.start()
    print(f"serving placements on {args.socket} "
          f"(store {args.store}, gamma {args.gamma}, queue "
          f"{args.queue_size}, checkpoint every "
          f"{args.checkpoint_interval or 'never'}s)", flush=True)
    server.run()
    print("serve: drained, checkpointed, closed")


def _run_serve_send(args: argparse.Namespace) -> None:
    import json

    from .serve import ServeClient
    from .serve.protocol import VERBS

    if not args.socket:
        raise ConfigurationError(
            "the serve-send command requires --socket PATH")
    if args.verb not in VERBS:
        raise ConfigurationError(
            f"unknown verb {args.verb!r}; known: {sorted(VERBS)}")
    params = {}
    if "tenant" in VERBS[args.verb]:
        if args.tenant is None:
            raise ConfigurationError(
                f"verb {args.verb!r} requires --tenant ID")
        params["tenant"] = args.tenant
    if "load" in VERBS[args.verb]:
        if args.load is None:
            raise ConfigurationError(
                f"verb {args.verb!r} requires --load X")
        params["load"] = args.load
    with ServeClient(args.socket) as client:
        result = client.call(args.verb, **params)
    print(json.dumps(result, sort_keys=True, indent=2))


def _run_fleet_soak(args: argparse.Namespace) -> None:
    from .fleet import (FleetSoakConfig, run_fleet_soak,
                        run_streaming_soak)
    from .obs import MetricsRegistry, set_enabled

    if not args.store:
        raise ConfigurationError(
            "the fleet-soak command requires --store DIR (fleet root)")
    set_enabled(True)  # the p50/p99 latency claim is measured, not inferred
    config = FleetSoakConfig(shards=args.shards, tenants=args.tenants,
                             policy=args.policy, gamma=args.gamma,
                             seed=args.seed)
    streaming = args.jobs == 1
    mode = (f"streaming ingestion, window {args.window}" if streaming
            else f"jobs={args.jobs}")
    print(f"Fleet soak: {args.tenants} tenants over {args.shards} "
          f"shard(s) under {args.store}, policy {args.policy}, "
          f"{mode}; shard {config.crash_shard} is "
          f"SIGKILL-drilled mid-stream.\n")
    if streaming:
        result = run_streaming_soak(args.store, config,
                                    obs=MetricsRegistry(),
                                    window=args.window,
                                    fsync=args.fsync)
    else:
        result = run_fleet_soak(args.store, config,
                                obs=MetricsRegistry(), jobs=args.jobs)
    print(result)
    if not result.ok:
        raise SimulationError(
            f"fleet soak failed conformance: audits_ok="
            f"{result.audits_ok}, divergences="
            f"{len(result.crash_divergences)}, accounted="
            f"{result.placed + result.spill_placed + result.spill_unplaced}"
            f"/{config.tenants}")


def _run_fleet_status(args: argparse.Namespace) -> None:
    from .fleet import read_fleet_meta, shard_directory
    from .store import recover

    if not args.store:
        raise ConfigurationError(
            "the fleet-status command requires --store DIR (fleet root)")
    meta = read_fleet_meta(args.store)
    shards = int(meta["shards"])
    print(f"fleet root: {args.store}")
    print(f"geometry:   {shards} shard(s), gamma {meta['gamma']}, "
          f"policy {meta['policy']}, seed {meta['seed']}, "
          f"budget {meta.get('max_servers_per_shard') or 'unbounded'}")
    tenants = servers = 0
    clean = True
    for shard_id in range(shards):
        directory = shard_directory(args.store, shard_id)
        if not (directory / "meta.json").exists():
            print(f"  shard {shard_id:3d}: (no store yet) {directory}")
            continue
        state = recover(directory)
        tenants += state.placement.num_tenants
        servers += state.placement.num_servers
        clean = clean and state.audit.ok
        print(f"  shard {shard_id:3d}: "
              f"{state.placement.num_tenants} tenants on "
              f"{state.placement.num_servers} servers; checkpoint seq "
              f"{state.checkpoint_seq} + {state.records_replayed} WAL "
              f"record(s); audit "
              f"{'OK' if state.audit.ok else 'VIOLATED'}")
    print(f"fleet:      {tenants} tenants on {servers} servers; "
          f"audits {'all clean' if clean else 'VIOLATED'}")
    if not clean:
        raise SystemExit(1)


def _run_calibrate(args: argparse.Namespace) -> None:
    result = calibrate_load_model()
    print("Section IV calibration (simulated cluster):")
    for point in result.boundary:
        print(f"  {point.tenants:3d} tenant(s): boundary at "
              f"{point.clients} clients")
    model = result.model
    print(f"  fitted: load = {model.delta:.4f} * clients + "
          f"{model.beta:.4f} per tenant")
    print(f"  C (max clients, one tenant) = "
          f"{result.max_clients_single_tenant}  (paper: 52)")


_COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "figure5": _run_figure5,
    "figure6": _run_figure6,
    "table1": _run_table1,
    "theorem2": _run_theorem2,
    "calibrate": _run_calibrate,
    "chaos": _run_chaos,
    "bench": _run_bench,
    "sweep": _run_sweep,
    "opt-gap": _run_opt_gap,
    "scaling": _run_scaling,
    "churn": _run_churn,
    "explain": _run_explain,
    "metrics": _run_metrics,
    "soak": _run_soak,
    "checkpoint": _run_checkpoint,
    "recover": _run_recover,
    "serve": _run_serve,
    "serve-send": _run_serve_send,
    "fleet-soak": _run_fleet_soak,
    "fleet-status": _run_fleet_status,
}

#: Commands that operate on a durable store or a live service; they
#: require --store/--socket and are excluded from ``repro all``.
_STORE_COMMANDS = {"checkpoint", "recover", "serve", "serve-send",
                   "fleet-soak", "fleet-status"}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the CUBEFIT paper's figures and tables "
                    "(ICDCS 2017).")
    parser.add_argument("experiment",
                        choices=sorted(_COMMANDS) + ["all"],
                        help="which artifact to regenerate")
    parser.add_argument("--seed", type=int, default=0,
                        help="base random seed (default 0)")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write each result as CSV into DIR")
    parser.add_argument("--svg", metavar="DIR", default=None,
                        help="also render each figure as SVG into DIR")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="tenant trace (JSON) for the explain "
                             "command")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="durable-store directory (WAL + "
                             "checkpoints) for the soak, checkpoint "
                             "and recover commands")
    parser.add_argument("--ops", type=int, default=150,
                        help="operation count for the chaos command "
                             "(default 150)")
    parser.add_argument("--gamma", type=int, default=2,
                        help="replication factor for the chaos "
                             "command's bestfit controller (default 2)")
    parser.add_argument("--faults", metavar="LIST", default=None,
                        help="comma-separated failpoint names for the "
                             "chaos command; a deterministic schedule "
                             "over them is derived from --seed")
    parser.add_argument("--schedule", metavar="SCHED", default=None,
                        help="exact chaos fault schedule "
                             "('at_op:name=action[:k=v]*', "
                             "comma-separated); reproduces a prior run")
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="unix-domain socket for the serve and "
                             "serve-send commands")
    parser.add_argument("--queue-size", type=int, default=64,
                        help="admission-queue bound for the serve "
                             "command (default 64); a full queue "
                             "answers with a typed backpressure error")
    parser.add_argument("--checkpoint-interval", type=float, default=5.0,
                        metavar="SECONDS",
                        help="seconds between the serve daemon's "
                             "checkpoint+compaction rounds (default 5; "
                             "0 disables the timer)")
    parser.add_argument("--verb", default="stats",
                        help="request verb for the serve-send command "
                             "(default stats)")
    parser.add_argument("--tenant", type=int, default=None,
                        help="tenant id for serve-send place/remove/"
                             "update_load")
    parser.add_argument("--load", type=float, default=None,
                        help="tenant load for serve-send place/"
                             "update_load")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for parallelizable "
                             "experiments (bench, sweep); default 1")
    parser.add_argument("--tenants", type=int, default=2000,
                        help="sequence length for the bench, sweep and "
                             "fleet-soak commands (default 2000)")
    parser.add_argument("--shards", type=int, default=8,
                        help="shard count for the fleet-soak command "
                             "(default 8)")
    parser.add_argument("--window", type=int, default=4096,
                        help="streaming-ingestion window for the "
                             "fleet-soak command at jobs=1: tenants "
                             "routed and admitted per cycle "
                             "(default 4096)")
    parser.add_argument("--fsync", default="always",
                        choices=["always", "rotate", "never"],
                        help="WAL fsync policy for streaming "
                             "fleet-soak shards (default always; "
                             "rotate/never trade the durability "
                             "contract for ingest speed)")
    parser.add_argument("--policy", default="hash",
                        choices=["hash", "least-loaded", "headroom"],
                        help="routing policy for the fleet-soak "
                             "command (default hash)")
    parser.add_argument("--shard-id", type=int, default=None,
                        help="shard id this serve daemon runs as "
                             "(reported by the stats verb)")
    parser.add_argument("--runs", type=int, default=3,
                        help="independent seeded instances per "
                             "distribution for the opt-gap command "
                             "(default 3)")
    parser.add_argument("--budget", type=int, default=None,
                        help="node budget for the opt-gap exact solver;"
                             " exhausted solves report a certified "
                             "[LB, UB] interval (default: the solver's "
                             "200000-node budget)")
    args = parser.parse_args(argv)

    from .par import validate_jobs
    try:
        validate_jobs(args.jobs)
        if args.tenants < 1:
            raise ConfigurationError(
                f"tenants must be >= 1, got {args.tenants}")
    except ReproError as err:
        print(f"repro: error: {err}", file=sys.stderr)
        return 1

    profile = current_scale()
    print(f"[scale profile: {profile.name} — "
          f"{profile.sim_tenants} tenants x {profile.sim_runs} runs, "
          f"{profile.cluster_servers} cluster servers; set "
          f"REPRO_FULL_SCALE=1 for paper scale]\n")

    names = sorted(set(_COMMANDS) - _STORE_COMMANDS) \
        if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        try:
            _COMMANDS[name](args)
            print(f"[{name}: {time.perf_counter() - start:.1f}s]\n")
        except KeyboardInterrupt:
            # Ctrl-C is an operator decision, not a crash: one line on
            # stderr and the conventional 128+SIGINT exit status.
            # Commands holding a durable store release it on the way
            # out through their own try/finally blocks.
            print(f"repro {name}: interrupted", file=sys.stderr)
            return 130
        except BrokenPipeError:
            # Downstream closed the pipe (e.g. `| head`): stop quietly
            # with the conventional 128+SIGPIPE status. Reopen stdout
            # on devnull so the interpreter's shutdown flush does not
            # traceback on the dead descriptor.
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
            return 141
        except ReproError as err:
            # Operator-facing failure (missing/corrupt file, bad
            # parameter, failed audit): one line on stderr, non-zero
            # exit — never a traceback.
            print(f"repro {name}: error: {err}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
