"""Property-based tests: trace round-trips and report rendering."""

from hypothesis import given, settings, strategies as st

from repro.analysis.report import Table
from repro.core.tenant import TenantSequence, make_tenants
from repro.workloads.trace_io import (load_placement, load_trace,
                                      save_placement, save_trace)

loads_strategy = st.lists(
    st.floats(min_value=1e-4, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)


@given(loads=loads_strategy, seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_trace_roundtrip_is_lossless(tmp_path_factory, loads, seed):
    path = tmp_path_factory.mktemp("traces") / "t.json"
    sequence = TenantSequence(tenants=make_tenants(loads),
                              description="prop", seed=seed)
    save_trace(sequence, path)
    loaded = load_trace(path)
    assert loaded.loads == sequence.loads
    assert loaded.seed == seed
    assert [t.tenant_id for t in loaded] == \
        [t.tenant_id for t in sequence]


@given(loads=loads_strategy, gamma=st.sampled_from([2, 3]))
@settings(max_examples=25, deadline=None)
def test_placement_roundtrip_is_lossless(tmp_path_factory, loads, gamma):
    from repro.core.cubefit import CubeFit
    base = tmp_path_factory.mktemp("placements")
    sequence = TenantSequence(tenants=make_tenants(loads))
    algo = CubeFit(gamma=gamma, num_classes=5)
    algo.consolidate(sequence)
    trace_path, placement_path = base / "t.json", base / "p.json"
    save_trace(sequence, trace_path)
    save_placement(algo.placement, placement_path)
    restored = load_placement(placement_path, load_trace(trace_path))
    assert restored.snapshot() == algo.placement.snapshot()
    # shared-load state is reconstructed, not just assignments
    for a in restored.server_ids:
        for b in restored.shared_partners(a):
            assert abs(restored.shared_load(a, b)
                       - algo.placement.shared_load(a, b)) < 1e-9


@given(loads=loads_strategy)
@settings(max_examples=40, deadline=None)
def test_trace_floats_survive_json_bitwise(tmp_path_factory, loads):
    """JSON uses repr round-tripping: every double must come back with
    the identical bit pattern, not merely within a tolerance."""
    import struct

    path = tmp_path_factory.mktemp("traces") / "t.json"
    save_trace(TenantSequence(tenants=make_tenants(loads)), path)
    for original, loaded in zip(loads, load_trace(path).loads):
        assert struct.pack("<d", original) == struct.pack("<d", loaded)


@given(loads=loads_strategy, gamma=st.sampled_from([1, 2, 3]))
@settings(max_examples=25, deadline=None)
def test_placement_roundtrip_loads_exact(tmp_path_factory, loads, gamma):
    from repro.algorithms.naive import RobustBestFit
    base = tmp_path_factory.mktemp("placements")
    sequence = TenantSequence(tenants=make_tenants(loads))
    algo = RobustBestFit(gamma=gamma)
    for tenant in sequence:
        algo.place(tenant)
    trace_path, placement_path = base / "t.json", base / "p.json"
    save_trace(sequence, trace_path)
    save_placement(algo.placement, placement_path)
    restored = load_placement(placement_path, load_trace(trace_path))
    assert restored.snapshot() == algo.placement.snapshot()
    for sid in restored.server_ids:
        original = algo.placement.server(sid)
        for key, replica in restored.server(sid).replicas.items():
            assert replica.load == original.replicas[key].load


cells = st.one_of(st.integers(min_value=-10**6, max_value=10**6),
                  st.floats(min_value=-1e6, max_value=1e6,
                            allow_nan=False, allow_infinity=False),
                  st.text(alphabet=st.characters(
                      blacklist_categories=("Cs", "Cc")), max_size=20))


@given(rows=st.lists(st.tuples(cells, cells), min_size=0, max_size=10))
@settings(max_examples=50, deadline=None)
def test_table_renders_any_values(rows):
    table = Table(title="prop", columns=["a", "b"])
    for row in rows:
        table.add_row(*row)
    text = table.to_text()
    assert text.splitlines()[0] == "prop"
    md = table.to_markdown()
    assert md.splitlines()[0] == "**prop**"
    csv_text = table.to_csv()
    assert csv_text.splitlines()[0] == "a,b"
    # Every row made it into the CSV (cells contain no newlines).
    assert len(csv_text.splitlines()) == len(rows) + 1
