"""``repro.store`` — durable placement state.

Write-ahead log (:mod:`~repro.store.wal`), self-contained checkpoints
(:mod:`~repro.store.snapshot`), and checkpoint-plus-tail crash recovery
(:mod:`~repro.store.recovery`).  See ``docs/durability.md`` for the
on-disk formats and the recovery invariants.
"""

from __future__ import annotations

from .recovery import DurableStore, RecoveredState, recover
from .snapshot import (CHECKPOINT_FORMAT, CHECKPOINT_VERSION, Checkpoint,
                       diff_placements, load_checkpoint, save_checkpoint)
from .wal import (FSYNC_ALWAYS, FSYNC_NEVER, FSYNC_POLICIES, FSYNC_ROTATE,
                  WalRecord, WriteAheadLog)

__all__ = [
    "WriteAheadLog", "WalRecord",
    "FSYNC_ALWAYS", "FSYNC_ROTATE", "FSYNC_NEVER", "FSYNC_POLICIES",
    "Checkpoint", "save_checkpoint", "load_checkpoint",
    "diff_placements", "CHECKPOINT_FORMAT", "CHECKPOINT_VERSION",
    "DurableStore", "RecoveredState", "recover",
]
