#!/usr/bin/env python
"""Quickstart: consolidate tenants with CUBEFIT and verify robustness.

Run with::

    python examples/quickstart.py

Walks through the library's core loop: build an online tenant sequence,
consolidate it, audit the packing against simultaneous server failures,
and compare against the RFI baseline.
"""

from repro import CubeFit, RFI, audit, make_tenants
from repro.algorithms.lower_bound import best_lower_bound
from repro.workloads import UniformLoad, generate_sequence


def main() -> None:
    # --- 1. The paper's running example (Figure 1's sequence) ---------
    loads = [0.6, 0.3, 0.6, 0.78, 0.12, 0.36]
    print("Tenant loads:", loads)

    for gamma in (2, 3):
        algo = CubeFit(gamma=gamma, num_classes=5)
        algo.consolidate(make_tenants(loads))
        report = audit(algo.placement)  # Theorem 1's condition
        print(f"\nCubeFit gamma={gamma}: {algo.num_servers} servers, "
              f"tolerates any {gamma - 1} failure(s): "
              f"{'OK' if report.ok else 'VIOLATED'} "
              f"(min slack {report.min_slack:.3f})")
        for server in algo.placement:
            if len(server) == 0:
                continue
            tenants = sorted(t for t, _ in server.replicas)
            print(f"  server {server.server_id}: load "
                  f"{server.load:.2f}, tenants {tenants}")

    # --- 2. A larger online workload ----------------------------------
    sequence = generate_sequence(UniformLoad(max_load=0.4),
                                 n=2000, seed=42)
    print(f"\nConsolidating {len(sequence)} tenants "
          f"~ {sequence.description} (total load "
          f"{sequence.total_load:.0f})...")

    cubefit = CubeFit(gamma=2, num_classes=10)
    cubefit.consolidate(sequence)
    rfi = RFI(gamma=2)  # the RTP-style baseline, mu = 0.85
    rfi.consolidate(sequence)

    lb = best_lower_bound(sequence.loads, gamma=2, num_classes=10)
    print(f"  lower bound (no robust packing can beat): {lb} servers")
    print(f"  CubeFit: {cubefit.num_servers} servers "
          f"(utilization {cubefit.placement.utilization():.2f})")
    print(f"  RFI:     {rfi.num_servers} servers "
          f"(utilization {rfi.placement.utilization():.2f})")
    savings = (rfi.num_servers - cubefit.num_servers) \
        / cubefit.num_servers * 100
    print(f"  CubeFit saves {savings:.1f}% servers over RFI "
          f"(the paper's Figure 6 metric)")

    # Both packings survive a single failure; only CubeFit's reserve
    # logic generalizes to more (gamma - 1) failures.
    audit(cubefit.placement).raise_if_violated()
    audit(rfi.placement, failures=1).raise_if_violated()
    print("  robustness audits: OK")


if __name__ == "__main__":
    main()
