"""Size-class machinery (Section III of the paper).

CUBEFIT partitions replicas into ``K`` classes by size.  With replication
factor ``gamma``:

* class ``tau`` for ``1 <= tau < K`` contains replicas with size in
  ``( 1/(tau+gamma), 1/(tau+gamma-1) ]``;
* class ``K`` ("tiny") contains replicas with size in
  ``( 0, 1/(K+gamma-1) ]``.

Because every replica of a tenant of load ``x`` has size ``x/gamma <=
1/gamma``, class 1's upper boundary ``1/gamma`` covers the largest
possible replica.

A *bin of class tau* is partitioned into ``tau + gamma - 1`` slots of
size ``1/(tau+gamma-1)``: ``tau`` data slots for class-``tau`` replicas
and ``gamma - 1`` slots reserved empty for failover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError

#: Relative tolerance used when deciding which side of a class boundary a
#: replica size falls on.  ``1/5`` computed in floating point may come out
#: a hair under 0.2; without the tolerance such a replica would land in
#: the wrong (smaller) class.
BOUNDARY_EPS = 1e-9


@dataclass(frozen=True)
class SizeClassifier:
    """Maps replica/tenant sizes to CUBEFIT classes.

    Parameters
    ----------
    num_classes:
        ``K``, the number of classes.  The paper suggests ``K = 10`` for
        large data centers and ``K = 5`` for smaller settings.
    gamma:
        Replication factor.
    """

    num_classes: int
    gamma: int

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ConfigurationError(
                f"num_classes (K) must be >= 2, got {self.num_classes}")
        if self.gamma < 2:
            raise ConfigurationError(
                f"gamma must be >= 2, got {self.gamma}")

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def replica_class(self, size: float) -> int:
        """Class of a replica of the given ``size``.

        The class ``tau`` satisfies ``tau+gamma-1 <= 1/size < tau+gamma``
        (left inequality from the inclusive upper boundary), so ``tau =
        floor(1/size) - gamma + 1``, clamped to ``K`` for tiny replicas.

        Raises
        ------
        ConfigurationError
            If ``size`` is non-positive or exceeds ``1/gamma`` (no valid
            replica can be larger than that).
        """
        if size <= 0.0:
            raise ConfigurationError(
                f"replica size must be positive, got {size!r}")
        inv = 1.0 / size
        tau = int(math.floor(inv + BOUNDARY_EPS)) - self.gamma + 1
        if tau < 1:
            raise ConfigurationError(
                f"replica size {size!r} exceeds the maximum replica size "
                f"1/gamma = {1.0 / self.gamma!r}")
        return min(tau, self.num_classes)

    def tenant_class(self, load: float) -> int:
        """Class of the replicas of a tenant with total ``load``."""
        return self.replica_class(load / self.gamma)

    def is_tiny(self, size: float) -> bool:
        """Whether a replica of ``size`` belongs to the tiny class ``K``."""
        return self.replica_class(size) == self.num_classes

    # ------------------------------------------------------------------
    # Class geometry
    # ------------------------------------------------------------------
    def class_bounds(self, tau: int) -> Tuple[float, float]:
        """Half-open replica-size interval ``(lo, hi]`` of class ``tau``."""
        self._check_class(tau)
        hi = 1.0 / (tau + self.gamma - 1)
        lo = 0.0 if tau == self.num_classes else 1.0 / (tau + self.gamma)
        return (lo, hi)

    def slots_per_bin(self, tau: int) -> int:
        """Total slots in a class-``tau`` bin (data + reserved)."""
        self._check_class(tau, allow_tiny=False)
        return tau + self.gamma - 1

    def data_slots(self, tau: int) -> int:
        """Slots of a class-``tau`` bin available for class-``tau``
        replicas (the remaining ``gamma-1`` are the failover reserve)."""
        self._check_class(tau, allow_tiny=False)
        return tau

    @property
    def reserved_slots(self) -> int:
        """Slots per bin kept empty in anticipation of failures."""
        return self.gamma - 1

    def slot_size(self, tau: int) -> float:
        """Size of each slot of a class-``tau`` bin."""
        return 1.0 / self.slots_per_bin(tau)

    def tiny_threshold(self) -> float:
        """Upper boundary of the tiny class: ``1/(K+gamma-1)``."""
        return 1.0 / (self.num_classes + self.gamma - 1)

    def alpha(self) -> int:
        """The paper's ``alpha_K``: largest integer with
        ``alpha^2 + alpha < K``.

        Used by the theoretical tiny-tenant policy, which groups tiny
        replicas into multi-replicas with total size in
        ``(1/(alpha+1), 1/alpha]``.
        """
        a = int(math.floor((math.sqrt(4 * self.num_classes + 1) - 1) / 2))
        # Guard against floating point on the boundary.
        while (a + 1) * (a + 1) + (a + 1) < self.num_classes:
            a += 1
        while a >= 1 and a * a + a >= self.num_classes:
            a -= 1
        return a

    def _check_class(self, tau: int, allow_tiny: bool = True) -> None:
        hi = self.num_classes if allow_tiny else self.num_classes - 1
        if not (1 <= tau <= hi):
            raise ConfigurationError(
                f"class must be in [1, {hi}], got {tau}")

    def __str__(self) -> str:
        return f"SizeClassifier(K={self.num_classes}, gamma={self.gamma})"
