"""Unit tests for the size-class machinery."""

import pytest

from repro.core.classes import SizeClassifier
from repro.errors import ConfigurationError


class TestClassification:
    def test_class_one_upper_boundary_is_max_replica(self):
        c = SizeClassifier(num_classes=5, gamma=2)
        assert c.replica_class(0.5) == 1          # exactly 1/gamma
        assert c.replica_class(0.5 - 1e-12) == 1

    def test_oversized_replica_rejected(self):
        c = SizeClassifier(num_classes=5, gamma=2)
        with pytest.raises(ConfigurationError):
            c.replica_class(0.51)

    def test_non_positive_rejected(self):
        c = SizeClassifier(num_classes=5, gamma=2)
        with pytest.raises(ConfigurationError):
            c.replica_class(0.0)

    @pytest.mark.parametrize("gamma,K", [(2, 5), (2, 10), (3, 5), (3, 10)])
    def test_boundaries_exact(self, gamma, K):
        """The interval (1/(tau+gamma), 1/(tau+gamma-1)] maps to tau."""
        c = SizeClassifier(num_classes=K, gamma=gamma)
        for tau in range(1, K):
            hi = 1.0 / (tau + gamma - 1)
            lo = 1.0 / (tau + gamma)
            assert c.replica_class(hi) == tau           # inclusive top
            assert c.replica_class(lo + 1e-9) == tau    # just above bottom
            # exactly the bottom boundary belongs to the NEXT class
            assert c.replica_class(lo) == min(tau + 1, K)

    def test_tiny_class(self):
        c = SizeClassifier(num_classes=5, gamma=2)
        threshold = c.tiny_threshold()
        assert threshold == pytest.approx(1.0 / 6.0)
        assert c.replica_class(threshold) == 5
        assert c.is_tiny(0.001)
        assert not c.is_tiny(0.4)

    def test_tenant_class_divides_by_gamma(self):
        c = SizeClassifier(num_classes=5, gamma=2)
        # load 0.9 -> replica 0.45 in (1/3, 1/2] -> class 1
        assert c.tenant_class(0.9) == 1
        # load 0.5 -> replica 0.25: exactly the top of (1/5, 1/4], so
        # class 3 (intervals are half-open on the low side)
        assert c.tenant_class(0.5) == 3
        # load 0.52 -> replica 0.26 in (1/4, 1/3] -> class 2
        assert c.tenant_class(0.52) == 2

    def test_class_bounds_roundtrip(self):
        c = SizeClassifier(num_classes=10, gamma=3)
        for tau in range(1, 11):
            lo, hi = c.class_bounds(tau)
            mid = (lo + hi) / 2 if lo > 0 else hi / 2
            assert c.replica_class(mid) == tau


class TestGeometry:
    def test_slot_layout(self):
        c = SizeClassifier(num_classes=10, gamma=3)
        assert c.slots_per_bin(4) == 6
        assert c.data_slots(4) == 4
        assert c.reserved_slots == 2
        assert c.slot_size(4) == pytest.approx(1.0 / 6.0)

    def test_slots_cover_capacity(self):
        c = SizeClassifier(num_classes=10, gamma=2)
        for tau in range(1, 10):
            total = c.slots_per_bin(tau) * c.slot_size(tau)
            assert total == pytest.approx(1.0)

    def test_tiny_class_has_no_bin_geometry(self):
        c = SizeClassifier(num_classes=5, gamma=2)
        with pytest.raises(ConfigurationError):
            c.slots_per_bin(5)

    def test_class_out_of_range(self):
        c = SizeClassifier(num_classes=5, gamma=2)
        with pytest.raises(ConfigurationError):
            c.class_bounds(0)
        with pytest.raises(ConfigurationError):
            c.class_bounds(6)


class TestAlpha:
    @pytest.mark.parametrize("K,expected", [
        (3, 1), (5, 1), (7, 2), (10, 2), (12, 2), (13, 3), (20, 3),
        (21, 4), (31, 5), (43, 6), (211, 14),
    ])
    def test_alpha_is_largest_with_alpha_sq_plus_alpha_below_k(
            self, K, expected):
        c = SizeClassifier(num_classes=K, gamma=2)
        alpha = c.alpha()
        assert alpha == expected
        assert alpha * alpha + alpha < K
        assert (alpha + 1) ** 2 + alpha + 1 >= K

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SizeClassifier(num_classes=1, gamma=2)
        with pytest.raises(ConfigurationError):
            SizeClassifier(num_classes=5, gamma=1)
