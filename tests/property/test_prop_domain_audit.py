"""Property tests relating the whole-domain audit to the brute-force one.

:func:`domain_failure_audit` generalizes single-server failures to
fault domains (racks / availability zones).  Three properties pin its
semantics to the independently-written :func:`brute_force_audit`:

* **Singleton reduction** — when every server is its own domain (an
  empty ``domain_of``, or all-distinct tags), failing one domain is
  failing one server, so the report must agree with
  ``brute_force_audit(failures=1)`` on both ``min_slack`` and the set
  of violating servers.
* **Untagged fallback** — servers missing from ``domain_of`` are
  implicit singletons: tagging them all with fresh unique domains must
  not change the report.
* **Partition reference** — for an arbitrary domain map, the report
  must equal a direct evaluation of the conservative failover formula
  for every (failed domain, survivor) pair.

The brute audit also considers the empty failure set, which can only
*raise* its worst case; with at least two servers every server has a
non-empty partner set, so the reduction is exact.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.placement import PlacementState
from repro.core.tenant import LOAD_EPS, Tenant
from repro.core.validation import brute_force_audit, domain_failure_audit
from repro.errors import CapacityError

MAX_SERVERS = 7


@st.composite
def packings_with_domains(draw):
    """A small random packing plus a random (partial) domain map.

    Built through the normal mutation API with no robustness admission
    control, so overloaded packings are generated too — the audits must
    agree on violations as well as clean reports.  Roughly half the
    servers stay untagged to exercise the singleton fallback.
    """
    gamma = draw(st.integers(min_value=2, max_value=3))
    ps = PlacementState(gamma=gamma)
    n_servers = draw(st.integers(min_value=max(2, gamma),
                                 max_value=MAX_SERVERS))
    for _ in range(n_servers):
        ps.open_server()
    n_tenants = draw(st.integers(min_value=0, max_value=6))
    for tid in range(n_tenants):
        load = draw(st.floats(min_value=0.05, max_value=1.0))
        targets = draw(st.permutations(range(n_servers)))[:gamma]
        try:
            ps.place_tenant(Tenant(tid, load), targets)
        except CapacityError:
            continue
    domain_of = {}
    for sid in ps.server_ids:
        if draw(st.booleans()):
            domain_of[sid] = draw(
                st.integers(min_value=0, max_value=n_servers - 1))
    return ps, domain_of


def _reference(placement, domain_of):
    """Direct per-(domain, survivor) evaluation of the formula."""
    domains = {}
    for sid in placement.server_ids:
        domains.setdefault(domain_of.get(sid, -1 - sid), []).append(sid)
    min_slack = math.inf
    violators = set()
    for failed in domains.values():
        failed_set = set(failed)
        for server in placement:
            if server.server_id in failed_set:
                continue
            extra = placement.failover_load(server.server_id, failed)
            slack = server.capacity - server.load - extra
            min_slack = min(min_slack, slack)
            if slack < -LOAD_EPS:
                violators.add(server.server_id)
    return min_slack, violators


@given(data=packings_with_domains())
@settings(max_examples=60, deadline=None)
def test_singleton_domains_reduce_to_single_failure_brute_force(data):
    placement, _ = data
    singleton = domain_failure_audit(placement, {})
    brute = brute_force_audit(placement, failures=1)
    assert singleton.min_slack == pytest.approx(brute.min_slack,
                                                abs=1e-9)
    assert {v.server_id for v in singleton.violations} \
        == {v.server_id for v in brute.violations}


@given(data=packings_with_domains())
@settings(max_examples=60, deadline=None)
def test_untagged_servers_behave_as_fresh_singleton_domains(data):
    placement, domain_of = data
    explicit = dict(domain_of)
    fresh = max(domain_of.values(), default=-1) + 1
    for sid in placement.server_ids:
        if sid not in explicit:
            explicit[sid] = fresh
            fresh += 1
    partial = domain_failure_audit(placement, domain_of)
    full = domain_failure_audit(placement, explicit)
    assert partial.min_slack == pytest.approx(full.min_slack, abs=1e-9)
    assert {(v.server_id, v.failed_set) for v in partial.violations} \
        == {(v.server_id, v.failed_set) for v in full.violations}


@given(data=packings_with_domains())
@settings(max_examples=60, deadline=None)
def test_matches_per_domain_reference(data):
    placement, domain_of = data
    report = domain_failure_audit(placement, domain_of)
    min_slack, violators = _reference(placement, domain_of)
    assert report.min_slack == pytest.approx(min_slack, abs=1e-9)
    assert {v.server_id for v in report.violations} == violators
    # Every recorded violation names the whole failed domain it is
    # overloaded under, and never its own server.
    for violation in report.violations:
        assert violation.server_id not in violation.failed_set
        assert violation.failed_set
