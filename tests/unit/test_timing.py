"""Unit tests for the scaling-study harness."""

import pytest

from repro.algorithms.rfi import RFI
from repro.core.cubefit import CubeFit
from repro.sim.timing import ScalingPoint, ScalingStudy, scaling_study
from repro.workloads.distributions import UniformLoad
from repro.errors import ConfigurationError


FACTORIES = {
    "cubefit": lambda: CubeFit(gamma=2, num_classes=10),
    "rfi": lambda: RFI(gamma=2),
}


@pytest.fixture(scope="module")
def study():
    return scaling_study(FACTORIES, UniformLoad(0.3),
                         tenant_counts=[100, 400, 1200], seed=0)


class TestScalingStudy:
    def test_point_per_algorithm_per_size(self, study):
        assert len(study.points) == 6
        assert len(study.series("cubefit")) == 3
        assert [p.tenants for p in study.series("rfi")] == [100, 400, 1200]

    def test_prefix_property(self, study):
        """Nested prefixes: server counts grow monotonically with n."""
        for name in FACTORIES:
            servers = [p.servers for p in study.series(name)]
            assert servers == sorted(servers)

    def test_savings_series_improves_with_scale(self, study):
        savings = study.savings_series("rfi", "cubefit")
        assert len(savings) == 3
        # The paper's asymptotic claim: larger n, better relative
        # performance for CubeFit.
        assert savings[-1][1] > savings[0][1]

    def test_table_rendering(self, study):
        table = study.to_table()
        text = table.to_text()
        assert "cubefit" in text and "rfi" in text
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0].startswith("algorithm,tenants")

    def test_throughput_positive(self, study):
        for point in study.points:
            assert point.tenants_per_second > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            scaling_study({}, UniformLoad(0.3), [10])
        with pytest.raises(ConfigurationError):
            scaling_study(FACTORIES, UniformLoad(0.3), [0])


class TestSavingsSeriesRegression:
    """savings_series must divide by the *baseline* server count."""

    @staticmethod
    def _study(points):
        study = ScalingStudy(distribution="manual")
        for name, n, servers in points:
            study.points.append(ScalingPoint(
                algorithm=name, tenants=n, servers=servers,
                seconds=1.0, utilization=0.5))
        return study

    def test_hand_computed_values(self):
        study = self._study([
            ("base", 100, 200), ("cand", 100, 150),
            ("base", 400, 1000), ("cand", 400, 600),
        ])
        savings = study.savings_series("base", "cand")
        # (200-150)/200 = 25%, (1000-600)/1000 = 40% — relative to the
        # baseline.  The old /candidate bug would report 33.3% and
        # 66.7% here.
        assert savings == [(100, pytest.approx(25.0)),
                           (400, pytest.approx(40.0))]

    def test_bounded_by_100_percent(self):
        """A candidate using almost nothing saves at most 100%."""
        study = self._study([("base", 50, 1000), ("cand", 50, 1)])
        ((_, value),) = study.savings_series("base", "cand")
        assert value == pytest.approx(99.9)
        assert value <= 100.0

    def test_zero_baseline_skipped(self):
        study = self._study([("base", 10, 0), ("cand", 10, 5)])
        assert study.savings_series("base", "cand") == []
