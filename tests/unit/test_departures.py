"""Unit tests for tenant departures (dynamic tenancy)."""

import numpy as np
import pytest

from repro.core.cubefit import CubeFit
from repro.core.tenant import Tenant, make_tenants
from repro.core.validation import audit
from repro.algorithms.rfi import RFI
from repro.errors import PlacementError


class TestBaseRemoval:
    def test_rfi_departure_frees_capacity(self):
        algo = RFI(gamma=2)
        algo.consolidate(make_tenants([0.5, 0.5]))
        algo.remove(0)
        assert algo.placement.num_tenants == 1
        assert algo.placement.tenant_load(0) == 0.0
        assert audit(algo.placement, failures=1).ok

    def test_freed_space_is_reused(self):
        algo = RFI(gamma=2)
        algo.consolidate(make_tenants([0.6, 0.6]))
        servers_full = algo.placement.num_servers
        algo.remove(0)
        algo.place(Tenant(2, 0.6))
        # The departed tenant's slots should absorb the newcomer.
        assert algo.placement.num_servers == servers_full

    def test_remove_unknown_tenant(self):
        algo = RFI(gamma=2)
        with pytest.raises(PlacementError):
            algo.remove(7)


class TestCubeFitRemoval:
    def test_robustness_preserved_under_churn(self):
        rng = np.random.default_rng(91)
        algo = CubeFit(gamma=2, num_classes=10)
        alive = set()
        next_id = 0
        for step in range(300):
            if alive and rng.random() < 0.4:
                tid = int(rng.choice(sorted(alive)))
                algo.remove(tid)
                alive.discard(tid)
            else:
                load = float(rng.uniform(0.01, 1.0))
                algo.place(Tenant(next_id, load))
                alive.add(next_id)
                next_id += 1
        report = audit(algo.placement)
        assert report.ok, str(report)
        assert algo.placement.num_tenants == len(alive)

    def test_departed_tiny_tenant_space_reclaimed_in_active_multi(self):
        algo = CubeFit(gamma=2, num_classes=10)
        # Two tiny tenants fill most of the active multi-replica.
        algo.consolidate(make_tenants([0.08, 0.08]))
        active = algo._active_multi
        assert active is not None
        size_before = active.size
        algo.remove(0)
        assert active.size == pytest.approx(size_before - 0.04)
        assert 0 not in active.tenant_ids
        # The next tiny tenant reuses the same multi-replica.
        algo.place(Tenant(2, 0.08))
        assert algo._active_multi is active

    def test_departures_counted(self):
        algo = CubeFit(gamma=2, num_classes=5)
        algo.consolidate(make_tenants([0.5, 0.5]))
        algo.remove(1)
        assert algo.stats["departures"] == 1

    def test_gamma3_churn(self):
        rng = np.random.default_rng(93)
        algo = CubeFit(gamma=3, num_classes=5)
        for tid in range(60):
            algo.place(Tenant(tid, float(rng.uniform(0.05, 0.9))))
        for tid in range(0, 60, 3):
            algo.remove(tid)
        assert audit(algo.placement).ok
        assert algo.placement.num_tenants == 40
