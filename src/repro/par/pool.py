"""Deterministic process-pool map for experiment fan-out.

The sweeps, comparisons and soak batteries are embarrassingly parallel
— every point regenerates its own workload from an explicit seed and
shares no state with its neighbours — so the engine here is
deliberately small: :func:`pmap` forks a pool, runs one item per task,
and collects results **in item order**.  Three properties make it safe
to wire through every harness:

* **Bit-identical to serial.**  Each item runs against its own fresh
  :class:`~repro.obs.MetricsRegistry` (when the caller attached one)
  in *both* the serial and the parallel path, and the parent absorbs
  the per-item snapshots in item order.  Nothing about the result or
  the merged observability depends on ``jobs``.
* **Nothing exotic crosses the process boundary.**  Workers are forked,
  so the callable and the items ride along in the copied address space
  (lambdas and closures work); only indices are sent to workers and
  only ``(result, snapshot, events)`` triples come back, which must be
  picklable.
* **Graceful degradation.**  ``jobs=1``, a platform without ``fork``,
  fewer than two items, or a nested call from inside a worker all run
  the plain in-process loop.

Seeds for multi-seed batteries come from :func:`derive_seed`, which
stretches a base seed through :class:`numpy.random.SeedSequence` so
per-item seeds are decorrelated yet reproducible from ``(base_seed,
index)`` alone.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..errors import ConfigurationError
from ..obs import EventJournal, MetricsRegistry, absorb_snapshot, active

#: Set in forked workers; a nested ``pmap`` inside a worker quietly
#: runs serially instead of forking grandchildren.
_IN_WORKER = False

#: ``(fn, items, want_obs)`` staged by the parent immediately before
#: forking; children inherit it through the copied address space.
_PAYLOAD: Optional[Tuple[Callable, Sequence, bool]] = None


def validate_jobs(jobs: object) -> int:
    """Check a ``--jobs``-style value and return it as an ``int``.

    Raises
    ------
    ConfigurationError
        If ``jobs`` is not an integer at least 1 (bools are rejected:
        ``--jobs True`` is a caller bug, not a worker count).
    """
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ConfigurationError(
            f"jobs must be an integer >= 1, got {jobs!r}")
    if jobs < 1:
        raise ConfigurationError(
            f"jobs must be an integer >= 1, got {jobs}")
    return jobs


def fork_available() -> bool:
    """Whether this platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic, decorrelated per-item seed.

    ``SeedSequence`` spawn keys guarantee independence between items
    even for adjacent base seeds, and the derivation depends only on
    the two integers — the same ``(base_seed, index)`` yields the same
    seed on every platform and at every ``jobs`` setting.
    """
    sequence = np.random.SeedSequence(entropy=int(base_seed),
                                      spawn_key=(int(index),))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def _item_registry(want_obs: bool) -> Optional[MetricsRegistry]:
    if not want_obs:
        return None
    return MetricsRegistry(journal=EventJournal())


def _run_item(index: int):
    """Worker body: run one item against a fresh registry."""
    global _IN_WORKER
    _IN_WORKER = True
    fn, items, want_obs = _PAYLOAD
    if faults.active():
        # Worker death mid-item: forked workers inherit the parent's
        # armed failpoints, so the raise happens in the child and
        # propagates to the parent through pool.map.
        faults.fire("par.worker")
    registry = _item_registry(want_obs)
    result = fn(items[index], registry)
    if registry is None:
        return result, None, None
    events = [(event.type, event.data) for event in registry.journal]
    return result, registry.snapshot(), events


def _absorb(obs: Optional[MetricsRegistry], snapshot, events) -> None:
    if obs is None or snapshot is None:
        return
    if faults.active() and faults.should("par.absorb.drop"):
        # One worker's observability snapshot is lost in transit: the
        # results are intact, the merged counters under-count.
        return
    absorb_snapshot(obs, snapshot)
    for event_type, data in events:
        obs.emit(event_type, **data)


def pmap(fn: Callable, items: Sequence, jobs: int = 1,
         obs: Optional[MetricsRegistry] = None) -> List:
    """Map ``fn`` over ``items`` on ``jobs`` worker processes.

    ``fn(item, registry)`` is called once per item with a fresh
    :class:`~repro.obs.MetricsRegistry` (or ``None`` when ``obs`` is
    ``None`` / observability is globally off); whatever the item's run
    records there is absorbed into ``obs`` in item order, counters
    summed and histograms merged bucket-wise, journal events re-emitted
    in sequence.  Results come back as a list in item order.

    ``jobs=1`` (the default), fewer than two items, platforms without
    ``fork``, and nested calls from inside a worker all run the exact
    same per-item protocol in-process, so a parallel run is
    bit-identical to a serial one.

    Exceptions raised by ``fn`` propagate to the caller in both modes.
    """
    global _PAYLOAD
    jobs = validate_jobs(jobs)
    obs = active(obs)
    want_obs = obs is not None
    items = list(items)
    workers = min(jobs, len(items))
    if workers < 2 or _IN_WORKER or not fork_available():
        results = []
        for item in items:
            if faults.active():
                faults.fire("par.worker")  # same seam as the fork path
            registry = _item_registry(want_obs)
            result = fn(item, registry)
            if registry is not None:
                events = [(event.type, event.data)
                          for event in registry.journal]
                _absorb(obs, registry.snapshot(), events)
            results.append(result)
        return results

    context = multiprocessing.get_context("fork")
    _PAYLOAD = (fn, items, want_obs)
    pool = context.Pool(processes=workers)
    results: List = []
    try:
        # imap streams outcomes back in item order, so snapshots are
        # absorbed while later items still run — same deterministic
        # merge order as the barrier, without holding every snapshot.
        for result, snapshot, events in pool.imap(
                _run_item, range(len(items)), chunksize=1):
            _absorb(obs, snapshot, events)
            results.append(result)
        pool.close()
        pool.join()
    except BaseException:
        # A worker raised, or the *parent* failed mid-collection
        # (absorb error, KeyboardInterrupt): the remaining workers are
        # killed and reaped before the exception propagates — no
        # zombies, no orphaned result pipes.
        pool.terminate()
        pool.join()
        raise
    finally:
        _PAYLOAD = None
    return results
