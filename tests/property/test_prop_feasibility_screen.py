"""Differential property: screened feasibility == exact feasibility.

:func:`robust_after_placement` decides most probes from two cheap
bounds on the cached worst-failover load and only falls through to the
exact :func:`worst_shared_sum` inside the ambiguous band.  The screen
is only sound if its decision matches the reference semantics of
:func:`exact_robust_after_placement` on *every* input — including
partially placed tenants, sibling bumps against already-chosen servers,
reserve headroom and anticipated future siblings.  These tests probe
random placements with random queries and demand bit-equal decisions,
and pin the observability contract (``feasibility.screened`` /
``feasibility.exact`` counters account for every call).
"""

from hypothesis import given, settings, strategies as st

from repro.algorithms.base import (exact_robust_after_placement,
                                   robust_after_placement)
from repro.core.placement import PlacementState
from repro.core.tenant import Tenant
from repro.errors import CapacityError
from repro.obs import MetricsRegistry

MAX_SERVERS = 8


def _random_placement(data, gamma):
    """Grow a placement through a drawn interleaving of mutations."""
    ps = PlacementState(gamma=gamma)
    for _ in range(gamma + 1):
        ps.open_server()
    next_tid = 0
    for step in range(data.draw(st.integers(3, 20), label="n_ops")):
        op = data.draw(
            st.sampled_from(["place_tenant", "partial", "remove",
                             "open_server"]),
            label=f"op[{step}]")
        if op == "open_server" and ps.num_servers < MAX_SERVERS:
            ps.open_server()
        elif op == "place_tenant":
            load = data.draw(st.floats(0.01, 0.8), label="load")
            perm = data.draw(st.permutations(ps.server_ids),
                             label="targets")
            try:
                ps.place_tenant(Tenant(next_tid, load), perm[:gamma])
            except CapacityError:
                continue
            next_tid += 1
        elif op == "partial":
            # Partially placed tenants are the interesting case: the
            # screen must anticipate sibling bumps correctly.
            load = data.draw(st.floats(0.01, 0.8), label="load")
            tenant = Tenant(next_tid, load)
            count = data.draw(st.integers(1, gamma), label="count")
            perm = data.draw(st.permutations(ps.server_ids),
                             label="targets")
            try:
                for replica, sid in zip(tenant.replicas(gamma)[:count],
                                        perm):
                    ps.place(replica, sid)
            except CapacityError:
                pass
            next_tid += 1
        elif op == "remove" and ps.tenant_ids:
            victim = data.draw(st.sampled_from(ps.tenant_ids),
                               label="victim")
            ps.remove_tenant(victim)
    return ps


@given(gamma=st.integers(2, 4), data=st.data())
@settings(max_examples=60, deadline=None)
def test_screened_matches_exact_on_random_probes(gamma, data):
    ps = _random_placement(data, gamma)
    registry = MetricsRegistry()
    n_probes = data.draw(st.integers(1, 12), label="n_probes")
    for probe in range(n_probes):
        replica_load = data.draw(st.floats(0.001, 1.2),
                                 label=f"replica_load[{probe}]")
        perm = data.draw(st.permutations(ps.server_ids),
                         label=f"servers[{probe}]")
        server_id = perm[0]
        n_chosen = data.draw(st.integers(0, min(gamma - 1,
                                                len(perm) - 1)),
                             label=f"n_chosen[{probe}]")
        chosen = perm[1:1 + n_chosen]
        failures = data.draw(st.integers(0, gamma), label=f"f[{probe}]")
        extra_reserve = data.draw(
            st.sampled_from([0.0, 0.05, 0.3]),
            label=f"reserve[{probe}]")
        future_siblings = data.draw(
            st.integers(0, gamma - 1 - n_chosen),
            label=f"future[{probe}]")
        screened = robust_after_placement(
            ps, server_id, replica_load, chosen, failures,
            extra_reserve=extra_reserve,
            future_siblings=future_siblings, obs=registry)
        exact = exact_robust_after_placement(
            ps, server_id, replica_load, chosen, failures,
            extra_reserve=extra_reserve,
            future_siblings=future_siblings)
        assert screened == exact, (
            f"screen diverged: server={server_id} load={replica_load} "
            f"chosen={list(chosen)} f={failures} "
            f"reserve={extra_reserve} future={future_siblings} "
            f"screened={screened} exact={exact}")
    snapshot = registry.snapshot()
    counted = snapshot.get("feasibility.screened", {}).get("value", 0) \
        + snapshot.get("feasibility.exact", {}).get("value", 0)
    assert counted == n_probes


@given(gamma=st.integers(2, 3), data=st.data())
@settings(max_examples=30, deadline=None)
def test_screen_near_boundary_loads(gamma, data):
    """Stress the ambiguous band: loads sized so post-placement headroom
    lands close to the cached worst-failover bound."""
    ps = _random_placement(data, gamma)
    registry = MetricsRegistry()
    for sid in ps.server_ids:
        server = ps.server(sid)
        cached = ps.worst_failover_load(sid, gamma - 1)
        headroom = server.capacity - server.load - cached
        for nudge in (-1e-12, 0.0, 1e-12, 1e-6, -1e-6):
            replica_load = headroom + nudge
            if replica_load <= 0.0:
                continue
            screened = robust_after_placement(
                ps, sid, replica_load, (), gamma - 1, obs=registry)
            exact = exact_robust_after_placement(
                ps, sid, replica_load, (), gamma - 1)
            assert screened == exact, (
                f"boundary divergence: server={sid} "
                f"load={replica_load!r} screened={screened} "
                f"exact={exact}")


def test_counters_split_by_decision_path():
    """A wide-open server screens; a near-full one needs the exact sum."""
    ps = PlacementState(gamma=2)
    for _ in range(3):
        ps.open_server()
    ps.place_tenant(Tenant(0, 0.5), [0, 1])
    registry = MetricsRegistry()
    # Tiny replica on an empty server: sufficient bound accepts outright.
    assert robust_after_placement(ps, 2, 0.01, (), 1, obs=registry)
    # Huge replica: necessary bound rejects outright.
    assert not robust_after_placement(ps, 0, 5.0, (), 1, obs=registry)
    snapshot = registry.snapshot()
    assert snapshot["feasibility.screened"]["value"] == 2
    assert "feasibility.exact" not in snapshot
    # Sibling bump against the shared partner forces the exact path.
    robust_after_placement(ps, 0, 0.45, (1,), 1, obs=registry)
    snapshot = registry.snapshot()
    assert snapshot.get("feasibility.exact", {}).get("value", 0) >= 1
