"""Unit tests for packing diagnostics (explain)."""

import pytest

from repro.analysis.diagnostics import explain
from repro.core.cubefit import CubeFit
from repro.core.placement import PlacementState
from repro.core.tenant import Tenant, make_tenants
from repro.algorithms.rfi import RFI
from repro.workloads.distributions import UniformLoad
from repro.workloads.sequences import generate_sequence
from repro.errors import ConfigurationError


def hand_placement():
    ps = PlacementState(gamma=2)
    for _ in range(2):
        ps.open_server()
    ps.place_tenant(Tenant(0, 0.8), [0, 1])  # 0.4 each, shared 0.4
    return ps


class TestExplain:
    def test_decomposition_adds_up(self):
        report = explain(hand_placement())
        for server in report.servers:
            assert server.used + server.reserve + server.slack == \
                pytest.approx(server.capacity)

    def test_hand_values(self):
        report = explain(hand_placement())
        server = report.servers[0]
        assert server.used == pytest.approx(0.4)
        assert server.reserve == pytest.approx(0.4)
        assert server.slack == pytest.approx(0.2)
        assert server.replicas == 1
        assert server.tenants_shared_with == 1

    def test_fractions_sum_to_one(self):
        report = explain(hand_placement())
        total = (report.fraction("used") + report.fraction("reserve")
                 + report.fraction("slack"))
        assert total == pytest.approx(1.0)

    def test_invalid_fraction_kind(self):
        with pytest.raises(ConfigurationError):
            explain(hand_placement()).fraction("bogus")

    def test_empty_servers_skipped(self):
        ps = hand_placement()
        ps.open_server()  # empty
        report = explain(ps)
        assert report.num_servers == 2

    def test_cubefit_reserve_below_rfi(self):
        """The paper's mechanism: CubeFit bounds inter-server shared
        load, so its reserve fraction is lower than RFI's."""
        seq = generate_sequence(UniformLoad(0.5), 600, seed=0)
        cube = CubeFit(gamma=2, num_classes=10)
        cube.consolidate(seq)
        rfi = RFI(gamma=2)
        rfi.consolidate(seq)
        cube_report = explain(cube.placement)
        rfi_report = explain(rfi.placement, failures=1)
        assert cube_report.fraction("reserve") < \
            rfi_report.fraction("reserve")
        assert cube_report.fraction("used") > rfi_report.fraction("used")

    def test_class_breakdown_for_cubefit(self):
        seq = generate_sequence(UniformLoad(0.9), 200, seed=1)
        algo = CubeFit(gamma=2, num_classes=5)
        algo.consolidate(seq)
        report = explain(algo.placement)
        by_class = report.by_class()
        assert all(k is None or 1 <= k <= 4 for k in by_class)
        assert sum(len(v) for v in by_class.values()) == \
            report.num_servers

    def test_table_and_str(self):
        report = explain(hand_placement())
        assert "capacity split" in str(report)
        assert "mean_reserve" in report.to_table().to_csv()
