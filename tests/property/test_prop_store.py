"""Property-based tests for the durable store.

Three invariants, each drawn over random workloads:

1. WAL records round-trip through their JSONL encoding exactly.
2. A checkpoint restores a placement that is indistinguishable from the
   one it captured.
3. Crashing after *any* prefix of soak operations and recovering yields
   the same state as the uninterrupted run at that point.
"""

from hypothesis import given, settings, strategies as st

from repro.algorithms.naive import RobustBestFit
from repro.core.tenant import Tenant
from repro.sim.soak import SoakConfig, run_soak_with_crash
from repro.store import diff_placements
from repro.store.snapshot import load_checkpoint, save_checkpoint
from repro.store.wal import WriteAheadLog

payloads = st.dictionaries(
    keys=st.sampled_from(["tenant", "load", "servers", "index"]),
    values=st.one_of(
        st.integers(min_value=-10**9, max_value=10**9),
        st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False),
        st.lists(st.integers(min_value=0, max_value=100), max_size=6)),
    max_size=4)


@given(entries=st.lists(
    st.tuples(st.sampled_from(["place", "remove", "update_load",
                               "open_server"]), payloads),
    min_size=1, max_size=30),
    segment_records=st.integers(min_value=1, max_value=7))
@settings(max_examples=40, deadline=None)
def test_wal_records_roundtrip(tmp_path_factory, entries,
                               segment_records):
    directory = tmp_path_factory.mktemp("wal")
    with WriteAheadLog(directory, fsync="never",
                       segment_records=segment_records) as wal:
        for op, data in entries:
            wal.append(op, data)
        got = [(r.op, r.data) for r in wal.records()]
    assert got == [(op, dict(data)) for op, data in entries]
    # Reopen resumes exactly after the last committed record.
    assert WriteAheadLog(directory).next_seq == len(entries)


@given(loads=st.lists(
    st.floats(min_value=1e-4, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=25),
    gamma=st.sampled_from([1, 2, 3]))
@settings(max_examples=30, deadline=None)
def test_checkpoint_restore_is_identity(tmp_path_factory, loads, gamma):
    algo = RobustBestFit(gamma=gamma)
    for i, load in enumerate(loads):
        algo.place(Tenant(i, load))
    path = tmp_path_factory.mktemp("ckpt") / "checkpoint.json"
    save_checkpoint(algo.placement, path, wal_applied=len(loads))
    restored = load_checkpoint(path).restore()
    assert diff_placements(algo.placement, restored) == []


@given(crash_after=st.integers(min_value=1, max_value=59),
       seed=st.integers(min_value=0, max_value=50),
       gamma=st.sampled_from([1, 2]),
       checkpoint_every=st.sampled_from([None, 7, 20]))
@settings(max_examples=15, deadline=None)
def test_crash_at_any_prefix_recovers_identically(
        tmp_path_factory, crash_after, seed, gamma, checkpoint_every):
    store_dir = tmp_path_factory.mktemp("store")
    report = run_soak_with_crash(
        lambda: RobustBestFit(gamma=gamma), store_dir,
        config=SoakConfig(operations=60, seed=seed),
        crash_after=crash_after, checkpoint_every=checkpoint_every,
        segment_records=8)
    assert report.diffs == []
    assert report.audit_ok
    assert report.ok and report.result.ok
