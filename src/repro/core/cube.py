"""Cube addressing machinery for CUBEFIT's second stage.

For each class ``tau < K`` the algorithm keeps ``gamma`` *groups*, each of
``tau^(gamma-1)`` bins.  The ``tau`` data slots of a group's bins together
form a ``gamma``-dimensional cube with ``tau^gamma`` slots.  A counter
``cnt_tau`` in ``[0, tau^gamma)`` is encoded as ``gamma`` digits in base
``tau`` (most significant first); replica ``j`` (0-based) of the current
tenant goes to the slot addressed by the ``j``-fold right cyclic shift of
those digits, inside group ``j``'s cube.  Within a cube, the first
``gamma-1`` digits select the bin and the last digit selects the slot.

This addressing is what guarantees Lemma 1 (any two bins share replicas
of at most one tenant): tenants sharing a bin in group ``j`` have counter
values that differ in exactly one digit position (which position depends
on ``j``), so no two tenants can share two different bins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError


def to_digits(value: int, base: int, width: int) -> Tuple[int, ...]:
    """Encode ``value`` as ``width`` digits in ``base``, MSB first.

    ``base == 1`` is allowed (all digits are 0; only ``value == 0`` is
    representable), matching class ``tau = 1`` whose cube has one slot.
    """
    if base < 1:
        raise ConfigurationError(f"base must be >= 1, got {base}")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    limit = base ** width
    if not (0 <= value < limit):
        raise ConfigurationError(
            f"value {value} not representable in {width} base-{base} digits")
    digits = []
    for _ in range(width):
        digits.append(value % base)
        value //= base
    return tuple(reversed(digits))


def from_digits(digits: Tuple[int, ...], base: int) -> int:
    """Inverse of :func:`to_digits` (MSB first)."""
    value = 0
    for d in digits:
        if not (0 <= d < max(base, 1)):
            raise ConfigurationError(
                f"digit {d} out of range for base {base}")
        value = value * base + d
    return value


def rotate_right(digits: Tuple[int, ...], shifts: int) -> Tuple[int, ...]:
    """Cyclic right shift: one shift maps ``(d1..dn)`` to ``(dn, d1..d(n-1))``."""
    n = len(digits)
    if n == 0:
        return digits
    shifts %= n
    if shifts == 0:
        return digits
    return digits[-shifts:] + digits[:-shifts]


@dataclass(frozen=True)
class SlotAddress:
    """Location of one replica in the cube scheme.

    ``group`` is the cube index (== replica index), ``bin_index`` the bin
    within the group's array of ``tau^(gamma-1)`` bins, and ``slot`` the
    data slot within that bin (``0 .. tau-1``).
    """

    group: int
    bin_index: int
    slot: int


class ClassCubes:
    """The cube state for a single class ``tau``: groups, bins, counter.

    Bin *creation* is lazy: the physical server backing a ``(group,
    bin_index)`` pair is opened only when the first replica is routed to
    it, so the algorithm's server count reflects servers actually used.
    A fresh generation of groups replaces the old one when the counter
    wraps at ``tau^gamma`` (the old bins are full by then).

    The class does not touch servers itself: callers resolve addresses
    through :meth:`bin_id` / :meth:`assign_bin`.
    """

    def __init__(self, tau: int, gamma: int) -> None:
        if tau < 1:
            raise ConfigurationError(f"tau must be >= 1, got {tau}")
        if gamma < 2:
            raise ConfigurationError(f"gamma must be >= 2, got {gamma}")
        self.tau = tau
        self.gamma = gamma
        self.counter = 0
        self.generation = 0
        self._bins_per_group = tau ** (gamma - 1)
        self._period = tau ** gamma
        self._groups: List[List[Optional[int]]] = self._fresh_groups()

    def _fresh_groups(self) -> List[List[Optional[int]]]:
        return [[None] * self._bins_per_group for _ in range(self.gamma)]

    @property
    def period(self) -> int:
        """Tenants per generation: ``tau^gamma``."""
        return self._period

    @property
    def bins_per_group(self) -> int:
        return self._bins_per_group

    def current_addresses(self) -> List[SlotAddress]:
        """Slot addresses for the tenant about to be placed.

        Entry ``j`` is where replica ``j`` goes (inside group ``j``).
        """
        digits = to_digits(self.counter, self.tau, self.gamma)
        addresses = []
        for j in range(self.gamma):
            rotated = rotate_right(digits, j)
            bin_index = from_digits(rotated[:-1], self.tau)
            addresses.append(SlotAddress(group=j, bin_index=bin_index,
                                         slot=rotated[-1]))
        return addresses

    def bin_id(self, address: SlotAddress) -> Optional[int]:
        """Server id backing ``address``'s bin, or None if not yet opened."""
        return self._groups[address.group][address.bin_index]

    def assign_bin(self, address: SlotAddress, server_id: int) -> None:
        """Record the server opened for ``address``'s bin."""
        if self._groups[address.group][address.bin_index] is not None:
            raise ConfigurationError(
                f"bin (group={address.group}, index={address.bin_index}) "
                f"of class {self.tau} already assigned")
        self._groups[address.group][address.bin_index] = server_id

    def advance(self) -> bool:
        """Move the counter past the current tenant.

        Returns True when the counter wrapped, i.e. a fresh generation of
        groups was allocated.
        """
        self.counter += 1
        if self.counter == self._period:
            self.counter = 0
            self.generation += 1
            self._groups = self._fresh_groups()
            return True
        return False

    def open_bin_ids(self) -> List[int]:
        """Server ids of bins opened in the current generation."""
        return [sid for group in self._groups for sid in group
                if sid is not None]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ClassCubes(tau={self.tau}, gamma={self.gamma}, "
                f"counter={self.counter}/{self._period}, "
                f"generation={self.generation})")
