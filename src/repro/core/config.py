"""Configuration for the CUBEFIT algorithm."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: Tiny-tenant policies (Section III vs. Section V-A of the paper).
TINY_POLICY_ALPHA = "alpha"
TINY_POLICY_LAST_CLASS = "last-class"
TINY_POLICIES = (TINY_POLICY_ALPHA, TINY_POLICY_LAST_CLASS)


@dataclass(frozen=True)
class CubeFitConfig:
    """All tunables of CUBEFIT.

    Parameters
    ----------
    gamma:
        Replicas per tenant (2 or 3 in the paper); the packing tolerates
        any ``gamma - 1`` simultaneous server failures.
    num_classes:
        ``K``.  The paper suggests 10 for data-center scale and 5 for
        smaller clusters; more classes help with more tenants.
    tiny_policy:
        How class-``K`` (tiny) replicas are aggregated into
        multi-replicas:

        * ``"last-class"`` (default, used in the paper's experiments):
          multi-replicas grow up to the class-``(K-1)`` slot size
          ``1/(K+gamma-2)`` and occupy class-``(K-1)`` slots.
        * ``"alpha"`` (the paper's theoretical construction):
          multi-replicas grow up to ``1/alpha_K`` where ``alpha_K`` is the
          largest integer with ``alpha^2 + alpha < K``, and are treated as
          class ``alpha_K - gamma + 1``.  Requires ``alpha_K >= gamma``,
          i.e. ``K > gamma^2 + gamma``.
    first_stage:
        Enable the first stage (m-fit placement into mature bins).  With
        False, every tenant goes through the cube machinery; useful for
        ablation.
    first_stage_tiny:
        Whether tiny tenants may also be placed via the first stage
        before falling back to multi-replica aggregation (the Section V-A
        "re-use the left over space" optimization).
    allow_same_class_first_stage:
        The paper restricts the first stage to replicas of classes
        *larger* (smaller sizes) than the mature bin's class.  Set True to
        relax this to same-or-larger classes (ablation).
    enforce_fault_domains:
        Extension: treat the ``gamma`` cube groups as fault domains
        (racks / availability zones).  Every second-stage bin is tagged
        with its group index as its domain, and the first stage only
        admits a replica into a bin whose domain differs from the
        sibling replicas' domains — so each tenant's replicas always
        span ``gamma`` distinct domains.  The cube construction gives
        this for free in stage two (replica ``j`` lives in group ``j``);
        the flag extends the guarantee through stage one.
    capacity:
        Server capacity; the paper normalizes to 1.
    """

    gamma: int = 2
    num_classes: int = 10
    tiny_policy: str = TINY_POLICY_LAST_CLASS
    first_stage: bool = True
    first_stage_tiny: bool = True
    allow_same_class_first_stage: bool = False
    enforce_fault_domains: bool = False
    capacity: float = 1.0

    def __post_init__(self) -> None:
        if self.gamma < 2:
            raise ConfigurationError(
                f"gamma must be >= 2, got {self.gamma}")
        if self.num_classes < 2:
            raise ConfigurationError(
                f"num_classes (K) must be >= 2, got {self.num_classes}")
        if self.tiny_policy not in TINY_POLICIES:
            raise ConfigurationError(
                f"tiny_policy must be one of {TINY_POLICIES}, "
                f"got {self.tiny_policy!r}")
        if self.capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {self.capacity}")
        if self.tiny_policy == TINY_POLICY_ALPHA:
            required = self.gamma * self.gamma + self.gamma
            if self.num_classes <= required:
                raise ConfigurationError(
                    f"tiny_policy='alpha' requires K > gamma^2 + gamma "
                    f"(= {required}) so that alpha_K >= gamma; got "
                    f"K = {self.num_classes}. Use tiny_policy="
                    f"'last-class' instead.")
