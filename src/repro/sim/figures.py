"""Reproduction entry points for every figure and table in the paper.

* :func:`figure5`  — 99th-percentile latency of CUBEFIT (gamma = 2, 3;
  K = 5) and RFI under worst-case 1- and 2-server failures, for uniform
  and zipfian client populations, on the simulated cluster.
* :func:`figure6`  — percentage server savings (relative difference) of
  CUBEFIT over RFI across uniform and zipfian load distributions, with
  95% confidence intervals over independent runs.
* :func:`table1`   — yearly dollar savings for the uniform and zipfian
  populations at 50,000 tenants (extrapolated when running scaled-down).
* :func:`theorem2` — competitive-ratio upper bounds as a function of K
  for gamma = 2 and gamma = 3.

Each function returns a result object with ``rows()`` (machine-readable)
and ``__str__`` (a table shaped like the paper's).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.base import OnlinePlacementAlgorithm
from ..algorithms.rfi import RFI
from ..analysis.competitive import competitive_ratio_upper_bound
from ..analysis.cost import CostModel
from ..analysis.stats import ConfidenceInterval
from ..core.config import TINY_POLICY_ALPHA
from ..core.cubefit import CubeFit
from ..core.tenant import Tenant
from ..cluster.experiment import ClusterConfig, ClusterExperiment
from ..cluster.failures import worst_overload_failures
from ..errors import ConfigurationError
from ..workloads.distributions import ClientCountDistribution
from ..workloads.loadmodel import LinearLoadModel, DEFAULT_LOAD_MODEL
from .runner import compare
from .scenarios import (ScaleProfile, current_scale,
                        figure5_client_distributions,
                        figure6_distributions, table1_distributions)

# ---------------------------------------------------------------------------
# Cluster filling (Section V-B: "We keep adding tenants until CUBEFIT
# fills up all 69 data store servers.")
# ---------------------------------------------------------------------------


@dataclass
class FilledCluster:
    """A placement produced by filling a fixed-size cluster."""

    algorithm: OnlinePlacementAlgorithm
    tenant_homes: Dict[int, List[int]]
    tenant_clients: Dict[int, int]

    @property
    def num_tenants(self) -> int:
        return len(self.tenant_homes)

    @property
    def total_clients(self) -> int:
        return sum(self.tenant_clients.values())


def fill_cluster(factory: Callable[[], OnlinePlacementAlgorithm],
                 clients_distribution: ClientCountDistribution,
                 load_model: LinearLoadModel = DEFAULT_LOAD_MODEL,
                 max_servers: int = 69,
                 seed: int = 0,
                 max_tenants: int = 100_000,
                 max_rejections: int = 30) -> FilledCluster:
    """Add tenants online until the cluster is full.

    Tenant loads come from the linear load model applied to sampled
    client counts, exactly as in the system experiments.  A tenant whose
    placement would exceed ``max_servers`` is removed again (admission
    control at capacity); arrivals continue — later, smaller tenants may
    still fit — until ``max_rejections`` consecutive tenants have been
    turned away, at which point the cluster counts as full.
    """
    if max_servers < 1:
        raise ConfigurationError(
            f"max_servers must be >= 1, got {max_servers}")
    algorithm = factory()
    rng = np.random.default_rng(seed)
    tenant_clients: Dict[int, int] = {}
    consecutive_rejections = 0
    for tenant_id in range(max_tenants):
        clients = int(clients_distribution.sample(rng, 1)[0])
        load = min(max(load_model.load(clients), 1e-6), 1.0)
        tenant = Tenant(tenant_id=tenant_id, load=load)
        algorithm.place(tenant)
        if algorithm.placement.num_nonempty_servers > max_servers:
            algorithm.placement.remove_tenant(tenant_id)
            consecutive_rejections += 1
            if consecutive_rejections >= max_rejections:
                break
            continue
        consecutive_rejections = 0
        tenant_clients[tenant_id] = clients
    homes = {tid: sorted(algorithm.placement.tenant_servers(tid).values())
             for tid in tenant_clients}
    return FilledCluster(algorithm=algorithm, tenant_homes=homes,
                         tenant_clients=tenant_clients)


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------


@dataclass
class Figure5Row:
    """One bar of Figure 5."""

    distribution: str
    configuration: str
    failures: int
    p99: float
    meets_sla: bool
    dropped: int
    tenants: int
    failed_servers: Tuple[int, ...] = ()


@dataclass
class Figure5Result:
    sla_seconds: float
    rows_: List[Figure5Row] = field(default_factory=list)

    def rows(self) -> List[Figure5Row]:
        return list(self.rows_)

    def row(self, distribution: str, configuration: str,
            failures: int) -> Figure5Row:
        for r in self.rows_:
            if (r.distribution == distribution
                    and r.configuration == configuration
                    and r.failures == failures):
                return r
        raise KeyError((distribution, configuration, failures))

    def __str__(self) -> str:
        lines = [
            "Figure 5: p99 latency under worst-case server failures "
            f"(SLA = {self.sla_seconds:.0f} s at p99)",
            f"{'distribution':<12} {'configuration':<22} {'fail':>4} "
            f"{'p99 (s)':>8} {'SLA':>9} {'dropped':>8}",
        ]
        for r in self.rows_:
            verdict = "meets" if r.meets_sla else "VIOLATES"
            lines.append(
                f"{r.distribution:<12} {r.configuration:<22} "
                f"{r.failures:>4} {r.p99:>8.2f} {verdict:>9} "
                f"{r.dropped:>8}")
        return "\n".join(lines)


def figure5_configurations() -> Dict[str, Callable[
        [], OnlinePlacementAlgorithm]]:
    """The three bars: CUBEFIT with 2 and 3 replicas (K = 5, as in the
    system experiments) and RFI with 2 replicas (mu = 0.85)."""
    return {
        "CubeFit 2 replicas": lambda: CubeFit(gamma=2, num_classes=5),
        "CubeFit 3 replicas": lambda: CubeFit(gamma=3, num_classes=5),
        "RFI 2 replicas": lambda: RFI(gamma=2),
    }


def figure5(scale: Optional[ScaleProfile] = None,
            failure_counts: Sequence[int] = (1, 2),
            seed: int = 0,
            configurations: Optional[Dict[str, Callable[
                [], OnlinePlacementAlgorithm]]] = None) -> Figure5Result:
    """Run the Section V-B failure experiments."""
    profile = scale if scale is not None else current_scale()
    if configurations is None:
        configurations = figure5_configurations()
    config = ClusterConfig(warmup=profile.cluster_warmup,
                           measure=profile.cluster_measure,
                           seed=seed)
    result = Figure5Result(sla_seconds=config.sla_seconds)
    for dist_name, clients_dist in figure5_client_distributions().items():
        for conf_name, factory in configurations.items():
            filled = fill_cluster(factory, clients_dist,
                                  max_servers=profile.cluster_servers,
                                  seed=seed)
            experiment = ClusterExperiment(filled.tenant_homes,
                                           filled.tenant_clients, config)
            for f in failure_counts:
                plan = worst_overload_failures(filled.tenant_homes,
                                               filled.tenant_clients, f)
                run = experiment.run(fail_servers=plan.failed)
                result.rows_.append(Figure5Row(
                    distribution=dist_name,
                    configuration=conf_name,
                    failures=f,
                    p99=run.p99,
                    meets_sla=run.meets_sla,
                    dropped=run.dropped,
                    tenants=filled.num_tenants,
                    failed_servers=tuple(plan.failed),
                ))
    return result


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------


@dataclass
class Figure6Row:
    """One bar of Figure 6 (with its 95% CI whisker)."""

    distribution: str
    savings_percent: float
    ci: ConfidenceInterval
    rfi_servers: float
    cubefit_servers: float


@dataclass
class Figure6Result:
    tenants: int
    runs: int
    rows_: List[Figure6Row] = field(default_factory=list)

    def rows(self) -> List[Figure6Row]:
        return list(self.rows_)

    def __str__(self) -> str:
        lines = [
            f"Figure 6: % server savings of CubeFit over RFI "
            f"({self.tenants} tenants, {self.runs} runs, 95% CI)",
            f"{'distribution':<22} {'savings %':>10} {'± CI':>7} "
            f"{'RFI':>10} {'CubeFit':>10}",
        ]
        for r in self.rows_:
            lines.append(
                f"{r.distribution:<22} {r.savings_percent:>10.1f} "
                f"{r.ci.half_width:>7.1f} {r.rfi_servers:>10.1f} "
                f"{r.cubefit_servers:>10.1f}")
        return "\n".join(lines)


def figure6(scale: Optional[ScaleProfile] = None,
            gamma: int = 2, num_classes: int = 10,
            base_seed: int = 0) -> Figure6Result:
    """Run the Section V-C consolidation comparison.

    Uses K = 10 classes as the paper does for large tenant counts.
    """
    profile = scale if scale is not None else current_scale()
    factories = {
        "cubefit": lambda: CubeFit(gamma=gamma, num_classes=num_classes),
        "rfi": lambda: RFI(gamma=gamma),
    }
    result = Figure6Result(tenants=profile.sim_tenants,
                           runs=profile.sim_runs)
    for distribution in figure6_distributions():
        comparison = compare(factories, distribution,
                             n_tenants=profile.sim_tenants,
                             runs=profile.sim_runs, base_seed=base_seed)
        result.rows_.append(Figure6Row(
            distribution=distribution.name,
            savings_percent=comparison.savings_percent("rfi", "cubefit"),
            ci=comparison.savings_percent_ci("rfi", "cubefit"),
            rfi_servers=comparison.mean_servers("rfi"),
            cubefit_servers=comparison.mean_servers("cubefit"),
        ))
    return result


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


@dataclass
class Table1Row:
    distribution: str
    rfi_servers: float
    cubefit_servers: float
    servers_saved: float
    yearly_savings_usd: float
    #: Extrapolation of the absolute columns to the paper's 50k tenants.
    rfi_servers_50k: float
    servers_saved_50k: float
    yearly_savings_usd_50k: float


@dataclass
class Table1Result:
    tenants: int
    runs: int
    rows_: List[Table1Row] = field(default_factory=list)

    def rows(self) -> List[Table1Row]:
        return list(self.rows_)

    def __str__(self) -> str:
        lines = [
            f"Table I: yearly cost savings of CubeFit over RFI "
            f"({self.tenants} tenants, {self.runs} runs; columns "
            f"extrapolated to 50k tenants in parentheses)",
            f"{'Distribution':<10} {'RFI servers':>12} {'Saved':>9} "
            f"{'Dollar savings':>15}   {'(RFI@50k':>10} {'saved@50k':>10} "
            f"{'$@50k)':>14}",
        ]
        for r in self.rows_:
            lines.append(
                f"{r.distribution:<10} {r.rfi_servers:>12,.0f} "
                f"{r.servers_saved:>9,.0f} "
                f"{r.yearly_savings_usd:>15,.0f}   "
                f"{r.rfi_servers_50k:>10,.0f} {r.servers_saved_50k:>10,.0f} "
                f"{r.yearly_savings_usd_50k:>14,.0f}")
        return "\n".join(lines)


def table1(scale: Optional[ScaleProfile] = None, gamma: int = 2,
           num_classes: int = 10, base_seed: int = 0) -> Table1Result:
    """Run the Table I cost computation."""
    profile = scale if scale is not None else current_scale()
    cost = CostModel()
    factories = {
        "cubefit": lambda: CubeFit(gamma=gamma, num_classes=num_classes),
        "rfi": lambda: RFI(gamma=gamma),
    }
    result = Table1Result(tenants=profile.sim_tenants,
                          runs=profile.sim_runs)
    extrapolate = 1.0 / profile.tenant_scale
    for name, distribution in table1_distributions().items():
        comparison = compare(factories, distribution,
                             n_tenants=profile.sim_tenants,
                             runs=profile.sim_runs, base_seed=base_seed)
        rfi_mean = comparison.mean_servers("rfi")
        cube_mean = comparison.mean_servers("cubefit")
        saved = rfi_mean - cube_mean
        result.rows_.append(Table1Row(
            distribution=name,
            rfi_servers=rfi_mean,
            cubefit_servers=cube_mean,
            servers_saved=saved,
            yearly_savings_usd=cost.yearly_savings(rfi_mean, cube_mean),
            rfi_servers_50k=rfi_mean * extrapolate,
            servers_saved_50k=saved * extrapolate,
            yearly_savings_usd_50k=cost.yearly_savings(
                rfi_mean, cube_mean) * extrapolate,
        ))
    return result


# ---------------------------------------------------------------------------
# Theorem 2
# ---------------------------------------------------------------------------

#: K values at which alpha_K increases (alpha(alpha+1) < K first holds),
#: i.e. the interesting points of the bound-vs-K curve.
THEOREM2_KS: Tuple[int, ...] = (13, 21, 31, 43, 57, 73, 91, 111, 133,
                                157, 183, 211, 240)


@dataclass
class Theorem2Row:
    gamma: int
    num_classes: int
    ratio: float
    alpha: int


@dataclass
class Theorem2Result:
    rows_: List[Theorem2Row] = field(default_factory=list)

    def rows(self) -> List[Theorem2Row]:
        return list(self.rows_)

    def ratio_at(self, gamma: int, num_classes: int) -> float:
        for r in self.rows_:
            if r.gamma == gamma and r.num_classes == num_classes:
                return r.ratio
        raise KeyError((gamma, num_classes))

    def __str__(self) -> str:
        lines = [
            "Theorem 2: competitive-ratio upper bound of CubeFit "
            "(paper: approaches 1.59 for gamma=2, 1.625 for gamma=3)",
            f"{'gamma':>5} {'K':>5} {'alpha_K':>8} {'bound':>8}",
        ]
        for r in self.rows_:
            lines.append(f"{r.gamma:>5} {r.num_classes:>5} "
                         f"{r.alpha:>8} {r.ratio:>8.4f}")
        return "\n".join(lines)


def theorem2(gammas: Sequence[int] = (2, 3),
             class_counts: Optional[Sequence[int]] = None,
             scale: Optional[ScaleProfile] = None) -> Theorem2Result:
    """Sweep the exact competitive-ratio bound over K."""
    from ..core.classes import SizeClassifier

    profile = scale if scale is not None else current_scale()
    if class_counts is None:
        class_counts = [k for k in THEOREM2_KS
                        if k <= profile.theorem2_max_k]
    result = Theorem2Result()
    for gamma in gammas:
        for k in class_counts:
            classifier = SizeClassifier(num_classes=k, gamma=gamma)
            alpha = classifier.alpha()
            if alpha < gamma:
                continue  # alpha policy undefined at this K
            bound = competitive_ratio_upper_bound(
                gamma, k, TINY_POLICY_ALPHA)
            result.rows_.append(Theorem2Row(
                gamma=gamma, num_classes=k, ratio=float(bound.value),
                alpha=alpha))
    return result
