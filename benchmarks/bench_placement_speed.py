"""Benchmark E6 — placement throughput and utilization statistics.

The paper's simulator "captures statistics including how many servers
were used, amount of time each placement algorithm needs to consolidate
tenants onto servers, and the average server utilization."  This bench
measures consolidation wall time per algorithm on a fixed uniform
sequence (2,000 tenants by default; override with ``REPRO_BENCH_N``)
and reports servers/utilization as extra_info.

It also measures the robust online operating mode — audit the packing
after *every* arrival — on two paths:

* **naive**: the slack cache disabled and a full :func:`audit` scan of
  the fleet per arrival (every server's worst-case failover load is
  recomputed from its shared-load set each time);
* **indexed**: the incremental slack index plus
  :class:`IncrementalAuditor`, which re-evaluates only the servers the
  arrival touched.

Both placements-per-second figures are reported so the speedup stays
visible in the bench trajectory; the indexed path must stay at least
2x ahead on the largest scenario.
"""

import os
import time

import pytest

from repro.core.cubefit import CubeFit
from repro.core.validation import IncrementalAuditor, audit
from repro.sim.bench import FACTORIES
from repro.workloads.distributions import UniformLoad
from repro.workloads.sequences import generate_sequence

N_TENANTS = int(os.environ.get("REPRO_BENCH_N", "2000"))


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence(UniformLoad(0.6), N_TENANTS, seed=0)


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_consolidation_speed(benchmark, sequence, name):
    factory = FACTORIES[name]

    def run():
        algo = factory()
        algo.consolidate(sequence)
        return algo

    algo = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["servers"] = algo.placement.num_servers
    benchmark.extra_info["utilization"] = round(
        algo.placement.utilization(), 4)
    benchmark.extra_info["tenants_per_second"] = round(
        N_TENANTS / max(benchmark.stats["mean"], 1e-9))


def test_cubefit_scales_linearly(benchmark):
    """CubeFit's per-tenant cost must not blow up with sequence length."""
    seq = generate_sequence(UniformLoad(0.6), 4 * N_TENANTS, seed=1)

    def run():
        algo = CubeFit(gamma=2, num_classes=10)
        algo.consolidate(seq)
        return algo

    algo = benchmark.pedantic(run, rounds=1, iterations=1)
    assert algo.placement.num_tenants == 4 * N_TENANTS


# ---------------------------------------------------------------------------
# Audit-per-arrival: incremental slack index vs naive rescans
# ---------------------------------------------------------------------------
def _audited_consolidate(sequence, indexed):
    """Place the sequence, auditing after every arrival.

    Returns (elapsed seconds, final server count).  The naive path
    disables the slack cache so every worst-failover read recomputes
    from the shared-load sets, and rescans the whole fleet per arrival;
    the indexed path relies on memoization plus the dirty-set auditor.
    """
    algo = CubeFit(gamma=2, num_classes=10)
    placement = algo.placement
    if indexed:
        auditor = IncrementalAuditor(placement)
    else:
        placement.set_slack_cache(False)
        auditor = None
    start = time.perf_counter()
    for tenant in sequence:
        algo.place(tenant)
        report = auditor.check() if auditor is not None \
            else audit(placement)
        assert report.ok
    return time.perf_counter() - start, placement.num_servers


def test_audited_placement_indexed_vs_naive(benchmark, sequence):
    """The slack index must keep audited placement >= 2x the naive path."""
    naive_seconds, naive_servers = _audited_consolidate(sequence,
                                                        indexed=False)

    def run():
        return _audited_consolidate(sequence, indexed=True)

    indexed_seconds, indexed_servers = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert indexed_servers == naive_servers  # same packing either way

    naive_pps = N_TENANTS / max(naive_seconds, 1e-9)
    indexed_pps = N_TENANTS / max(indexed_seconds, 1e-9)
    benchmark.extra_info["naive_placements_per_second"] = round(naive_pps)
    benchmark.extra_info["indexed_placements_per_second"] = \
        round(indexed_pps)
    benchmark.extra_info["speedup"] = round(indexed_pps / naive_pps, 2)
    print(f"\n[audited placement] naive: {naive_pps:,.0f} placements/s, "
          f"indexed: {indexed_pps:,.0f} placements/s "
          f"({indexed_pps / naive_pps:.1f}x)")
    # The naive path is O(fleet) per arrival, so its deficit grows with
    # scale: demand the full 2x on the real scenario, and a positive
    # margin on tiny CI smoke runs where constant factors dominate.
    required = 2.0 if N_TENANTS >= 1000 else 1.2
    assert indexed_pps >= required * naive_pps, (
        f"slack index too slow: {indexed_pps:,.0f} vs naive "
        f"{naive_pps:,.0f} placements/s (need {required}x)")
