"""Unit tests for repro.fleet: shards, router, fleet, rebalancer, soak.

The load-bearing claims, each tested directly:

* routing is deterministic and never depends on live shard state,
* a budget refusal is typed and replays to a no-op on recovery,
* whole-shard crash/recovery restores every acked placement
  replica-for-replica and reconciles the router,
* migrations are audited and torn migrations repair deterministically,
* the soak's result is bit-identical at any ``jobs`` setting.
"""

import json

import pytest

from repro.core.tenant import Tenant
from repro.errors import (ConfigurationError, ShardDownError,
                          ShardSaturatedError)
from repro.fleet import (FLEET_META_NAME, FleetSoakConfig,
                         PlacementFleet, PlacementRouter,
                         ShardController, read_fleet_meta, rebalance,
                         run_fleet_soak, run_streaming_soak,
                         shard_directory, stable_hash,
                         write_fleet_meta)
from repro.fleet.rebalance import pick_move
from repro.obs import MetricsRegistry


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash(42, seed=7) == stable_hash(42, seed=7)

    def test_seed_changes_the_mix(self):
        assert stable_hash(42, seed=0) != stable_hash(42, seed=1)

    def test_spreads_small_ids(self):
        # Sequential tenant ids must not all land on one shard.
        targets = {stable_hash(tid) % 8 for tid in range(64)}
        assert len(targets) >= 6


class TestRouterPolicies:
    def test_hash_is_history_free(self):
        router = PlacementRouter(4, policy="hash", seed=3)
        first = [router.route(Tenant(tid, 0.2)) for tid in range(20)]
        for tid in range(20):
            router.record_place(tid % 4, 0.5)
        second = [router.route(Tenant(tid, 0.2)) for tid in range(20)]
        assert second == first

    def test_least_loaded_tracks_estimates_only(self):
        router = PlacementRouter(3, policy="least-loaded")
        assert router.route(Tenant(1, 0.2)) == 0  # all tied: lowest id
        router.record_place(0, 0.2)
        router.record_place(1, 0.1)
        assert router.route(Tenant(2, 0.2)) == 2
        router.record_place(2, 0.3)
        assert router.route(Tenant(3, 0.2)) == 1

    def test_headroom_prefers_most_budget_left(self):
        router = PlacementRouter(3, policy="headroom", load_budget=4.0)
        router.record_place(0, 3.0)
        router.record_place(1, 1.0)
        router.record_place(2, 2.0)
        assert router.route(Tenant(9, 0.2)) == 1

    def test_headroom_without_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            PlacementRouter(2, policy="headroom")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            PlacementRouter(2, policy="round-robin")

    def test_hash_detours_around_down_shard(self):
        router = PlacementRouter(4, policy="hash", seed=0)
        tenant = Tenant(5, 0.2)
        home = router.route(tenant)
        router.mark_down(home)
        detour = router.route(tenant)
        assert detour == (home + 1) % 4
        router.reconcile(home, 0.0, 0)
        assert router.route(tenant) == home

    def test_all_shards_down_is_loud(self):
        router = PlacementRouter(2)
        router.mark_down(0)
        router.mark_down(1)
        with pytest.raises(ConfigurationError):
            router.route(Tenant(1, 0.1))

    def test_spill_order_is_ring_after_refuser(self):
        router = PlacementRouter(4)
        assert list(router.spill_order(Tenant(1, 0.1), 1)) == [2, 3, 0]
        router.mark_down(3)
        assert list(router.spill_order(Tenant(1, 0.1), 1)) == [2, 0]
        assert router.spilled == 2


class TestRouterBatching:
    def test_submit_routes_only_full_batches(self):
        router = PlacementRouter(2, batch_size=3)
        assert router.submit(Tenant(1, 0.1)) is None
        assert router.submit(Tenant(2, 0.1)) is None
        groups = router.submit(Tenant(3, 0.1))
        assert groups is not None
        assert sum(len(g) for g in groups.values()) == 3
        assert router.pending == 0

    def test_flush_drains_partial_batch(self):
        router = PlacementRouter(2, batch_size=10)
        router.submit(Tenant(1, 0.1))
        groups = router.flush()
        assert sum(len(g) for g in groups.values()) == 1
        assert router.flush() == {}

    def test_route_stream_preserves_admission_order_per_shard(self):
        tenants = [Tenant(tid, 0.1) for tid in range(40)]
        router = PlacementRouter(4, policy="hash", batch_size=7)
        routed = router.route_stream(tenants)
        assert len(routed) == 40
        for shard in range(4):
            ids = [t.tenant_id for s, t in routed if s == shard]
            assert ids == sorted(ids)

    def test_route_stream_is_batch_size_invariant_in_membership(self):
        # Hash routing is history-free, so even the shard *membership*
        # cannot depend on how admission was batched.
        tenants = [Tenant(tid, 0.1) for tid in range(50)]
        by7 = PlacementRouter(4, batch_size=7).route_stream(tenants)
        by50 = PlacementRouter(4, batch_size=50).route_stream(tenants)
        assert sorted((s, t.tenant_id) for s, t in by7) == \
            sorted((s, t.tenant_id) for s, t in by50)


class TestRouterBookkeeping:
    def test_record_remove_clamps_at_zero(self):
        router = PlacementRouter(2)
        router.record_place(0, 0.3)
        router.record_remove(0, 0.5)
        assert router.loads[0] == 0.0
        assert router.tenants[0] == 0

    def test_reconcile_replaces_estimate_and_revives(self):
        router = PlacementRouter(2)
        router.record_place(1, 5.0)
        router.mark_down(1)
        router.reconcile(1, 1.25, 3)
        assert router.loads[1] == 1.25
        assert router.tenants[1] == 3
        assert router.down == set()

    def test_snapshot_round_trips_through_json(self):
        router = PlacementRouter(3, policy="least-loaded")
        router.assign(Tenant(1, 0.2))
        snapshot = router.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["routed"] == 1


class TestShardController:
    def test_budget_refusal_is_typed_and_undone(self, tmp_path):
        shard = ShardController(0, tmp_path / "s0", gamma=2,
                                max_servers=2)
        shard.place(Tenant(1, 0.4))
        with pytest.raises(ShardSaturatedError) as exc:
            shard.place(Tenant(2, 0.9))
        assert exc.value.shard_id == 0
        assert not shard.has_tenant(2)
        shard.close()

    def test_refused_attempt_replays_to_noop(self, tmp_path):
        shard = ShardController(0, tmp_path / "s0", gamma=2,
                                max_servers=2)
        acked = shard.place(Tenant(1, 0.4))
        with pytest.raises(ShardSaturatedError):
            shard.place(Tenant(2, 0.9))
        shard.crash()  # no close: recovery must replay the WAL
        recovered = ShardController(0, tmp_path / "s0", max_servers=2)
        assert recovered.has_tenant(1)
        assert not recovered.has_tenant(2)
        by_index = recovered.tenant_servers(1)
        assert tuple(by_index[i] for i in sorted(by_index)) == acked
        assert recovered.audit().ok
        recovered.close()

    def test_warm_start_recovers_geometry(self, tmp_path):
        shard = ShardController(3, tmp_path / "s3", gamma=3)
        shard.place(Tenant(7, 0.25))
        shard.close()
        # Mismatched gamma argument loses to the recorded lineage.
        warm = ShardController(3, tmp_path / "s3", gamma=2)
        assert warm.recovered_state is not None
        assert warm.placement.gamma == 3
        assert warm.has_tenant(7)
        warm.close()

    def test_status_reports_live_values(self, tmp_path):
        shard = ShardController(1, tmp_path / "s1", max_servers=8)
        shard.place(Tenant(1, 0.5))
        status = shard.status()
        assert status["shard"] == 1
        assert status["tenants"] == 1
        assert status["max_servers"] == 8
        assert status["wal_next_seq"] > 0
        shard.close()

    def test_invalid_arguments_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ShardController(-1, tmp_path / "bad")
        with pytest.raises(ConfigurationError):
            ShardController(0, tmp_path / "bad", max_servers=0)


class TestFleetMeta:
    def test_round_trip(self, tmp_path):
        write_fleet_meta(tmp_path, shards=4, gamma=2, capacity=1.0,
                         policy="hash", seed=0,
                         max_servers_per_shard=None)
        meta = read_fleet_meta(tmp_path)
        assert meta["shards"] == 4
        assert meta["policy"] == "hash"

    def test_missing_meta_is_typed(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_fleet_meta(tmp_path)

    def test_corrupt_meta_is_typed(self, tmp_path):
        from repro.errors import StoreCorruptionError
        (tmp_path / FLEET_META_NAME).write_text("not json")
        with pytest.raises(StoreCorruptionError):
            read_fleet_meta(tmp_path)


class TestPlacementFleet:
    def test_place_remove_update_round_trip(self, tmp_path):
        with PlacementFleet(tmp_path / "fleet", shards=3) as fleet:
            shard, servers = fleet.place(Tenant(1, 0.3))
            assert servers
            assert fleet.shard_of[1] == shard
            assert fleet.update_load(1, 0.4) == shard
            assert fleet.remove(1) == shard
            assert 1 not in fleet.shard_of

    def test_double_place_rejected(self, tmp_path):
        with PlacementFleet(tmp_path / "fleet", shards=2) as fleet:
            fleet.place(Tenant(1, 0.3))
            with pytest.raises(ConfigurationError):
                fleet.place(Tenant(1, 0.3))

    def test_unknown_tenant_rejected(self, tmp_path):
        with PlacementFleet(tmp_path / "fleet", shards=2) as fleet:
            with pytest.raises(ConfigurationError):
                fleet.remove(99)

    def test_spillover_places_on_sibling(self, tmp_path):
        with PlacementFleet(tmp_path / "fleet", shards=2,
                            policy="hash",
                            max_servers_per_shard=2) as fleet:
            # Saturate one shard with tenants that hash to it, then
            # admit one more: hash routing targets the full shard, the
            # budget refuses, and the router spills it to the sibling.
            homes = [t for t in range(100) if stable_hash(t) % 2 == 0]
            fleet.place(Tenant(homes[0], 0.45))
            fleet.place(Tenant(homes[1], 0.45))
            shard, servers = fleet.place(Tenant(homes[2], 0.3))
            assert shard == 1
            assert servers
            assert fleet.router.spilled == 1
            assert fleet.shard_of[homes[2]] == 1
            assert fleet.all_audits_ok

    def test_fleet_saturation_is_typed(self, tmp_path):
        with PlacementFleet(tmp_path / "fleet", shards=2,
                            max_servers_per_shard=2) as fleet:
            fleet.place(Tenant(1, 0.4))
            fleet.place(Tenant(2, 0.4))
            with pytest.raises(ShardSaturatedError):
                fleet.place(Tenant(3, 0.9))
            assert fleet.all_audits_ok

    def test_crash_then_ops_surface_typed(self, tmp_path):
        with PlacementFleet(tmp_path / "fleet", shards=2,
                            policy="least-loaded") as fleet:
            shard, _ = fleet.place(Tenant(1, 0.3))
            fleet.crash_shard(shard)
            with pytest.raises(ShardDownError):
                fleet.remove(1)
            with pytest.raises(ShardDownError):
                fleet.update_load(1, 0.2)
            # New tenants route around the hole.
            other, _ = fleet.place(Tenant(2, 0.3))
            assert other != shard

    def test_recover_shard_restores_replica_for_replica(self, tmp_path):
        with PlacementFleet(tmp_path / "fleet", shards=2,
                            policy="least-loaded") as fleet:
            acked = {}
            for tid in range(8):
                shard, servers = fleet.place(Tenant(tid, 0.25))
                acked[tid] = (shard, list(servers))
            victim = 0
            fleet.crash_shard(victim)
            controller = fleet.recover_shard(victim)
            for tid, (shard, servers) in acked.items():
                if shard != victim:
                    continue
                by_index = controller.tenant_servers(tid)
                assert [by_index[i]
                        for i in sorted(by_index)] == servers
            assert fleet.router.down == set()
            assert fleet.all_audits_ok

    def test_reconcile_repairs_torn_migration(self, tmp_path):
        with PlacementFleet(tmp_path / "fleet", shards=2) as fleet:
            shard, _ = fleet.place(Tenant(1, 0.3))
            other = 1 - shard
            # Simulate a crash between migration steps 2 and 3: the
            # tenant exists on both shards.
            fleet.shards[other].place(Tenant(1, 0.3))
            removed = fleet.reconcile()
            assert removed == [(1, max(shard, other))]
            assert fleet.shard_of[1] == min(shard, other)
            assert fleet.all_audits_ok

    def test_reopen_recorded_geometry_wins(self, tmp_path):
        root = tmp_path / "fleet"
        with PlacementFleet(root, shards=3, gamma=3,
                            policy="least-loaded") as fleet:
            fleet.place(Tenant(1, 0.3))
        with PlacementFleet(root, shards=8, gamma=2,
                            policy="hash") as reopened:
            assert reopened.num_shards == 3
            assert reopened.gamma == 3
            assert reopened.router.policy == "least-loaded"
            assert 1 in reopened.shard_of

    def test_obs_counters_cover_lifecycle(self, tmp_path):
        obs = MetricsRegistry()
        with PlacementFleet(tmp_path / "fleet", shards=2,
                            obs=obs) as fleet:
            shard, _ = fleet.place(Tenant(1, 0.3))
            fleet.crash_shard(shard)
            fleet.recover_shard(shard)
        assert obs.counter("fleet.placed").value == 1
        assert obs.counter("fleet.shard_crashes").value == 1
        assert obs.counter("fleet.shard_recoveries").value == 1


class TestRebalance:
    def test_pick_move_is_deterministic_and_bounded(self):
        loads = {0: 2.0, 1: 0.5}
        tenants = {0: {1: 0.9, 2: 0.5, 3: 0.7}, 1: {4: 0.5}}
        # gap/2 = 0.75: tenant 1 (0.9) overshoots; the largest
        # admissible move is tenant 3 (0.7).
        assert pick_move(loads, tenants) == (0, 1, 3, 0.7)

    def test_pick_move_raises_when_no_move_helps(self):
        with pytest.raises(KeyError):
            pick_move({0: 1.0, 1: 1.0}, {0: {1: 1.0}, 1: {2: 1.0}})
        with pytest.raises(KeyError):
            # Every movable tenant overshoots the midpoint.
            pick_move({0: 1.0, 1: 0.0}, {0: {1: 1.0}, 1: {}})

    def test_rebalance_converges_and_audits(self, tmp_path):
        obs = MetricsRegistry()
        with PlacementFleet(tmp_path / "fleet", shards=2,
                            policy="hash", seed=1, obs=obs) as fleet:
            for tid in range(20):
                fleet.place(Tenant(tid, 0.2))
            before = [c.total_load for c in fleet.shards]
            moves = fleet.rebalance(max_moves=32, tolerance=0.1)
            after = [c.total_load for c in fleet.shards]
            assert max(after) - min(after) <= \
                max(before) - min(before)
            mean = sum(after) / len(after)
            assert (max(after) - min(after) <= 0.1 * mean + 1e-9
                    or len(moves) == 32)
            for move in moves:
                assert fleet.shard_of[move.tenant_id] == move.target
            assert fleet.all_audits_ok
            assert obs.counter("fleet.migrations").value == len(moves)

    def test_balanced_fleet_needs_no_moves(self, tmp_path):
        with PlacementFleet(tmp_path / "fleet", shards=2,
                            policy="least-loaded") as fleet:
            for tid in range(8):
                fleet.place(Tenant(tid, 0.25))
            assert fleet.rebalance() == []


class TestFleetSoak:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FleetSoakConfig(shards=0)
        with pytest.raises(ConfigurationError):
            FleetSoakConfig(tenants=0)
        with pytest.raises(ConfigurationError):
            FleetSoakConfig(shards=2, crash_shard=2)
        with pytest.raises(ConfigurationError):
            FleetSoakConfig(policy="nope")

    def test_small_soak_is_conformant(self, tmp_path):
        obs = MetricsRegistry()
        result = run_fleet_soak(
            tmp_path / "soak",
            FleetSoakConfig(shards=3, tenants=240, batch_size=32),
            obs=obs)
        assert result.ok
        assert result.placed == 240
        assert result.audits_ok
        crash = result.crash_outcome
        assert crash is not None and crash.shard_id == 0
        assert crash.crash["acked"] > 0
        assert result.crash_divergences == []
        assert result.latency_p99 is not None
        assert result.latency_p99 >= result.latency_p50
        # Every shard left a durable lineage behind.
        for shard in range(3):
            assert (shard_directory(tmp_path / "soak", shard)
                    / "checkpoint.json").exists()

    def test_jobs_do_not_change_the_result(self, tmp_path):
        config = FleetSoakConfig(shards=4, tenants=200, batch_size=25,
                                 policy="least-loaded")
        serial = run_fleet_soak(tmp_path / "a", config, jobs=1)
        parallel = run_fleet_soak(tmp_path / "b", config, jobs=2)
        assert parallel.fingerprint() == serial.fingerprint()
        assert parallel.placed == serial.placed
        assert [o.wal_next_seq for o in parallel.outcomes] == \
            [o.wal_next_seq for o in serial.outcomes]

    def test_budgeted_soak_accounts_for_every_tenant(self, tmp_path):
        result = run_fleet_soak(
            tmp_path / "soak",
            FleetSoakConfig(shards=2, tenants=120, crash_shard=None,
                            max_servers_per_shard=20, batch_size=16))
        assert result.ok
        assert (result.placed + result.spill_placed
                + result.spill_unplaced == 120)
        assert result.spill_placed + result.spill_unplaced > 0

    def test_soak_without_crash_drill(self, tmp_path):
        result = run_fleet_soak(
            tmp_path / "soak",
            FleetSoakConfig(shards=2, tenants=80, crash_shard=None))
        assert result.ok
        assert result.crash_outcome is None
        assert "crash drill" not in str(result)

    def test_report_renders(self, tmp_path):
        result = run_fleet_soak(
            tmp_path / "soak",
            FleetSoakConfig(shards=2, tenants=100),
            obs=MetricsRegistry())
        text = str(result)
        assert "Fleet soak" in text
        assert "crash drill" in text
        assert "audits: all clean" in text


class TestFleetBenchScenario:
    def test_deterministic_fields_and_shape(self):
        from repro.sim.bench import fleet_scenario
        first = fleet_scenario(300, 3, rounds=1)
        second = fleet_scenario(300, 3, rounds=1)
        assert first["servers"] == second["servers"]
        assert first["utilization"] == second["utilization"]
        assert first["shards"] == 3
        # Summed per-shard rates can never undershoot the serial wall
        # rate (equal only if one shard got the whole stream).
        assert first["aggregate_tenants_per_second"] >= \
            first["tenants_per_second"]

    def test_baseline_check_covers_the_fleet_section(self):
        from repro.sim.bench import check_against_baseline
        row = {"servers": 50, "utilization": 0.6,
               "aggregate_tenants_per_second": 1000}
        base = {"fleet": {"100x2": dict(row)}}
        good = {"fleet": {"100x2": dict(row,
                aggregate_tenants_per_second=900)}}
        assert check_against_baseline(good, base) == []
        bad = {"fleet": {"100x2": dict(row, servers=51,
               aggregate_tenants_per_second=100)}}
        problems = check_against_baseline(bad, base)
        assert len(problems) == 2
        # A run that skipped the fleet section stays compatible.
        assert check_against_baseline({}, base) == []


class TestRouterStream:
    def test_windows_are_bounded_and_cover_the_stream(self):
        router = PlacementRouter(4, policy="hash", batch_size=16)
        tenants = (Tenant(tid, 0.1) for tid in range(100))
        routed = []
        windows = 0
        for groups in router.stream(tenants):
            windows += 1
            window = sum(len(group) for group in groups.values())
            assert 0 < window <= 16
            for shard in groups:
                routed.extend((shard, t.tenant_id)
                              for t in groups[shard])
        assert windows == 7  # six full windows + the 4-tenant tail
        assert sorted(tid for _, tid in routed) == list(range(100))

    def test_stream_matches_route_stream(self):
        tenants = [Tenant(tid, 0.05 + (tid % 7) / 10)
                   for tid in range(60)]
        streaming = PlacementRouter(3, policy="least-loaded",
                                    batch_size=8)
        streamed = [(shard, t.tenant_id)
                    for groups in streaming.stream(iter(tenants))
                    for shard, members in groups.items()
                    for t in members]
        batch = PlacementRouter(3, policy="least-loaded", batch_size=8)
        routed = [(shard, t.tenant_id)
                  for shard, t in batch.route_stream(tenants)]
        assert streamed == routed

    def test_routing_is_window_size_invariant(self):
        # Flushes route tenant by tenant in admission order, so the
        # window length changes when decisions happen, never what they
        # decide — the invariant that lets the streaming soak pick its
        # window freely.
        tenants = [Tenant(tid, 0.05 + (tid % 9) / 20)
                   for tid in range(90)]

        def assignments(batch_size):
            router = PlacementRouter(3, policy="least-loaded",
                                     batch_size=batch_size)
            return [(t.tenant_id, shard)
                    for groups in router.stream(iter(tenants))
                    for shard in sorted(groups)
                    for t in groups[shard]]

        assert (sorted(assignments(7)) == sorted(assignments(32))
                == sorted(assignments(90)))


class TestStreamingSoak:
    def test_matches_batch_soak_bit_for_bit(self, tmp_path):
        # The streaming soak is the batch soak with bounded memory:
        # same routing, same packings, same per-shard fingerprints —
        # and at window == batch_size the whole-run fingerprint (which
        # folds in the router snapshot) matches too.
        config = FleetSoakConfig(shards=3, tenants=240, batch_size=32)
        batch = run_fleet_soak(tmp_path / "batch", config)
        streaming = run_streaming_soak(tmp_path / "stream", config,
                                       window=32)
        assert streaming.ok
        assert [o.fingerprint for o in streaming.outcomes] == \
            [o.fingerprint for o in batch.outcomes]
        assert streaming.fingerprint() == batch.fingerprint()
        assert streaming.placed == batch.placed == 240
        assert streaming.servers == batch.servers

    def test_window_does_not_change_packings(self, tmp_path):
        config = FleetSoakConfig(shards=2, tenants=150,
                                 crash_shard=None)
        a = run_streaming_soak(tmp_path / "a", config, window=7)
        b = run_streaming_soak(tmp_path / "b", config, window=64)
        assert [o.fingerprint for o in a.outcomes] == \
            [o.fingerprint for o in b.outcomes]
        assert a.servers == b.servers

    def test_crash_drill_verifies_by_fingerprint(self, tmp_path):
        result = run_streaming_soak(
            tmp_path / "soak",
            FleetSoakConfig(shards=2, tenants=160), window=16)
        assert result.ok
        crash = result.crash_outcome
        assert crash is not None and crash.shard_id == 0
        assert crash.crash["acked"] > 0
        assert crash.crash["audit_ok"]
        assert result.crash_divergences == []

    def test_budgeted_streaming_accounts_for_every_tenant(self, tmp_path):
        result = run_streaming_soak(
            tmp_path / "soak",
            FleetSoakConfig(shards=2, tenants=120, crash_shard=None,
                            max_servers_per_shard=20),
            window=16)
        assert result.ok
        assert (result.placed + result.spill_placed
                + result.spill_unplaced == 120)
        assert result.spill_placed + result.spill_unplaced > 0

    def test_window_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_streaming_soak(tmp_path / "soak", window=0)

    def test_report_renders_with_latency(self, tmp_path):
        result = run_streaming_soak(
            tmp_path / "soak",
            FleetSoakConfig(shards=2, tenants=100),
            obs=MetricsRegistry(), window=32)
        assert result.latency_p99 is not None
        assert result.latency_p99 >= result.latency_p50
        text = str(result)
        assert "Fleet soak" in text
        assert "crash drill" in text
        assert "audits: all clean" in text
