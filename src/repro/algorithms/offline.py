"""Offline solvers for the robust tenant placement problem.

The online algorithms never see the whole input; these offline solvers
do, and serve two purposes:

* :func:`optimal_servers` — an **exact** branch-and-bound search for the
  minimum number of servers a robust packing can use.  Exponential, for
  small instances only (roughly n <= 10 tenants at gamma = 2); used by
  tests and the near-optimality bench to measure the true gap between
  CUBEFIT and OPT, rather than a lower bound.
* :class:`OfflineFirstFitDecreasing` — the classic offline heuristic
  (sort by load descending, then robust First Fit), a strong practical
  yardstick for what advance knowledge of the input buys.

Both use the same exact shared-load feasibility the online algorithms
use, so "robust" means precisely the paper's Section II condition.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.placement import PlacementState
from ..core.tenant import Tenant
from ..errors import ConfigurationError
from .base import (OnlinePlacementAlgorithm, ServerIndex, register,
                   robust_after_placement)


def _feasible_assignment(placement: PlacementState, tenant: Tenant,
                         servers: Sequence[int], failures: int) -> bool:
    """Would placing ``tenant`` on ``servers`` keep the packing robust?

    Tries the placement, audits the affected servers, rolls back.
    """
    try:
        placement.place_tenant(tenant, servers)
    except Exception:
        return False
    affected = set(servers)
    for sid in servers:
        affected.update(placement.shared_partners(sid))
    ok = all(placement.is_robust(sid, failures) for sid in affected)
    placement.remove_tenant(tenant.tenant_id)
    return ok


def optimal_servers(loads: Sequence[float], gamma: int,
                    failures: Optional[int] = None,
                    max_tenants: int = 12,
                    upper_bound: Optional[int] = None) -> int:
    """Exact minimum server count for a robust packing of ``loads``.

    Branch and bound over tenants in descending load order.  Symmetry is
    broken by only ever opening "the next" server (server ids are
    interchangeable), and branches are pruned against the best packing
    found so far and a capacity-based lower bound on the remainder.

    Raises
    ------
    ConfigurationError
        If more than ``max_tenants`` tenants are given (the search is
        exponential; the cap is a guard against accidental huge runs).
    """
    if gamma < 2:
        raise ConfigurationError(f"gamma must be >= 2, got {gamma}")
    if len(loads) > max_tenants:
        raise ConfigurationError(
            f"optimal_servers is exponential; got {len(loads)} tenants "
            f"(max_tenants={max_tenants})")
    if not loads:
        return 0
    f = gamma - 1 if failures is None else failures
    order = sorted(range(len(loads)), key=lambda i: -loads[i])
    tenants = [Tenant(tenant_id=i, load=loads[i]) for i in order]
    suffix_load = [0.0] * (len(tenants) + 1)
    for i in range(len(tenants) - 1, -1, -1):
        suffix_load[i] = suffix_load[i + 1] + tenants[i].load

    # Initial incumbent: offline FFD gives a valid upper bound.
    if upper_bound is None:
        ffd = OfflineFirstFitDecreasing(gamma=gamma, failures=f)
        ffd.consolidate(tenants)
        upper_bound = ffd.placement.num_servers
    best = [upper_bound]

    placement = PlacementState(gamma=gamma)

    def recurse(index: int, open_servers: int) -> None:
        if open_servers >= best[0]:
            return
        if index == len(tenants):
            best[0] = open_servers
            return
        # Capacity bound on the remainder: even ignoring reserves, the
        # remaining replica load must fit in the open servers' free
        # space plus whole new servers.
        free = sum(placement.server(s).free for s in range(open_servers))
        remaining = suffix_load[index]
        extra_needed = max(0, math.ceil(remaining - free - 1e-9))
        if open_servers + extra_needed >= best[0]:
            return
        tenant = tenants[index]
        # Enumerate how many *new* servers this tenant opens (symmetry:
        # new servers are taken in id order, so permutations of unused
        # servers are never explored twice).
        for new in range(0, gamma + 1):
            if gamma - new > open_servers:
                continue  # not enough existing servers for the rest
            total = open_servers + new
            if total >= best[0]:
                continue
            while placement.num_servers < total:
                placement.open_server()
            new_ids = list(range(open_servers, total))
            for existing in itertools.combinations(range(open_servers),
                                                   gamma - new):
                servers = list(existing) + new_ids
                if not _feasible_assignment(placement, tenant, servers,
                                            f):
                    continue
                placement.place_tenant(tenant, servers)
                recurse(index + 1, total)
                placement.remove_tenant(tenant.tenant_id)

    recurse(0, 0)
    return best[0]


@register
class OfflineFirstFitDecreasing(OnlinePlacementAlgorithm):
    """Offline heuristic: sort tenants by load descending, robust First
    Fit per replica.

    Not an online algorithm — :meth:`consolidate` sorts its input before
    placing.  Calling :meth:`place` directly places in the given order
    (useful once the input is pre-sorted).
    """

    name = "offline-ffd"

    def __init__(self, gamma: int = 2, failures: Optional[int] = None,
                 capacity: float = 1.0) -> None:
        super().__init__(gamma=gamma, capacity=capacity)
        self.failures = gamma - 1 if failures is None else failures
        self._index = ServerIndex(self.placement, failures=self.failures)

    @property
    def guaranteed_failures(self) -> int:
        return self.failures

    def consolidate(self, tenants: Iterable[Tenant]) -> PlacementState:
        ordered = sorted(tenants, key=lambda t: -t.load)
        return super().consolidate(ordered)

    def _place(self, tenant: Tenant) -> Tuple[int, ...]:
        chosen: List[int] = []
        for replica in tenant.replicas(self.gamma):
            future = self.gamma - len(chosen) - 1
            target = None
            for sid in self._index.candidates_by_id(
                    min_avail=replica.load, exclude=chosen):
                if robust_after_placement(self.placement, sid,
                                          replica.load, chosen,
                                          failures=self.failures,
                                          future_siblings=future,
                                          obs=self._obs):
                    target = sid
                    break
            if target is None:
                server = self.placement.open_server()
                self._index.track(server.server_id)
                target = server.server_id
            self.placement.place(replica, target)
            chosen.append(target)
        self._index.refresh(chosen)
        return tuple(chosen)
