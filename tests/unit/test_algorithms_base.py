"""Unit tests for the algorithm base layer: registry, ServerIndex,
feasibility primitives."""

import pytest

from repro.algorithms.base import (ServerIndex, available_algorithms,
                                   make_algorithm, robust_after_placement,
                                   worst_shared_sum)
from repro.core.placement import PlacementState
from repro.core.tenant import Tenant
from repro.errors import ConfigurationError


def placed(gamma=2, servers=4):
    ps = PlacementState(gamma=gamma)
    for _ in range(servers):
        ps.open_server()
    return ps


class TestRegistry:
    def test_known_algorithms_registered(self):
        names = available_algorithms()
        for expected in ("cubefit", "rfi", "bestfit", "firstfit",
                         "nextfit"):
            assert expected in names

    def test_make_algorithm(self):
        algo = make_algorithm("rfi", gamma=2)
        assert algo.name == "rfi"
        assert algo.gamma == 2

    def test_make_algorithm_with_kwargs(self):
        algo = make_algorithm("cubefit", gamma=3, num_classes=5)
        assert algo.config.num_classes == 5

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("nope", gamma=2)

    def test_gamma_one_rejected(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("rfi", gamma=1)


class TestWorstSharedSum:
    def test_plain_topk(self):
        ps = placed(gamma=3, servers=5)
        ps.place_tenant(Tenant(0, 0.3), [0, 1, 2])
        ps.place_tenant(Tenant(1, 0.6), [0, 3, 4])
        assert worst_shared_sum(ps, 0, failures=2) == pytest.approx(0.4)
        assert worst_shared_sum(ps, 0, failures=1) == pytest.approx(0.2)

    def test_bumps_extend_existing_partner(self):
        ps = placed(gamma=2, servers=3)
        ps.place_tenant(Tenant(0, 0.4), [0, 1])
        value = worst_shared_sum(ps, 0, failures=1, bumps={1: 0.1})
        assert value == pytest.approx(0.3)

    def test_bumps_add_new_partner(self):
        ps = placed(gamma=2, servers=3)
        ps.place_tenant(Tenant(0, 0.4), [0, 1])
        value = worst_shared_sum(ps, 0, failures=1, bumps={2: 0.5})
        assert value == pytest.approx(0.5)

    def test_extra_partners_anticipate_future_siblings(self):
        ps = placed(gamma=2, servers=2)
        value = worst_shared_sum(ps, 0, failures=1, extra_partners=[0.25])
        assert value == pytest.approx(0.25)

    def test_self_bump_ignored(self):
        ps = placed(gamma=2, servers=2)
        assert worst_shared_sum(ps, 0, failures=1, bumps={0: 0.9}) == 0.0

    def test_zero_failures(self):
        ps = placed(gamma=2, servers=2)
        ps.place_tenant(Tenant(0, 0.4), [0, 1])
        assert worst_shared_sum(ps, 0, failures=0) == 0.0


class TestRobustAfterPlacement:
    def test_accepts_safe_placement(self):
        ps = placed(gamma=2, servers=2)
        assert robust_after_placement(ps, 0, 0.3, chosen=[], failures=1,
                                      future_siblings=1)

    def test_rejects_when_reserve_would_break(self):
        ps = placed(gamma=2, servers=3)
        ps.place_tenant(Tenant(0, 0.8), [0, 1])  # server 0: load .4 shared .4
        # Placing 0.25 on server 0 leaves empty 0.35 < worst shared
        # 0.4 + anticipated sibling 0.25 -> max(0.4+... ) = 0.4? The
        # anticipated sibling adds a *new* partner of 0.25; top-1 is
        # still 0.4 > 0.35 -> reject.
        assert not robust_after_placement(ps, 0, 0.25, chosen=[],
                                          failures=1, future_siblings=1)

    def test_checks_chosen_siblings(self):
        ps = placed(gamma=2, servers=3)
        # Server 1 nearly full: load 0.9, no shared yet.
        ps.place(Tenant(9, 1.0).replicas(2)[0], 1)
        ps.place(Tenant(9, 1.0).replicas(2)[1], 2)
        ps.place(Tenant(8, 0.8).replicas(2)[0], 1)
        ps.place(Tenant(8, 0.8).replicas(2)[1], 2)
        # server 1 load = 0.9, shared(1,2) = 0.9: already at the brink.
        # Placing a replica on server 0 with sibling on server 1 bumps
        # shared(1,0) by the replica load; server 1 has no room left.
        assert not robust_after_placement(ps, 0, 0.2, chosen=[1],
                                          failures=1)

    def test_extra_reserve_demands_headroom(self):
        ps = placed(gamma=2, servers=1)
        assert robust_after_placement(ps, 0, 0.5, chosen=[], failures=1,
                                      extra_reserve=0.4)
        assert not robust_after_placement(ps, 0, 0.5, chosen=[],
                                          failures=1, extra_reserve=0.6)


class TestServerIndex:
    def test_candidates_sorted_by_level_desc(self):
        ps = placed(gamma=2, servers=3)
        idx = ServerIndex(ps, failures=1)
        for sid in (0, 1, 2):
            idx.track(sid)
        ps.place_tenant(Tenant(0, 0.4), [0, 1])   # levels .2/.2/0
        ps.place_tenant(Tenant(1, 0.6), [1, 2])   # levels .2/.5/.3
        idx.refresh([0, 1, 2])
        assert idx.candidates(min_avail=0.01) == [1, 2, 0]

    def test_min_avail_filters(self):
        ps = placed(gamma=2, servers=2)
        idx = ServerIndex(ps, failures=1)
        idx.track(0)
        idx.track(1)
        ps.place_tenant(Tenant(0, 0.9), [0, 1])  # avail = 1-.45-.45 = .1
        idx.refresh([0, 1])
        assert idx.candidates(min_avail=0.2) == []
        assert set(idx.candidates(min_avail=0.05)) == {0, 1}

    def test_max_level_filter(self):
        ps = placed(gamma=2, servers=2)
        idx = ServerIndex(ps, failures=1)
        idx.track(0)
        idx.track(1)
        ps.place(Tenant(0, 0.8).replicas(2)[0], 0)
        idx.refresh([0])
        assert idx.candidates(min_avail=0.0, max_level=0.3) == [1]

    def test_exclude(self):
        ps = placed(gamma=2, servers=2)
        idx = ServerIndex(ps, failures=1)
        idx.track(0)
        idx.track(1)
        assert idx.candidates(min_avail=0.0, exclude=[0]) == [1]

    def test_eligibility_gating(self):
        ps = placed(gamma=2, servers=2)
        idx = ServerIndex(ps, failures=1)
        idx.track(0, eligible=False)
        idx.track(1, eligible=True)
        assert idx.candidates(min_avail=0.0) == [1]
        idx.set_eligible(0, True)
        assert set(idx.candidates(min_avail=0.0)) == {0, 1}

    def test_untracked_servers_invisible(self):
        ps = placed(gamma=2, servers=2)
        idx = ServerIndex(ps, failures=1)
        idx.track(0)
        assert idx.candidates(min_avail=0.0) == [0]

    def test_growth_beyond_initial_capacity(self):
        ps = PlacementState(gamma=2)
        idx = ServerIndex(ps, failures=1)
        for _ in range(1500):
            s = ps.open_server()
            idx.track(s.server_id)
        assert idx.level(1400) == 0.0
        assert len(idx.candidates(min_avail=0.5)) == 1500

    @pytest.mark.parametrize("container", [list, tuple, set, frozenset])
    def test_exclude_accepts_any_container(self, container):
        ps = placed(gamma=2, servers=3)
        idx = ServerIndex(ps, failures=1)
        for sid in (0, 1, 2):
            idx.track(sid)
        assert idx.candidates(min_avail=0.0,
                              exclude=container((0, 2))) == [1]

    def test_single_survivor_skips_sort(self):
        # The single-survivor fast path must return the same answer the
        # general path would: the one id, regardless of its level.
        ps = placed(gamma=2, servers=3)
        idx = ServerIndex(ps, failures=1)
        for sid in (0, 1, 2):
            idx.track(sid)
        ps.place_tenant(Tenant(0, 0.9), [0, 1])  # only 2 stays wide open
        assert idx.candidates(min_avail=0.6) == [2]
        assert idx.candidates(min_avail=0.0, exclude={0, 2}) == [1]

    def test_ineligible_servers_defer_recomputation(self):
        """Mutations while ineligible must not be lost: flipping a server
        eligible again surfaces its *current* state, even though the
        index skipped it on every intermediate sync."""
        ps = placed(gamma=2, servers=3)
        idx = ServerIndex(ps, failures=1)
        idx.track(0, eligible=True)
        idx.track(1, eligible=False)
        idx.track(2, eligible=True)
        ps.place_tenant(Tenant(0, 0.6), [1, 2])   # mutates ineligible 1
        ps.place_tenant(Tenant(1, 0.2), [1, 0])   # ... twice
        assert 1 not in idx.candidates(min_avail=0.0)
        idx.set_eligible(1, True)
        # level reflects both placements, avail the true slack.
        assert idx.level(1) == pytest.approx(0.4)
        expected = 1.0 - 0.4 - ps.worst_failover_load(1, 1)
        assert idx.avail(1) == pytest.approx(expected)
        assert 1 in idx.candidates(min_avail=0.0)

    def test_avail_and_level_exact_while_ineligible(self):
        """Reads bypass the eligibility sentinel: an ineligible server
        still reports its true load and slack, never -inf."""
        ps = placed(gamma=2, servers=2)
        idx = ServerIndex(ps, failures=1)
        idx.track(0, eligible=False)
        idx.track(1, eligible=True)
        ps.place_tenant(Tenant(0, 0.5), [0, 1])
        assert idx.level(0) == pytest.approx(0.25)
        expected = 1.0 - 0.25 - ps.worst_failover_load(0, 1)
        assert idx.avail(0) == pytest.approx(expected)
        assert idx.avail(0) > float("-inf")

    def test_eligibility_toggle_is_idempotent(self):
        ps = placed(gamma=2, servers=2)
        idx = ServerIndex(ps, failures=1)
        idx.track(0)
        idx.track(1)
        before = idx.candidates(min_avail=0.0)
        idx.set_eligible(0, True)   # no-op: already eligible
        idx.set_eligible(1, False)
        idx.set_eligible(1, False)  # no-op: already ineligible
        assert idx.candidates(min_avail=0.0) == [0]
        idx.set_eligible(1, True)
        assert sorted(idx.candidates(min_avail=0.0)) == sorted(before)
