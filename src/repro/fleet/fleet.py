"""The fleet: N durable shards behind one router.

:class:`PlacementFleet` is the stateful, serial coordinator — the
object the chaos drill, the rebalancer, and interactive use drive.
(The large-scale soak in :mod:`repro.fleet.soak` deliberately does
*not* keep a live fleet: it routes first, then executes each shard's
sub-stream in :func:`repro.par.pmap` workers.)

Layout on disk under the fleet root::

    <root>/fleet.json        # shards, gamma, capacity, policy, ...
    <root>/shard-000/        # a full DurableStore per shard
    <root>/shard-001/
    ...

Whole-shard failure is first-class: :meth:`crash_shard` abandons a
shard controller exactly as SIGKILL would (no close, no flush);
:meth:`recover_shard` brings it back from its own WAL + checkpoint and
reconciles the router's estimates with the recovered truth.  While a
shard is down, new tenants route around it and operations on its
tenants surface as typed :class:`~repro.errors.ShardDownError`.

Migration safety: the rebalancer places on the target shard *before*
removing from the source, so a crash between the two steps leaves a
tenant present on both shards — never on neither.  :meth:`reconcile`
repairs that torn state deterministically (the copy on the
lowest-numbered shard wins).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.tenant import Tenant
from ..errors import (ConfigurationError, ShardDownError,
                      ShardSaturatedError, StoreCorruptionError)
from ..store.wal import FSYNC_ALWAYS
from .router import POLICIES, PlacementRouter
from .shard import ShardController, shard_directory

PathLike = Union[str, Path]

FLEET_META_NAME = "fleet.json"
FLEET_META_FORMAT = "repro-fleet-meta"
FLEET_META_VERSION = 1


def write_fleet_meta(root: PathLike, **fields) -> Path:
    path = Path(root) / FLEET_META_NAME
    payload = {"format": FLEET_META_FORMAT,
               "version": FLEET_META_VERSION}
    payload.update(fields)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=1),
                   encoding="utf-8")
    tmp.replace(path)
    return path


def read_fleet_meta(root: PathLike) -> Dict[str, object]:
    path = Path(root) / FLEET_META_NAME
    if not path.exists():
        raise ConfigurationError(
            f"{path} does not exist — not a fleet root")
    try:
        meta = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as err:
        raise StoreCorruptionError(f"{path}: unparseable: {err}") \
            from None
    if meta.get("format") != FLEET_META_FORMAT:
        raise StoreCorruptionError(
            f"{path}: format {meta.get('format')!r}, expected "
            f"{FLEET_META_FORMAT!r}")
    return meta


class PlacementFleet:
    """N durable shard controllers behind a deterministic router.

    Opening an existing fleet root recovers every shard (warm start);
    a fresh root writes ``fleet.json`` and starts shards cold.  The
    recorded shard count, gamma, and policy are authoritative on
    reopen — mismatched arguments are a configuration error, exactly
    like the store's own ``meta.json`` contract.
    """

    def __init__(self, root: PathLike, shards: int = 4,
                 gamma: int = 2, capacity: float = 1.0,
                 failures: Optional[int] = None,
                 policy: str = "hash", seed: int = 0,
                 batch_size: int = 64,
                 max_servers_per_shard: Optional[int] = None,
                 obs=None, fsync: str = FSYNC_ALWAYS,
                 segment_records: int = 512) -> None:
        self.root = Path(root)
        meta_path = self.root / FLEET_META_NAME
        if meta_path.exists():
            # Reopen: the recorded geometry is authoritative, exactly
            # like the per-store meta.json contract (arguments that
            # disagree are ignored in favour of what is on disk; the
            # per-shard stores still hard-reject a gamma mismatch).
            meta = read_fleet_meta(self.root)
            shards = int(meta["shards"])
            gamma = int(meta["gamma"])
            capacity = float(meta["capacity"])
            policy = str(meta["policy"])
            seed = int(meta["seed"])
            max_servers_per_shard = meta.get("max_servers_per_shard")
        else:
            if policy not in POLICIES:
                raise ConfigurationError(
                    f"unknown policy {policy!r}; known: {POLICIES}")
            write_fleet_meta(
                self.root, shards=shards, gamma=gamma,
                capacity=capacity, policy=policy, seed=seed,
                max_servers_per_shard=max_servers_per_shard)
        self._obs = obs
        load_budget = (None if max_servers_per_shard is None
                       else max_servers_per_shard * capacity)
        self.router = PlacementRouter(
            shards, policy=policy, seed=seed, batch_size=batch_size,
            load_budget=load_budget)
        self.max_servers_per_shard = max_servers_per_shard
        self.shards: List[Optional[ShardController]] = []
        for shard_id in range(shards):
            self.shards.append(ShardController(
                shard_id, shard_directory(self.root, shard_id),
                gamma=gamma, capacity=capacity, failures=failures,
                max_servers=max_servers_per_shard, obs=obs,
                fsync=fsync, segment_records=segment_records))
        self.gamma = gamma
        self.capacity = capacity
        self.failures = failures
        self._fsync = fsync
        self._segment_records = segment_records
        #: tenant id -> shard id, for every tenant the fleet placed.
        self.shard_of: Dict[int, int] = {}
        for controller in self.shards:
            for tenant_id in controller.placement.tenant_ids:
                self.shard_of[tenant_id] = controller.shard_id
            self.router.reconcile(controller.shard_id,
                                  controller.total_load,
                                  controller.placement.num_tenants)

    # ------------------------------------------------------------------
    # Placement surface
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    def _live(self, shard_id: int) -> ShardController:
        controller = self.shards[shard_id]
        if controller is None:
            raise ShardDownError(
                f"shard {shard_id} is down", shard_id=shard_id)
        return controller

    def place(self, tenant: Tenant) -> Tuple[int, Tuple[int, ...]]:
        """Admit ``tenant``; returns ``(shard id, server ids)``.

        The router's target is tried first; a typed saturation refusal
        spills to siblings in ring order.  Only when every live shard
        refuses does the fleet itself raise
        :class:`~repro.errors.ShardSaturatedError`.
        """
        if tenant.tenant_id in self.shard_of:
            raise ConfigurationError(
                f"tenant {tenant.tenant_id} is already placed on "
                f"shard {self.shard_of[tenant.tenant_id]}")
        target = self.router.route(tenant)
        candidates = [target]
        try:
            servers = self._live(target).place(tenant)
        except ShardSaturatedError:
            servers = None
            for sibling in self.router.spill_order(tenant, target):
                candidates.append(sibling)
                try:
                    servers = self._live(sibling).place(tenant)
                except ShardSaturatedError:
                    continue
                target = sibling
                break
            if servers is None:
                raise ShardSaturatedError(
                    f"fleet saturated: no shard can place tenant "
                    f"{tenant.tenant_id} (load {tenant.load}); "
                    f"tried {candidates}", shard_id=target) from None
        self.router.record_place(target, tenant.load)
        self.router.routed += 1
        self.shard_of[tenant.tenant_id] = target
        if self._obs is not None:
            self._obs.counter("fleet.placed").inc()
        return target, servers

    def _home_of(self, tenant_id: int) -> int:
        try:
            return self.shard_of[tenant_id]
        except KeyError:
            raise ConfigurationError(
                f"tenant {tenant_id} is not placed on any shard") \
                from None

    def remove(self, tenant_id: int) -> int:
        """Remove ``tenant_id`` from its home shard; returns the shard."""
        shard_id = self._home_of(tenant_id)
        controller = self._live(shard_id)
        load = controller.placement.tenant_load(tenant_id)
        controller.remove(tenant_id)
        self.router.record_remove(shard_id, load)
        del self.shard_of[tenant_id]
        return shard_id

    def update_load(self, tenant_id: int, load: float) -> int:
        shard_id = self._home_of(tenant_id)
        controller = self._live(shard_id)
        before = controller.placement.tenant_load(tenant_id)
        controller.update_load(tenant_id, load)
        after = controller.placement.tenant_load(tenant_id)
        self.router.loads[shard_id] += after - before
        return shard_id

    # ------------------------------------------------------------------
    # Whole-shard failure
    # ------------------------------------------------------------------
    def crash_shard(self, shard_id: int) -> None:
        """Abandon a shard with kill -9 semantics and mark it down."""
        controller = self._live(shard_id)
        controller.crash()
        self.shards[shard_id] = None
        self.router.mark_down(shard_id)
        if self._obs is not None:
            self._obs.counter("fleet.shard_crashes").inc()
            self._obs.emit("fleet_shard_crash", shard=shard_id)

    def recover_shard(self, shard_id: int) -> ShardController:
        """Recover a crashed shard from its own WAL + checkpoint.

        The recovered placement is audited by the store layer; the
        router's estimate for the shard is reconciled with the
        recovered totals, and the tenant->shard map is rebuilt from
        the recovered tenant ids (dropping any mapping a lost
        in-flight operation might have left behind).
        """
        if self.shards[shard_id] is not None:
            raise ConfigurationError(
                f"shard {shard_id} is not down")
        controller = ShardController(
            shard_id, shard_directory(self.root, shard_id),
            gamma=self.gamma, capacity=self.capacity,
            failures=self.failures,
            max_servers=self.max_servers_per_shard, obs=self._obs,
            fsync=self._fsync,
            segment_records=self._segment_records)
        self.shards[shard_id] = controller
        self.shard_of = {tid: sid for tid, sid in self.shard_of.items()
                         if sid != shard_id}
        for tenant_id in controller.placement.tenant_ids:
            self.shard_of[tenant_id] = shard_id
        self.router.reconcile(shard_id, controller.total_load,
                              controller.placement.num_tenants)
        if self._obs is not None:
            self._obs.counter("fleet.shard_recoveries").inc()
            self._obs.emit("fleet_shard_recover", shard=shard_id,
                           tenants=controller.placement.num_tenants)
        return controller

    def reconcile(self) -> List[Tuple[int, int]]:
        """Repair tenants left on two shards by a torn migration.

        Returns ``(tenant id, shard the extra copy was removed from)``
        pairs.  Deterministic rule: the copy on the lowest-numbered
        shard survives.
        """
        seen: Dict[int, int] = {}
        removed: List[Tuple[int, int]] = []
        for controller in self.shards:
            if controller is None:
                continue
            for tenant_id in controller.placement.tenant_ids:
                if tenant_id not in seen:
                    seen[tenant_id] = controller.shard_id
                    continue
                load = controller.placement.tenant_load(tenant_id)
                controller.remove(tenant_id)
                self.router.record_remove(controller.shard_id, load)
                removed.append((tenant_id, controller.shard_id))
        self.shard_of = seen
        return removed

    # ------------------------------------------------------------------
    # Fleet-wide operations
    # ------------------------------------------------------------------
    def rebalance(self, max_moves: int = 16,
                  tolerance: float = 0.1) -> List["Migration"]:
        from .rebalance import rebalance
        return rebalance(self, max_moves=max_moves,
                         tolerance=tolerance)

    def audit_all(self) -> Dict[int, object]:
        """Robustness audit of every live shard (down shards skipped)."""
        return {controller.shard_id: controller.audit()
                for controller in self.shards if controller is not None}

    @property
    def all_audits_ok(self) -> bool:
        return all(report.ok for report in self.audit_all().values())

    def checkpoint_all(self) -> None:
        for controller in self.shards:
            if controller is not None:
                controller.checkpoint_and_compact()

    def status(self) -> Dict[str, object]:
        shard_rows = []
        for shard_id in range(self.num_shards):
            controller = self.shards[shard_id]
            if controller is None:
                shard_rows.append({"shard": shard_id, "down": True})
            else:
                row = controller.status()
                row["down"] = False
                shard_rows.append(row)
        live = [c for c in self.shards if c is not None]
        return {
            "root": str(self.root),
            "gamma": self.gamma,
            "tenants": sum(c.placement.num_tenants for c in live),
            "servers": sum(c.placement.num_servers for c in live),
            "router": self.router.snapshot(),
            "shards": shard_rows,
        }

    def close(self) -> None:
        for controller in self.shards:
            if controller is not None:
                controller.close()

    def __enter__(self) -> "PlacementFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PlacementFleet(root={str(self.root)!r}, "
                f"shards={self.num_shards}, policy="
                f"{self.router.policy!r})")
