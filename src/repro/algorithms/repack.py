"""Repacking: migrate tenants off under-utilized servers.

Churn fragments any online packing (see the E11 study): departures
leave servers half-empty and the fleet drifts above what a fresh
packing of the surviving tenants would need.  The repacker performs the
classic consolidation maintenance pass:

1. rank non-empty servers by *drainability* — total hosted load, lowest
   first (cheapest to empty);
2. for each candidate server, try to re-home every tenant with a
   replica on it onto the remaining servers (Best Fit with the full
   robustness check, never onto another drain candidate);
3. commit the drain only if every tenant fit — otherwise roll the
   server's tenants back where they were;
4. stop when a server fails to drain (further candidates hold more
   load) or a migration budget is exhausted.

The plan reports the migrations (tenant, from, to) so an operator can
price the data movement; robustness holds at *every intermediate step*,
not just at the end — a tenant is moved atomically (remove + re-place
via the algorithm's own checked path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..core.placement import PlacementState
from ..core.tenant import Tenant
from .base import robust_after_placement


@dataclass(frozen=True)
class TenantMigration:
    """One tenant moved during repacking."""

    tenant_id: int
    load: float
    sources: Tuple[int, ...]
    targets: Tuple[int, ...]


@dataclass
class RepackPlan:
    """Outcome of a repacking pass."""

    drained_servers: List[int] = field(default_factory=list)
    migrations: List[TenantMigration] = field(default_factory=list)
    servers_before: int = 0
    servers_after: int = 0

    @property
    def servers_saved(self) -> int:
        return self.servers_before - self.servers_after

    @property
    def load_migrated(self) -> float:
        return sum(m.load for m in self.migrations)

    def __str__(self) -> str:
        return (f"RepackPlan(drained={self.drained_servers}, "
                f"{len(self.migrations)} tenants / "
                f"{self.load_migrated:.2f} load migrated, "
                f"{self.servers_before} -> {self.servers_after} servers)")


class Repacker:
    """Drains under-utilized servers from an existing placement.

    Pass ``obs`` (a :class:`~repro.obs.MetricsRegistry`) to emit one
    ``repack_move`` journal event per migrated tenant plus migration
    counters, migrated-load histograms, and a ``span.repack.seconds``
    timing of the whole pass.
    """

    def __init__(self, placement: PlacementState,
                 failures: Optional[int] = None,
                 obs=None) -> None:
        self.placement = placement
        self.failures = placement.gamma - 1 if failures is None \
            else failures
        from ..obs import active
        self._obs = active(obs)

    def repack(self, max_migrations: Optional[int] = None,
               max_drains: Optional[int] = None) -> RepackPlan:
        """Run the maintenance pass; mutates the placement.

        Candidates are visited least-loaded first; an undrainable
        candidate (its tenants cannot all be re-homed) is skipped, not
        fatal — a heavier server with a luckier tenant mix may still
        drain.  Each successful drain changes the landscape, so the
        candidate order is recomputed after every attempt round.
        """
        obs = self._obs
        if obs is None:
            return self._repack(max_migrations, max_drains, None)
        from ..obs import span
        with span("repack", registry=obs):
            return self._repack(max_migrations, max_drains, obs)

    def _repack(self, max_migrations: Optional[int],
                max_drains: Optional[int], obs) -> RepackPlan:
        placement = self.placement
        plan = RepackPlan(
            servers_before=placement.num_nonempty_servers)
        budget = max_migrations if max_migrations is not None \
            else float("inf")
        drains = max_drains if max_drains is not None else float("inf")
        skipped: Set[int] = set()
        while drains > 0 and budget > 0:
            candidate = self._next_candidate(plan.drained_servers,
                                             skipped)
            if candidate is None:
                break
            already_moved = len(plan.migrations)
            moved = self._drain(candidate, budget, plan)
            if moved is None:
                skipped.add(candidate)
                continue
            budget -= moved
            plan.drained_servers.append(candidate)
            drains -= 1
            if obs is not None:
                obs.counter("repack.drained_servers").inc()
                for migration in plan.migrations[already_moved:]:
                    obs.counter("repack.migrations").inc()
                    obs.histogram("repack.migrated_load").observe(
                        migration.load)
                    obs.emit("repack_move",
                             tenant=migration.tenant_id,
                             load=migration.load,
                             sources=list(migration.sources),
                             targets=list(migration.targets))
        plan.servers_after = placement.num_nonempty_servers
        return plan

    # ------------------------------------------------------------------
    def _next_candidate(self, drained: Sequence[int],
                        skipped: Set[int]) -> Optional[int]:
        """Least-loaded non-empty server not yet drained or skipped."""
        candidates = [s for s in self.placement
                      if len(s) > 0 and s.server_id not in drained
                      and s.server_id not in skipped]
        if len(candidates) <= 1:
            return None
        return min(candidates,
                   key=lambda s: (s.load, s.server_id)).server_id

    def _drain(self, server_id: int, budget: float,
               plan: RepackPlan) -> Optional[int]:
        """Move every tenant off ``server_id``; None if impossible."""
        placement = self.placement
        tenant_ids = sorted(
            {tid for tid, _ in placement.server(server_id).replicas},
            key=lambda tid: -placement.tenant_load(tid))
        if len(tenant_ids) > budget:
            return None
        undo: List[Tuple[Tenant, List[int]]] = []
        moved: List[TenantMigration] = []
        for tenant_id in tenant_ids:
            old_homes = [placement.tenant_servers(tenant_id)[j]
                         for j in range(placement.gamma)]
            load = placement.tenant_load(tenant_id)
            tenant = Tenant(tenant_id, load)
            placement.remove_tenant(tenant_id)
            targets = self._place_checked(tenant, forbidden={server_id})
            if targets is None:
                placement.place_tenant(tenant, old_homes)
                for undo_tenant, undo_homes in reversed(undo):
                    placement.remove_tenant(undo_tenant.tenant_id)
                    placement.place_tenant(undo_tenant, undo_homes)
                return None
            undo.append((tenant, old_homes))
            moved.append(TenantMigration(
                tenant_id=tenant_id, load=load,
                sources=tuple(old_homes), targets=tuple(targets)))
        plan.migrations.extend(moved)
        return len(moved)

    def _place_checked(self, tenant: Tenant,
                       forbidden: Set[int]) -> Optional[List[int]]:
        """Place all replicas Best-Fit with exact robustness checks.

        Replicas are placed *one by one* so that each subsequent check
        sees the previously placed siblings' actual loads; on failure
        everything placed so far is rolled back and None returned.
        """
        placement = self.placement
        replicas = tenant.replicas(placement.gamma)
        chosen: List[int] = []
        for replica in replicas:
            # Skip bins tagged immature: CUBEFIT's cube machinery still
            # owns their unfilled slots and will fill them without
            # re-checking (see repro.core.recovery for the same rule).
            candidates = sorted(
                (s for s in placement
                 if s.server_id not in forbidden
                 and s.server_id not in chosen
                 and len(s) > 0
                 and s.tags.get("mature", True)
                 and s.capacity - s.load >= replica.load - 1e-12),
                key=lambda s: (-s.load, s.server_id))
            target = None
            for server in candidates:
                if robust_after_placement(
                        placement, server.server_id, replica.load,
                        chosen, failures=self.failures, obs=self._obs):
                    target = server.server_id
                    break
            if target is None:
                for placed, sid in zip(replicas, chosen):
                    placement.unplace(placed.key, sid)
                return None
            placement.place(replica, target)
            chosen.append(target)
        return chosen
