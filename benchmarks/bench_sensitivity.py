"""Benchmark E14 — parameter sensitivity: RFI's mu and CUBEFIT's K.

The paper uses mu = 0.85 "as recommended in [12]" and K = 5/10 with one
sentence of guidance; these sweeps turn both into curves.

Observed shapes (defaults, seed 0):

* mu: flat from ~0.6 upward on uniform workloads — the recommendation
  is safe but not load-bearing; very low mu can even help by forcing
  primaries onto fresh servers that later absorb secondaries.
* K: packing improves steeply from K = 2-3 to K ~ 5-10, then degrades
  when classes outnumber what the tenant count can fill (group sprawl)
  — exactly the paper's "more classes for more tenants" guidance.
"""

import pytest

from repro.sim.sensitivity import k_sensitivity, mu_sensitivity
from repro.workloads.distributions import (NormalizedClients, UniformLoad,
                                           ZipfClients)

N_TENANTS = 2_000


def test_mu_sweep(benchmark):
    curve = benchmark.pedantic(
        lambda: mu_sensitivity(UniformLoad(0.4), n_tenants=N_TENANTS),
        rounds=1, iterations=1)
    print()
    print(curve)
    benchmark.extra_info["servers_by_mu"] = {
        str(p.parameter): p.servers for p in curve.points}
    # The paper's mu=0.85 must not be badly suboptimal.
    assert curve.servers_at(0.85) <= 1.15 * curve.best().servers


def test_k_sweep(benchmark):
    dist = NormalizedClients(ZipfClients(3.0, 52))
    curve = benchmark.pedantic(
        lambda: k_sensitivity(dist, n_tenants=N_TENANTS),
        rounds=1, iterations=1)
    print()
    print(curve)
    benchmark.extra_info["servers_by_k"] = {
        str(int(p.parameter)): p.servers for p in curve.points}
    # K around 10 (the paper's simulation setting) is near the sweep's
    # best at this scale.
    assert curve.servers_at(10) <= 1.2 * curve.best().servers
    # Too few classes is clearly worse.
    assert curve.servers_at(2) > curve.servers_at(10)
