"""Unit tests for the RFI baseline."""

import pytest

from repro.algorithms.rfi import RFI, DEFAULT_MU
from repro.core.tenant import Tenant, make_tenants
from repro.core.validation import audit, brute_force_audit
from repro.errors import ConfigurationError


class TestConfiguration:
    def test_default_mu(self):
        assert RFI(gamma=2).mu == DEFAULT_MU == 0.85

    @pytest.mark.parametrize("mu", [0.0, -0.5, 1.5])
    def test_invalid_mu(self, mu):
        with pytest.raises(ConfigurationError):
            RFI(gamma=2, mu=mu)

    def test_describe(self):
        info = RFI(gamma=2, mu=0.7).describe()
        assert info["algorithm"] == "rfi"
        assert info["mu"] == 0.7


class TestPlacement:
    def test_replicas_on_distinct_servers(self):
        algo = RFI(gamma=2)
        algo.place(Tenant(0, 0.6))
        homes = algo.placement.tenant_servers(0)
        assert len(set(homes.values())) == 2

    def test_single_failure_robustness_random(self, seeded_tenants):
        algo = RFI(gamma=2)
        algo.consolidate(seeded_tenants(300, seed=31))
        assert audit(algo.placement, failures=1).ok

    def test_single_failure_robustness_gamma3(self, seeded_tenants):
        algo = RFI(gamma=3)
        algo.consolidate(seeded_tenants(150, seed=37))
        assert audit(algo.placement, failures=1).ok

    def test_brute_force_small(self, seeded_tenants):
        algo = RFI(gamma=2)
        algo.consolidate(seeded_tenants(30, 0.05, 1.0, seed=41))
        assert brute_force_audit(algo.placement, failures=1).ok

    def test_not_robust_to_two_failures_in_general(self, seeded_tenants):
        """RFI only reserves for one failure; find a workload where two
        simultaneous failures would overload (the premise of Figure 5)."""
        algo = RFI(gamma=2)
        algo.consolidate(seeded_tenants(200, 0.2, 0.6, seed=43))
        assert audit(algo.placement, failures=1).ok
        assert not audit(algo.placement, failures=2).ok

    def test_mu_caps_primary_fill(self):
        """A server's level must not exceed mu when it receives a
        tenant's first replica."""
        algo = RFI(gamma=2, mu=0.6)
        # Track levels at each primary placement.
        for tid, load in enumerate([0.8, 0.8, 0.8, 0.8]):
            tenant = Tenant(tid, load)
            before = {s.server_id: s.load for s in algo.placement}
            homes = algo.place(tenant)
            primary = homes[0]
            level_before = before.get(primary, 0.0)
            assert level_before + load / 2 <= 0.6 + 1e-9

    def test_best_fit_prefers_fullest_feasible(self):
        algo = RFI(gamma=2)
        algo.consolidate(make_tenants([0.5, 0.3]))
        # Tenant 1's replicas (0.15) should land on the fullest servers
        # hosting tenant 0's 0.25-replicas rather than new servers.
        assert algo.placement.num_nonempty_servers == 2

    def test_uses_fewer_servers_than_one_per_replica(self, seeded_tenants):
        algo = RFI(gamma=2)
        algo.consolidate(seeded_tenants(100, 0.05, 0.3, seed=47))
        assert algo.placement.num_servers < 200
