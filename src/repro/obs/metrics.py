"""Counters, gauges, histograms and the registry that owns them.

The registry is the fleet's *pull*-side observability surface: hot
paths increment counters and observe histograms; reports read a
:meth:`MetricsRegistry.snapshot` at the end of a run.  Everything is
plain stdlib — no third-party client library — because the point is to
instrument a packing loop that runs millions of operations, not to
scrape an endpoint.

Histograms use **fixed bucket boundaries** (upper bounds, inclusive)
chosen at creation time; percentiles are estimated as the upper bound
of the bucket containing the requested rank, clamped to the observed
maximum.  That makes ``observe()`` O(log buckets) with zero allocation
and keeps memory constant regardless of sample count — the standard
trade of exactness for boundedness.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Default histogram boundaries: geometric-ish coverage of both
#: sub-millisecond operation durations (seconds) and normalized loads
#: in ``(0, 1]``.  An implicit overflow bucket catches everything above
#: the last bound.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)

#: Boundaries tuned for per-operation placement latencies: a 1-2-5
#: ladder from one microsecond to ten seconds.  Placement operations
#: cluster in the 10us-1ms band at bench scales, where the default
#: ladder has only one boundary per decade — too coarse for a p99
#: claim.  Used by the instrumented ``placement.*.seconds`` histograms
#: and the fleet soak's latency report.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r}: cannot add negative {amount}")
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with percentile estimates.

    ``buckets`` are inclusive upper bounds in strictly increasing
    order; an implicit overflow bucket holds observations above the
    last bound.  A value exactly equal to a bound lands in that
    bound's bucket.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(
                f"histogram {name!r}: need at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r}: bounds must strictly increase, "
                f"got {bounds}")
        self.name = name
        self.buckets = bounds
        #: Per-bucket counts; final slot is the overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (0..100); 0.0 when empty.

        Returns the upper bound of the bucket holding the requested
        rank, clamped to the observed maximum (exact for the overflow
        bucket, conservative elsewhere).
        """
        if not (0.0 <= q <= 100.0):
            raise ConfigurationError(
                f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.buckets):
                    return self.max
                return min(self.buckets[index], self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean(),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "buckets": {str(b): c for b, c in
                        zip(self.buckets, self.counts)},
            "overflow": self.counts[-1],
        }


class MetricsRegistry:
    """Named metrics plus an optional event journal.

    Metrics are created on first use (``registry.counter("x").inc()``)
    and re-requesting a name returns the same instrument; requesting an
    existing name as a different kind raises.  When a
    :class:`~repro.obs.journal.EventJournal` is attached, :meth:`emit`
    appends structured events to it — hot paths call one method and the
    registry fans out.
    """

    def __init__(self, journal=None) -> None:
        self._metrics: Dict[str, object] = {}
        self.journal = journal

    # ------------------------------------------------------------------
    def _get(self, name: str, kind, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        if buckets is None:
            return self._get(name, Histogram)
        return self._get(name, Histogram, buckets)

    def emit(self, event_type: str, **fields) -> None:
        """Append an event to the attached journal (no-op without one)."""
        if self.journal is not None:
            self.journal.emit(event_type, **fields)

    def span(self, name: str):
        """Convenience: a :class:`~repro.obs.spans.span` recording here."""
        from .spans import span
        return span(name, registry=self)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-data view of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot()
                for name in self.names()}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_table(self):
        """Render as a :class:`repro.analysis.report.Table`."""
        from ..analysis.report import metrics_table
        return metrics_table(self.snapshot())


def absorb_snapshot(registry: MetricsRegistry,
                    snapshot: Dict[str, Dict[str, object]]) -> None:
    """Fold a :meth:`MetricsRegistry.snapshot` into a live registry.

    The additive counterpart of :func:`merge_snapshots` for the
    parallel experiment engine: each worker process runs with its own
    registry and ships a snapshot home, and the parent absorbs them in
    a deterministic order so the merged registry is bit-identical to a
    serial run.

    * counters are summed,
    * gauges take the snapshot's value (last absorb wins),
    * histograms are merged bucket-wise — which requires the snapshot's
      bucket bounds to match any live histogram of the same name.

    Raises
    ------
    ConfigurationError
        On a name registered as a different metric kind, or a histogram
        bucket-layout mismatch.
    """
    for name, data in snapshot.items():
        kind = data.get("type")
        if kind == "counter":
            registry.counter(name).inc(int(data["value"]))
        elif kind == "gauge":
            registry.gauge(name).set(float(data["value"]))
        elif kind == "histogram":
            if int(data["count"]) == 0:
                # Touch the name so it exists (with the snapshot's own
                # bounds, so a later non-empty absorb still matches),
                # but an empty histogram has no min/max worth merging.
                empty_bounds = tuple(float(b)
                                     for b in data.get("buckets", ()))
                registry.histogram(name, empty_bounds or None)
                continue
            buckets = data["buckets"]
            bounds = tuple(float(b) for b in buckets)
            histogram = registry.histogram(name, bounds)
            if histogram.buckets != bounds:
                raise ConfigurationError(
                    f"histogram {name!r}: cannot absorb snapshot with "
                    f"bounds {bounds} into live bounds "
                    f"{histogram.buckets}")
            for index, count in enumerate(buckets.values()):
                histogram.counts[index] += int(count)
            histogram.counts[-1] += int(data["overflow"])
            histogram.count += int(data["count"])
            histogram.total += float(data["total"])
            histogram.min = min(histogram.min, float(data["min"]))
            histogram.max = max(histogram.max, float(data["max"]))
        else:
            raise ConfigurationError(
                f"metric {name!r}: unknown snapshot type {kind!r}")


def merge_snapshots(snapshots: Iterable[Dict[str, Dict[str, object]]]
                    ) -> Dict[str, Dict[str, object]]:
    """Sum counters across snapshots (gauges/histograms keep the last).

    Handy when several harness runs each carried their own registry and
    a report wants fleet-wide totals.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for name, data in snapshot.items():
            existing = merged.get(name)
            if existing is None:
                merged[name] = dict(data)
            elif data.get("type") == "counter" \
                    and existing.get("type") == "counter":
                existing["value"] = int(existing["value"]) \
                    + int(data["value"])
            else:
                merged[name] = dict(data)
    return merged
