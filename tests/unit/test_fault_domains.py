"""Unit tests for the fault-domain extension."""

import numpy as np
import pytest

from repro.core.cubefit import CubeFit, TAG_DOMAIN
from repro.core.tenant import Tenant, make_tenants
from repro.core.validation import audit


def loads(n, lo=0.05, hi=1.0, seed=0):
    rng = np.random.default_rng(seed)
    return list(rng.uniform(lo, hi, n))


class TestDomainsOfCubeBins:
    def test_stage2_bins_tagged_with_group(self):
        algo = CubeFit(gamma=3, num_classes=5, first_stage=False)
        algo.consolidate(make_tenants([0.55] * 27))
        domains = {algo.server_domain(s.server_id)
                   for s in algo.placement if len(s) > 0}
        assert domains == {0, 1, 2}

    def test_pure_stage2_spans_domains_by_construction(self):
        algo = CubeFit(gamma=2, num_classes=5, first_stage=False)
        algo.consolidate(make_tenants(loads(150, lo=0.34)))
        assert algo.domains_respected()


class TestEnforcement:
    @pytest.mark.parametrize("gamma", [2, 3])
    def test_enforced_packing_spans_domains(self, gamma):
        algo = CubeFit(gamma=gamma, num_classes=5,
                       enforce_fault_domains=True)
        algo.consolidate(make_tenants(loads(200, seed=1)))
        assert algo.domains_respected()
        assert audit(algo.placement).ok

    def test_unenforced_first_stage_may_mix_domains(self):
        """Documents why the flag exists: without it, m-fit placements
        can co-locate a tenant's replicas inside one domain."""
        algo = CubeFit(gamma=2, num_classes=5,
                       enforce_fault_domains=False)
        algo.consolidate(make_tenants(loads(400, seed=3)))
        # Not asserting a violation (it depends on the draw), just that
        # the respected-check machinery runs and the packing is robust.
        algo.domains_respected()
        assert audit(algo.placement).ok

    def test_enforcement_costs_at_most_a_few_servers(self):
        plain = CubeFit(gamma=2, num_classes=10)
        plain.consolidate(make_tenants(loads(600, seed=5)))
        fenced = CubeFit(gamma=2, num_classes=10,
                         enforce_fault_domains=True)
        fenced.consolidate(make_tenants(loads(600, seed=5)))
        assert fenced.placement.num_servers <= \
            1.25 * plain.placement.num_servers

    def test_enforced_with_churn(self):
        rng = np.random.default_rng(7)
        algo = CubeFit(gamma=2, num_classes=5,
                       enforce_fault_domains=True)
        alive, tid = [], 0
        for _ in range(200):
            if alive and rng.random() < 0.4:
                algo.remove(alive.pop(0))
            else:
                algo.place(Tenant(tid, float(rng.uniform(0.05, 0.9))))
                alive.append(tid)
                tid += 1
        assert algo.domains_respected()
        assert audit(algo.placement).ok
