"""Numeric solution of Theorem 2's integer program.

Theorem 2 bounds CUBEFIT's competitive ratio by the maximum total weight
``r`` a bin of a *valid robust* packing can carry.  The paper's program
(Section III-A) maximizes, over replica counts ``m_i`` per class and a
tiny-replica volume, the total weight subject to: replica sizes plus the
failover reserve — the combined size of the bin's ``gamma - 1`` largest
replicas — fit in unit capacity.

Reformulation used here (equivalent, exact): enumerate replicas in
increasing class order (decreasing size); the first ``gamma - 1``
replicas are the largest and therefore cost *double* (their size is
consumed once as load, once as reserve).  Class-``i`` replica sizes are
infima ``1/(gamma+i)`` of half-open intervals, so the size constraint is
strict (``< 1``); tiny replicas can be made arbitrarily small, so in the
supremum they contribute nothing to the reserve and fill all remaining
space at the tiny weight density.  The program's supremum is found by
exact branch-and-bound over :class:`fractions.Fraction`.

The paper reports bounds "approach 1.59 and 1.625" for ``gamma = 2, 3``
and large ``K``; :func:`competitive_ratio_upper_bound` reproduces
1.596 and 1.625 around ``K ≈ 210`` (where ``alpha_K = 14``) and the
``K -> ∞`` limits 19/12 ≈ 1.583 and 13/8 = 1.625.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Tuple

from ..core.config import TINY_POLICY_ALPHA
from ..errors import ConfigurationError
from .weights import tiny_weight_density

#: No online algorithm can beat this (Daudjee, Kamali, López-Ortiz, SPAA'14).
ONLINE_LOWER_BOUND = 1.42


@dataclass
class WorstBin:
    """The adversarial bin attaining the competitive-ratio bound."""

    value: Fraction
    #: Replica counts per class (classes with zero replicas omitted).
    counts: Dict[int, int] = field(default_factory=dict)
    #: Volume of tiny replicas filling the remaining space.
    tiny_size: Fraction = Fraction(0)

    def __str__(self) -> str:
        parts = [f"m_{i}={m}" for i, m in sorted(self.counts.items())]
        if self.tiny_size:
            parts.append(f"tiny={self.tiny_size}")
        body = ", ".join(parts) if parts else "empty"
        return f"WorstBin(value={float(self.value):.6f}; {body})"


def competitive_ratio_upper_bound(
        gamma: int, num_classes: int,
        tiny_policy: str = TINY_POLICY_ALPHA) -> WorstBin:
    """Exact supremum of per-bin weight in a valid robust packing.

    Parameters mirror :class:`repro.core.config.CubeFitConfig`.  Returns
    the optimal :class:`WorstBin`; its ``value`` is the competitive-ratio
    upper bound for CUBEFIT with these parameters.
    """
    if gamma < 2:
        raise ConfigurationError(f"gamma must be >= 2, got {gamma}")
    if num_classes < 2:
        raise ConfigurationError(
            f"num_classes must be >= 2, got {num_classes}")
    density = tiny_weight_density(gamma, num_classes, tiny_policy)
    one = Fraction(1)
    reserve_budget = gamma - 1

    best: List[WorstBin] = [WorstBin(value=Fraction(0))]

    def max_density_from(i: int) -> Fraction:
        """Best achievable weight per unit of remaining space using
        classes >= i or tiny replicas (optimistic bound)."""
        if i <= num_classes - 1:
            return max(Fraction(gamma + i, i), density)
        return density

    def recurse(i: int, used: Fraction, reserved: int, weight: Fraction,
                counts: Dict[int, int]) -> None:
        space = one - used
        if i >= num_classes:
            # Discrete classes exhausted: fill the remainder with tiny
            # replicas (supremum: reserve contribution vanishes).
            value = weight + space * density
            if value > best[0].value:
                best[0] = WorstBin(value=value,
                                   counts={k: v for k, v in counts.items()
                                           if v},
                                   tiny_size=space)
            return
        if weight + space * max_density_from(i) <= best[0].value:
            return  # cannot beat the incumbent
        size = Fraction(1, gamma + i)
        m = 0
        while True:
            doubled = max(0, min(m, reserve_budget - reserved))
            cost = (m + doubled) * size
            if m > 0 and used + cost >= one:
                break  # strict inequality required; larger m only worse
            counts[i] = m
            recurse(i + 1, used + cost, reserved + doubled,
                    weight + Fraction(m, i), counts)
            m += 1
        counts.pop(i, None)

    recurse(1, Fraction(0), 0, Fraction(0), {})
    return best[0]


def ratio_sweep(gamma: int, class_counts: List[int],
                tiny_policy: str = TINY_POLICY_ALPHA
                ) -> List[Tuple[int, Fraction]]:
    """Bound as a function of ``K`` (for convergence plots/tables).

    Values of ``K`` for which the tiny policy is undefined are skipped.
    """
    out: List[Tuple[int, Fraction]] = []
    for k in class_counts:
        try:
            out.append((k, competitive_ratio_upper_bound(
                gamma, k, tiny_policy).value))
        except ConfigurationError:
            continue
    return out


def adversarial_sequence(gamma: int, num_classes: int,
                         copies: int,
                         tiny_policy: str = TINY_POLICY_ALPHA,
                         epsilon: float = 1e-4) -> List[float]:
    """Tenant loads realizing Theorem 2's adversarial bin, ``copies``
    times over.

    The competitive-ratio bound is attained by inputs an optimal packer
    can stack into bins matching :func:`competitive_ratio_upper_bound`'s
    :class:`WorstBin`: for each copy, one tenant per counted replica
    class (size just above the class infimum) plus tiny tenants filling
    the residual volume.  Feeding ``copies`` of this multiset to CUBEFIT
    and dividing by the weight lower bound on OPT reproduces the bound
    empirically (``benchmarks/bench_adversarial.py``).

    Replica sizes are converted back to tenant loads (``x * gamma``);
    ``epsilon`` is the "just above the boundary" offset.
    """
    if copies < 1:
        raise ConfigurationError(f"copies must be >= 1, got {copies}")
    worst = competitive_ratio_upper_bound(gamma, num_classes, tiny_policy)
    loads: List[float] = []
    tiny_threshold = 1.0 / (num_classes + gamma - 1)
    # Tiny tenants: a few per copy, comfortably inside class K.
    tiny_replica = tiny_threshold / 3.0
    for _ in range(copies):
        for class_index, count in sorted(worst.counts.items()):
            replica = 1.0 / (gamma + class_index) + epsilon
            loads.extend([replica * gamma] * count)
        remaining = float(worst.tiny_size)
        while remaining > tiny_replica:
            loads.append(tiny_replica * gamma)
            remaining -= tiny_replica
        if remaining > 1e-9:
            loads.append(max(remaining, 1e-6) * gamma)
    return loads


#: The constants Theorem 2 quotes: "The competitive ratio of CUBEFIT
#: with replication factor gamma = 2 and gamma = 3 approach 1.59 and
#: 1.625 respectively for large values of K."  Our exact solver
#: converges to ~1.598 and ~1.636 (see EXPERIMENTS.md for the small
#: discrepancy at gamma = 3: the worst bin m_1=1, m_2=1, m_8=1 already
#: weighs exactly 1.625, and filling its last sliver of space with tiny
#: replicas pushes the exact supremum slightly above the paper's
#: number).
PAPER_RATIOS = {2: 1.59, 3: 1.625}


def paper_reference_ratio(gamma: int) -> float:
    """The bound the paper quotes for this replication factor."""
    try:
        return PAPER_RATIOS[gamma]
    except KeyError:
        raise ConfigurationError(
            f"the paper only reports bounds for gamma in "
            f"{sorted(PAPER_RATIOS)}, got {gamma}") from None
