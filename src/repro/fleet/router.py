"""Deterministic tenant-to-shard routing with spillover.

The :class:`PlacementRouter` decides which shard admits each tenant.
Its decisions depend only on its own bookkeeping — the sum of loads it
has routed to each shard — never on live shard state, which is what
makes fleet runs reproducible: the same admission stream routes the
same way whether shards execute serially, in parallel worker
processes, or have crashed and recovered in between.

Three policies, all deterministic:

``hash``
    ``splitmix64(tenant_id ^ seed) mod shards``.  Stateless and
    history-free: a tenant routes to the same shard no matter what was
    admitted before it.
``least-loaded``
    The shard with the smallest estimated total load; ties break to
    the lowest shard id.
``headroom``
    The shard with the largest estimated *headroom* — its load budget
    (``max_servers * capacity``) minus its estimated load.  Requires a
    budget; falls back to least-loaded on unbounded shards.

Admission is batched: :meth:`submit` parks tenants in a bounded queue
and :meth:`flush` routes the whole batch, returning per-shard groups;
:meth:`stream` drives the same queue over a lazy iterable, yielding
groups batch by batch so an arbitrarily long admission stream never
has more than one batch resident in the router.
Spillover (:meth:`spill_order`) is the router's answer to a shard that
*refused* a placement despite the estimate: siblings are offered the
tenant in deterministic ring order starting after the refusing shard.

Failpoints: ``fleet.route`` fires before a routing decision commits,
``fleet.spill`` before a refused tenant is offered to its first
sibling (see :mod:`repro.faults`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .. import faults
from ..core.tenant import Tenant
from ..errors import ConfigurationError

#: Routing policies, in documentation order.
POLICIES = ("hash", "least-loaded", "headroom")

_MASK64 = (1 << 64) - 1


def stable_hash(value: int, seed: int = 0) -> int:
    """SplitMix64 of ``value ^ seed`` — stable across runs and hosts.

    Python's builtin ``hash`` is salted per process for strings and
    must not leak into routing; this mix is the fleet's only hash.
    """
    z = ((value ^ seed) + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


class PlacementRouter:
    """Routes tenants to shards by a deterministic policy.

    The router never touches a shard: it estimates.  Estimated shard
    load is the sum of admitted tenant loads (single-copy: replication
    multiplies every shard's load equally, so gamma cancels out of
    every comparison).  :meth:`reconcile` rebuilds an estimate from a
    shard's recovered truth after a crash.
    """

    def __init__(self, num_shards: int, policy: str = "hash",
                 seed: int = 0, batch_size: int = 64,
                 load_budget: Optional[float] = None) -> None:
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}")
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; known: {POLICIES}")
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}")
        if policy == "headroom" and load_budget is None:
            raise ConfigurationError(
                "the headroom policy needs load_budget "
                "(max_servers * capacity per shard)")
        if load_budget is not None and load_budget <= 0:
            raise ConfigurationError(
                f"load_budget must be > 0, got {load_budget}")
        self.num_shards = num_shards
        self.policy = policy
        self.seed = seed
        self.batch_size = batch_size
        self.load_budget = load_budget
        #: Estimated total load routed to each shard.
        self.loads: List[float] = [0.0] * num_shards
        #: Tenants routed to each shard (estimate, like loads).
        self.tenants: List[int] = [0] * num_shards
        #: Shards currently marked down (crashed, not yet recovered).
        self.down: set = set()
        self._pending: List[Tenant] = []
        self.routed = 0
        self.spilled = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _candidates(self) -> List[int]:
        up = [s for s in range(self.num_shards) if s not in self.down]
        if not up:
            raise ConfigurationError("every shard is down")
        return up

    def route(self, tenant: Tenant) -> int:
        """Pick the target shard for ``tenant`` (no bookkeeping)."""
        if faults.active():
            faults.fire("fleet.route")
        up = self._candidates()
        if self.policy == "hash":
            target = stable_hash(tenant.tenant_id,
                                 self.seed) % self.num_shards
            if target in self.down:
                # Deterministic detour: next live shard on the ring.
                target = min(up, key=lambda s:
                             (s - target) % self.num_shards)
            return target
        if self.policy == "least-loaded":
            return min(up, key=lambda s: (self.loads[s], s))
        # headroom: most budget left; ties to the lowest shard id.
        return min(up, key=lambda s:
                   (-(self.load_budget - self.loads[s]), s))

    def assign(self, tenant: Tenant) -> int:
        """Route ``tenant`` and record it against the chosen shard."""
        target = self.route(tenant)
        self.record_place(target, tenant.load)
        self.routed += 1
        return target

    def spill_order(self, tenant: Tenant, refused: int) -> Iterator[int]:
        """Sibling shards to offer ``tenant`` after ``refused`` balked.

        Ring order starting after the refusing shard — deterministic,
        independent of load estimates (the estimates were just proven
        wrong about ``refused``).  Fires ``fleet.spill`` once, before
        the first sibling is yielded.
        """
        if faults.active():
            faults.fire("fleet.spill")
        self.spilled += 1
        for step in range(1, self.num_shards):
            sibling = (refused + step) % self.num_shards
            if sibling not in self.down:
                yield sibling

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def record_place(self, shard: int, load: float) -> None:
        self.loads[shard] += load
        self.tenants[shard] += 1

    def record_remove(self, shard: int, load: float) -> None:
        self.loads[shard] = max(0.0, self.loads[shard] - load)
        self.tenants[shard] = max(0, self.tenants[shard] - 1)

    def record_move(self, source: int, target: int, load: float) -> None:
        self.record_remove(source, load)
        self.record_place(target, load)

    def mark_down(self, shard: int) -> None:
        self._check_shard(shard)
        self.down.add(shard)

    def reconcile(self, shard: int, total_load: float,
                  tenants: int) -> None:
        """Replace the estimate for ``shard`` with recovered truth.

        Called when a crashed shard comes back: whatever the router
        believed about it is discarded in favour of the recovered
        placement's actual totals, and the shard is marked live.
        """
        self._check_shard(shard)
        self.loads[shard] = total_load
        self.tenants[shard] = tenants
        self.down.discard(shard)

    def _check_shard(self, shard: int) -> None:
        if not (0 <= shard < self.num_shards):
            raise ConfigurationError(
                f"shard must be in [0, {self.num_shards}), got {shard}")

    # ------------------------------------------------------------------
    # Batched admission
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._pending)

    def submit(self, tenant: Tenant) -> Optional[
            Dict[int, List[Tenant]]]:
        """Queue ``tenant``; route the batch when the queue is full.

        Returns the routed groups (shard id -> tenants, in admission
        order) when this submission filled the batch, else ``None``.
        """
        self._pending.append(tenant)
        if len(self._pending) >= self.batch_size:
            return self.flush()
        return None

    def flush(self) -> Dict[int, List[Tenant]]:
        """Route every queued tenant; return per-shard groups."""
        groups: Dict[int, List[Tenant]] = {}
        batch, self._pending = self._pending, []
        for tenant in batch:
            groups.setdefault(self.assign(tenant), []).append(tenant)
        return groups

    def stream(self, tenants: Iterable[Tenant]
               ) -> Iterator[Dict[int, List[Tenant]]]:
        """Windowed routing: yield per-shard groups batch by batch.

        The bounded-queue replacement for materializing a whole
        admission stream: tenants are drawn from the (possibly lazy)
        iterable one at a time, parked in the batched queue, and
        yielded as routed groups every ``batch_size`` arrivals — at
        most one batch of the stream is ever resident in the router.
        Routing decisions are identical to submitting the same stream
        tenant by tenant (:meth:`submit` / :meth:`flush`), and
        therefore independent of how the caller windows its
        consumption.  The tail batch, if any, is flushed and yielded
        last.
        """
        for tenant in tenants:
            groups = self.submit(tenant)
            if groups:
                yield groups
        tail = self.flush()
        if tail:
            yield tail

    def route_stream(self, tenants: Iterable[Tenant]
                     ) -> List[Tuple[int, Tenant]]:
        """Route a whole admission stream through the batched queue.

        Returns ``(shard, tenant)`` pairs grouped batch by batch; each
        shard's subsequence is in admission order.  Materializes the
        full routed stream — callers that can consume batch by batch
        should iterate :meth:`stream` instead and stay within one
        batch of resident memory.
        """
        routed: List[Tuple[int, Tenant]] = []
        for groups in self.stream(tenants):
            for shard, members in groups.items():
                routed.extend((shard, tenant) for tenant in members)
        return routed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "shards": self.num_shards,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "routed": self.routed,
            "spilled": self.spilled,
            "pending": self.pending,
            "down": sorted(self.down),
            "estimated_loads": [round(x, 9) for x in self.loads],
            "estimated_tenants": list(self.tenants),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PlacementRouter(shards={self.num_shards}, "
                f"policy={self.policy!r}, routed={self.routed})")
