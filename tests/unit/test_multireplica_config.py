"""Unit tests for multi-replica policies and CubeFitConfig."""

import pytest

from repro.core.config import (CubeFitConfig, TINY_POLICY_ALPHA,
                               TINY_POLICY_LAST_CLASS)
from repro.core.multireplica import MultiReplica, MultiReplicaPolicy
from repro.errors import ConfigurationError


class TestConfig:
    def test_defaults(self):
        cfg = CubeFitConfig()
        assert cfg.gamma == 2
        assert cfg.num_classes == 10
        assert cfg.tiny_policy == TINY_POLICY_LAST_CLASS
        assert cfg.first_stage

    @pytest.mark.parametrize("kwargs", [
        dict(gamma=1),
        dict(num_classes=1),
        dict(tiny_policy="bogus"),
        dict(capacity=0.0),
        dict(tiny_policy=TINY_POLICY_ALPHA, num_classes=6),   # K <= g^2+g
        dict(gamma=3, tiny_policy=TINY_POLICY_ALPHA, num_classes=12),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            CubeFitConfig(**kwargs)

    def test_alpha_policy_minimum_k(self):
        # gamma=2: K must be > 6
        CubeFitConfig(tiny_policy=TINY_POLICY_ALPHA, num_classes=7)
        # gamma=3: K must be > 12
        CubeFitConfig(gamma=3, tiny_policy=TINY_POLICY_ALPHA,
                      num_classes=13)


class TestMultiReplicaPolicy:
    def test_last_class_threshold_is_slot_size(self):
        policy = MultiReplicaPolicy(CubeFitConfig(gamma=2, num_classes=10))
        assert policy.target_class == 9
        assert policy.threshold == pytest.approx(1.0 / 10.0)

    def test_alpha_threshold(self):
        policy = MultiReplicaPolicy(CubeFitConfig(
            gamma=2, num_classes=13, tiny_policy=TINY_POLICY_ALPHA))
        # alpha_13 = 3 -> threshold 1/3, target class 3-2+1 = 2
        assert policy.threshold == pytest.approx(1.0 / 3.0)
        assert policy.target_class == 2

    def test_fits(self):
        policy = MultiReplicaPolicy(CubeFitConfig(gamma=2, num_classes=10))
        multi = MultiReplica(server_ids=(0, 1))
        multi.add(0, 0.05)
        assert policy.fits(multi, 0.04)
        assert not policy.fits(multi, 0.06)
        assert not policy.fits(None, 0.01)

    def test_sealed_rejects_fit_and_add(self):
        policy = MultiReplicaPolicy(CubeFitConfig(gamma=2, num_classes=10))
        multi = MultiReplica(server_ids=(0, 1))
        multi.sealed = True
        assert not policy.fits(multi, 0.01)
        with pytest.raises(ConfigurationError):
            multi.add(0, 0.01)

    def test_multireplica_tracks_members(self):
        multi = MultiReplica(server_ids=(0, 1, 2))
        multi.add(5, 0.02)
        multi.add(6, 0.03)
        assert len(multi) == 2
        assert multi.size == pytest.approx(0.05)
        assert multi.tenant_ids == [5, 6]
