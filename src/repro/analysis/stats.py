"""Statistics helpers used by the experiment harnesses.

Implements exactly what the paper reports: means over independent runs,
95% confidence intervals (the whiskers of Figure 6), percentile latencies
(the 99th-percentile SLA of Figures 4-5), and the relative-difference
metric of Section V-C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError

#: Two-sided z value for a 95% confidence interval.
Z_95 = 1.959963984540054

#: Student-t 0.975 quantiles for small sample sizes (df 1..30); falls back
#: to the normal z beyond.  Hard-coded so the package does not require
#: scipy at runtime.
_T_975 = [
    12.7062, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646, 2.3060,
    2.2622, 2.2281, 2.2010, 2.1788, 2.1604, 2.1448, 2.1314, 2.1199,
    2.1098, 2.1009, 2.0930, 2.0860, 2.0796, 2.0739, 2.0687, 2.0639,
    2.0595, 2.0555, 2.0518, 2.0484, 2.0452, 2.0423,
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation; 0 for n < 2."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with a symmetric half-width (95% CI)."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f} (n={self.n})"


def confidence_interval_95(values: Sequence[float]) -> ConfidenceInterval:
    """95% CI of the mean using Student's t for small n."""
    n = len(values)
    if n == 0:
        raise ConfigurationError("confidence interval of empty sequence")
    mu = mean(values)
    if n == 1:
        return ConfidenceInterval(mean=mu, half_width=0.0, n=1)
    t = _T_975[n - 2] if n - 1 <= len(_T_975) else Z_95
    half = t * sample_std(values) / math.sqrt(n)
    return ConfidenceInterval(mean=mu, half_width=half, n=n)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile; ``q`` in [0, 100].

    Matches ``numpy.percentile``'s default behaviour but works on plain
    sequences without allocating arrays (hot path in the latency
    recorder).
    """
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not (0.0 <= q <= 100.0):
        raise ConfigurationError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def p99(values: Sequence[float]) -> float:
    """The paper's SLA metric: the 99th-percentile latency."""
    return percentile(values, 99.0)


def relative_difference_percent(baseline: float, candidate: float) -> float:
    """Section V-C's savings metric: ``(baseline - candidate) / candidate``
    as a percentage.

    With server counts, this is the percentage of *extra* servers the
    baseline (RFI) uses relative to the candidate (CUBEFIT).
    """
    if candidate <= 0:
        raise ConfigurationError(
            f"candidate value must be positive, got {candidate}")
    return (baseline - candidate) / candidate * 100.0
