"""Experiment scale profiles and the paper's scenario definitions.

Every figure/table harness reads its parameters from a
:class:`ScaleProfile`.  The default profile is scaled down so the full
benchmark suite completes in minutes on a laptop; setting the
environment variable ``REPRO_FULL_SCALE=1`` selects the paper's actual
parameters (50,000 tenants x 10 runs; 69 data-store servers;
five-minute warm-up and measurement windows).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..workloads.distributions import (DiscreteUniformClients,
                                       LoadDistribution, NormalizedClients,
                                       UniformLoad, ZipfClients,
                                       DEFAULT_MAX_CLIENTS)

#: Environment variable selecting paper-scale experiments.
FULL_SCALE_ENV = "REPRO_FULL_SCALE"


@dataclass(frozen=True)
class ScaleProfile:
    """Knobs for every experiment, at one scale."""

    name: str
    # Figure 6 / Table I consolidation simulations
    sim_tenants: int
    sim_runs: int
    # Figure 5 cluster experiments
    cluster_servers: int
    cluster_warmup: float
    cluster_measure: float
    # Theorem 2 sweep
    theorem2_max_k: int

    @property
    def tenant_scale(self) -> float:
        """Ratio to the paper's 50,000 tenants (for extrapolating
        Table I's absolute server counts)."""
        return self.sim_tenants / 50_000.0


#: Paper-scale parameters (Section V).
FULL_SCALE = ScaleProfile(
    name="full",
    sim_tenants=50_000,
    sim_runs=10,
    cluster_servers=69,
    cluster_warmup=300.0,
    cluster_measure=300.0,
    theorem2_max_k=240,
)

#: Default laptop-scale parameters: same shapes, ~100x faster.
DEFAULT_SCALE = ScaleProfile(
    name="default",
    sim_tenants=5_000,
    sim_runs=3,
    cluster_servers=23,
    cluster_warmup=30.0,
    cluster_measure=60.0,
    theorem2_max_k=240,
)


def current_scale() -> ScaleProfile:
    """Profile selected by the environment."""
    if os.environ.get(FULL_SCALE_ENV, "").strip() in ("1", "true", "yes"):
        return FULL_SCALE
    return DEFAULT_SCALE


# ---------------------------------------------------------------------------
# Figure 6 distributions: uniform max-loads and zipf exponents.
# ---------------------------------------------------------------------------
FIGURE6_UNIFORM_MAXES: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)
FIGURE6_ZIPF_EXPONENTS: Tuple[float, ...] = (2.0, 3.0, 4.0)


def figure6_distributions() -> List[LoadDistribution]:
    """The x-axis of Figure 6: uniform families then zipfian families."""
    dists: List[LoadDistribution] = [
        UniformLoad(max_load=m) for m in FIGURE6_UNIFORM_MAXES
    ]
    dists.extend(
        NormalizedClients(ZipfClients(exponent=e,
                                      max_clients=DEFAULT_MAX_CLIENTS))
        for e in FIGURE6_ZIPF_EXPONENTS
    )
    return dists


# ---------------------------------------------------------------------------
# Table I distributions: the two populations priced in dollars.
# ---------------------------------------------------------------------------
def table1_distributions() -> Dict[str, LoadDistribution]:
    """Uniform (1..15 clients) and zipfian (exponent 3) populations,
    normalized by the cluster's C = 52 as in Section V-C."""
    return {
        "Uniform": NormalizedClients(DiscreteUniformClients(1, 15),
                                     max_clients=DEFAULT_MAX_CLIENTS),
        "Zipfian": NormalizedClients(ZipfClients(exponent=3.0,
                                                 max_clients=DEFAULT_MAX_CLIENTS),
                                     max_clients=DEFAULT_MAX_CLIENTS),
    }


# ---------------------------------------------------------------------------
# Figure 5 client populations (cluster experiments).
# ---------------------------------------------------------------------------
def figure5_client_distributions() -> Dict[str, object]:
    """Clients/tenant: discrete uniform 1..15 and zipf(3) over 1..52."""
    return {
        "uniform": DiscreteUniformClients(1, 15),
        "zipfian": ZipfClients(exponent=3.0,
                               max_clients=DEFAULT_MAX_CLIENTS),
    }
