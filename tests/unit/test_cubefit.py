"""Behavioural tests for the CUBEFIT algorithm."""

import numpy as np
import pytest

from repro.core.config import CubeFitConfig
from repro.core.cubefit import CubeFit, TAG_CLASS, TAG_MATURE
from repro.core.tenant import make_tenants
from repro.core.validation import (audit, brute_force_audit,
                                   exact_failure_audit, max_shared_tenants)
from repro.errors import ConfigurationError


def consolidate(loads, gamma=2, **kwargs):
    algo = CubeFit(gamma=gamma, **kwargs)
    algo.consolidate(make_tenants(loads))
    return algo


class TestBasics:
    def test_single_tenant_uses_gamma_servers(self):
        algo = consolidate([0.6], gamma=3, num_classes=5)
        assert algo.placement.num_nonempty_servers == 3
        homes = algo.placement.tenant_servers(0)
        assert len(set(homes.values())) == 3

    def test_every_tenant_fully_placed(self, seeded_loads):
        loads = seeded_loads(200, seed=1)
        algo = consolidate(loads, gamma=2, num_classes=10)
        for tid in range(len(loads)):
            assert len(algo.placement.tenant_servers(tid)) == 2

    def test_gamma_config_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            CubeFit(gamma=3, config=CubeFitConfig(gamma=2))

    def test_config_and_kwargs_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            CubeFit(gamma=2, config=CubeFitConfig(gamma=2), num_classes=5)

    def test_describe_includes_stats(self):
        algo = consolidate([0.5, 0.5], num_classes=5)
        info = algo.describe()
        assert info["algorithm"] == "cubefit"
        assert info["K"] == 5
        assert "stats" in info


class TestRobustness:
    """Theorem 1: no bin overloaded under any gamma-1 failures."""

    @pytest.mark.parametrize("gamma,K", [(2, 5), (2, 10), (3, 5), (3, 10)])
    def test_audit_random_uniform(self, gamma, K, seeded_loads):
        loads = seeded_loads(300, 0.001, 1.0, seed=42)
        algo = consolidate(loads, gamma=gamma, num_classes=K)
        report = audit(algo.placement)
        assert report.ok, str(report)
        assert report.min_slack >= -1e-9

    def test_brute_force_agrees_small_instance(self, seeded_loads):
        loads = seeded_loads(25, 0.05, 1.0, seed=7)
        algo = consolidate(loads, gamma=3, num_classes=5)
        assert brute_force_audit(algo.placement).ok
        assert exact_failure_audit(algo.placement).ok

    def test_tiny_only_workload(self):
        loads = [0.02] * 100
        algo = consolidate(loads, gamma=2, num_classes=10)
        assert audit(algo.placement).ok
        assert algo.stats["multireplicas"] >= 1

    def test_large_only_workload(self):
        loads = [0.95] * 40
        algo = consolidate(loads, gamma=2, num_classes=10)
        assert audit(algo.placement).ok
        # class-1 replicas: one data slot per bin
        assert algo.placement.num_nonempty_servers == 80

    def test_mixed_boundary_loads(self):
        # Loads sitting exactly on class boundaries.
        loads = [2 / 3, 0.5, 0.4, 1 / 3, 0.25, 0.2, 1.0, 0.02]
        algo = consolidate(loads, gamma=2, num_classes=5)
        assert brute_force_audit(algo.placement).ok


class TestStructure:
    def test_lemma1_without_first_stage(self, seeded_loads):
        """Pure second-stage, non-tiny packings: any two bins share at
        most one tenant."""
        # all replicas in classes 1..K-1 (avoid multi-replicas)
        loads = seeded_loads(120, 0.34, 1.0, seed=3)
        algo = consolidate(loads, gamma=2, num_classes=5,
                           first_stage=False)
        assert max_shared_tenants(algo.placement) <= 1

    def test_bins_tagged_with_class(self):
        algo = consolidate([0.9, 0.9], gamma=2, num_classes=5,
                           first_stage=False)
        for server in algo.placement:
            if len(server) > 0:
                assert server.tags[TAG_CLASS] == 1

    def test_mature_bins_have_full_slots(self, seeded_loads):
        loads = seeded_loads(60, 0.3, 1.0, seed=5)
        algo = consolidate(loads, gamma=2, num_classes=5)
        for sid in algo.mature_bin_ids():
            server = algo.placement.server(sid)
            assert server.tags["slots_filled"] >= server.tags[TAG_CLASS]
            assert server.tags[TAG_MATURE]

    def test_first_stage_places_smaller_replicas_in_mature_bins(self):
        # Two class-1 tenants make mature bins; a small tenant should
        # then m-fit into them rather than opening new servers.
        algo = CubeFit(gamma=2, num_classes=5)
        algo.consolidate(make_tenants([0.9, 0.9]))
        servers_before = algo.placement.num_nonempty_servers
        algo.consolidate(make_tenants([0.08], start_id=2))
        assert algo.stats["first_stage_tenants"] == 1
        assert algo.placement.num_nonempty_servers == servers_before

    def test_first_stage_disabled(self):
        algo = CubeFit(gamma=2, num_classes=5, first_stage=False)
        algo.consolidate(make_tenants([0.9, 0.9, 0.08]))
        assert algo.stats["first_stage_tenants"] == 0

    def test_same_class_first_stage_restriction(self):
        """By default a replica may not m-fit a bin of its own class."""
        strict = CubeFit(gamma=2, num_classes=5)
        strict.consolidate(make_tenants([0.9] * 6))
        assert strict.stats["first_stage_tenants"] == 0

    def test_stats_partition_tenants(self):
        rng = np.random.default_rng(11)
        loads = list(rng.uniform(0.01, 1.0, 150))
        algo = consolidate(loads, gamma=2, num_classes=10)
        s = algo.stats
        assert (s["first_stage_tenants"] + s["cube_tenants"]
                + s["tiny_tenants"]) == 150


class TestDeterminism:
    def test_same_input_same_packing(self):
        rng = np.random.default_rng(13)
        loads = list(rng.uniform(0.01, 1.0, 100))
        a = consolidate(loads, gamma=2, num_classes=10)
        b = consolidate(loads, gamma=2, num_classes=10)
        assert a.placement.snapshot() == b.placement.snapshot()


class TestTinyPolicies:
    def test_alpha_policy_requires_large_k(self):
        with pytest.raises(ConfigurationError):
            CubeFit(gamma=2, num_classes=6, tiny_policy="alpha")

    def test_alpha_policy_valid_and_robust(self):
        rng = np.random.default_rng(17)
        loads = list(rng.uniform(0.005, 0.15, 150))
        algo = consolidate(loads, gamma=2, num_classes=12,
                           tiny_policy="alpha")
        assert audit(algo.placement).ok
        assert algo.stats["tiny_tenants"] > 0

    def test_last_class_policy_targets_k_minus_1(self):
        algo = CubeFit(gamma=2, num_classes=10)
        assert algo._tiny_policy.target_class == 9

    def test_multireplica_never_exceeds_slot(self):
        rng = np.random.default_rng(19)
        loads = list(rng.uniform(0.005, 0.17, 300))
        algo = consolidate(loads, gamma=2, num_classes=10)
        policy = algo._tiny_policy
        for multi in algo._multireplicas:
            assert multi.size <= policy.threshold + 1e-9
