"""Unit tests for the extension renderers and latency CSV export."""

import xml.etree.ElementTree as ET

import pytest

from repro.cluster.latency import LatencyRecorder
from repro.sim.churn import ChurnConfig, ChurnResult, ChurnSample
from repro.sim.sensitivity import SensitivityCurve, SensitivityPoint
from repro.sim.timing import ScalingStudy, ScalingPoint
from repro.viz import render_churn, render_scaling, render_sensitivity
from repro.errors import ConfigurationError

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(doc):
    return ET.fromstring(doc.to_string().split("\n", 1)[1])


class TestRenderSensitivity:
    def test_renders_curve(self):
        curve = SensitivityCurve(parameter_name="mu",
                                 distribution="uniform(0,0.4]",
                                 tenants=100)
        for mu, servers in ((0.5, 40), (0.85, 35), (1.0, 36)):
            curve.points.append(SensitivityPoint(mu, servers, 0.7))
        root = parse(render_sensitivity(curve))
        assert root.findall(f".//{SVG_NS}polyline")
        assert len(root.findall(f".//{SVG_NS}circle")) == 3

    def test_empty_rejected(self):
        curve = SensitivityCurve("mu", "d", 1)
        with pytest.raises(ConfigurationError):
            render_sensitivity(curve)


class TestRenderChurn:
    def test_two_series(self):
        result = ChurnResult(algorithm="cubefit", config=ChurnConfig())
        for t in (5.0, 10.0, 15.0):
            result.samples.append(ChurnSample(
                time=t, tenants=int(t * 2), servers_nonempty=int(t),
                servers_opened_total=int(t) + 2, utilization=0.6))
        root = parse(render_churn(result))
        assert len(root.findall(f".//{SVG_NS}polyline")) == 2

    def test_empty_rejected(self):
        result = ChurnResult(algorithm="x", config=ChurnConfig())
        with pytest.raises(ConfigurationError):
            render_churn(result)


class TestRenderScaling:
    def test_savings_line(self):
        study = ScalingStudy(distribution="uniform(0,0.3]")
        for n, cube, rfi in ((200, 50, 45), (1000, 180, 210)):
            study.points.append(ScalingPoint("cubefit", n, cube, 0.1,
                                             0.8))
            study.points.append(ScalingPoint("rfi", n, rfi, 0.1, 0.7))
        root = parse(render_scaling(study))
        assert root.findall(f".//{SVG_NS}polyline")

    def test_requires_both_series(self):
        study = ScalingStudy(distribution="d")
        study.points.append(ScalingPoint("cubefit", 100, 10, 0.1, 0.5))
        with pytest.raises(ConfigurationError):
            render_scaling(study)


class TestLatencyCsv:
    def test_csv_contents(self, tmp_path):
        rec = LatencyRecorder()
        rec.record(1.5, tenant_id=3, query_name="Q1", latency=0.25,
                   server_id=7)
        path = tmp_path / "latency.csv"
        text = rec.to_csv(path)
        lines = text.splitlines()
        assert lines[0] == "completed_at,tenant_id,server_id,query,latency"
        assert lines[1] == "1.500000,3,7,Q1,0.250000"
        assert path.read_text() == text

    def test_out_of_window_excluded(self):
        rec = LatencyRecorder(window_start=10.0, window_end=20.0)
        rec.record(5.0, 0, "Q1", 1.0, server_id=0)
        assert len(rec.to_csv().splitlines()) == 1  # header only
