"""Tenant population distributions used in the paper's evaluation.

Two families appear in Section V:

* **client-count distributions** — a tenant is characterized by its
  number of concurrent clients: discrete uniform 1..15 (system
  experiments) or zipfian with exponent 3 over 1..52 (both experiments).
  Client counts become loads either through the linear load model
  ``delta*c + beta`` (cluster experiments) or by normalizing by the
  cluster's per-server client capacity ``C = 52`` (simulations:
  "we sample a zipfian distribution with values 1 to C and divide by C").
* **direct load distributions** — continuous uniform on ``(0, max_load]``
  for ``max_load`` in 0.2 .. 1.0 (Figure 6's x-axis).

All distributions are driven by a ``numpy.random.Generator`` supplied by
the caller, so experiment harnesses control seeding and reproducibility.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

import numpy as np

from ..errors import ConfigurationError

#: The paper's empirically derived per-server client capacity.
DEFAULT_MAX_CLIENTS = 52

#: Smallest load a direct load distribution may emit; loads must be
#: strictly positive.
MIN_LOAD = 1e-6


class LoadDistribution(ABC):
    """Produces tenant loads in ``(0, 1]``."""

    #: Human-readable label used on report axes.
    name: str = "abstract"

    @abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` loads."""

    def sample_one(self, rng: np.random.Generator) -> float:
        return float(self.sample(rng, 1)[0])


class ClientCountDistribution(ABC):
    """Produces integer concurrent-client counts (>= 1)."""

    name: str = "abstract"

    @abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` client counts (dtype int64)."""

    def sample_one(self, rng: np.random.Generator) -> int:
        return int(self.sample(rng, 1)[0])


class UniformLoad(LoadDistribution):
    """Continuous uniform loads on ``(lo, hi]`` (Figure 6)."""

    def __init__(self, max_load: float, min_load: float = MIN_LOAD) -> None:
        if not (0.0 < max_load <= 1.0):
            raise ConfigurationError(
                f"max_load must be in (0, 1], got {max_load}")
        if not (0.0 < min_load <= max_load):
            raise ConfigurationError(
                f"min_load must be in (0, max_load], got {min_load}")
        self.min_load = min_load
        self.max_load = max_load
        self.name = f"uniform(0,{max_load:g}]"

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Half-open on the low side: U[lo, hi) mirrored to (lo, hi].
        draws = rng.uniform(self.min_load, self.max_load, size=n)
        return self.max_load + self.min_load - draws


class DiscreteUniformClients(ClientCountDistribution):
    """Clients/tenant chosen with equiprobability from ``lo..hi``
    (the paper's first system experiment uses 1..15)."""

    def __init__(self, lo: int = 1, hi: int = 15) -> None:
        if not (1 <= lo <= hi):
            raise ConfigurationError(
                f"need 1 <= lo <= hi, got lo={lo}, hi={hi}")
        self.lo = lo
        self.hi = hi
        self.name = f"uniform-clients[{lo},{hi}]"

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.integers(self.lo, self.hi + 1, size=n, dtype=np.int64)


class ZipfClients(ClientCountDistribution):
    """Zipfian client counts over ``1..max_clients``.

    ``P[c = k] ∝ k^-exponent`` — the paper uses exponent 3 with
    ``max_clients = 52``.  (A bounded zipfian, not numpy's unbounded
    ``zipf``, because client counts must not exceed what one server can
    serve.)
    """

    def __init__(self, exponent: float = 3.0,
                 max_clients: int = DEFAULT_MAX_CLIENTS) -> None:
        if exponent <= 0:
            raise ConfigurationError(
                f"exponent must be positive, got {exponent}")
        if max_clients < 1:
            raise ConfigurationError(
                f"max_clients must be >= 1, got {max_clients}")
        self.exponent = exponent
        self.max_clients = max_clients
        self.name = f"zipf({exponent:g})[1,{max_clients}]"
        weights = np.arange(1, max_clients + 1, dtype=np.float64) \
            ** (-exponent)
        self._pmf = weights / weights.sum()
        self._values = np.arange(1, max_clients + 1, dtype=np.int64)

    @property
    def pmf(self) -> np.ndarray:
        """Probability mass over 1..max_clients (copies for safety)."""
        return self._pmf.copy()

    def mean(self) -> float:
        """Expected client count."""
        return float((self._values * self._pmf).sum())

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self._values, size=n, p=self._pmf)


class NormalizedClients(LoadDistribution):
    """Loads obtained by dividing client counts by capacity ``C``.

    This is how Section V-C turns client-count distributions into loads
    in ``(0, 1]`` for the consolidation simulations.
    """

    def __init__(self, clients: ClientCountDistribution,
                 max_clients: int = DEFAULT_MAX_CLIENTS) -> None:
        if max_clients < 1:
            raise ConfigurationError(
                f"max_clients must be >= 1, got {max_clients}")
        self.clients = clients
        self.max_clients = max_clients
        self.name = f"{clients.name}/{max_clients}"

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        counts = self.clients.sample(rng, n)
        loads = counts.astype(np.float64) / self.max_clients
        return np.clip(loads, MIN_LOAD, 1.0)


class ModelLoad(LoadDistribution):
    """Loads obtained from client counts through a linear load model.

    This is the cluster-experiment path: a tenant with ``c`` clients
    places ``delta*c + beta`` load on its server (Section IV).  The model
    object just needs a ``load(clients)`` method
    (:class:`repro.workloads.loadmodel.LinearLoadModel`).
    """

    def __init__(self, clients: ClientCountDistribution, model) -> None:
        self.clients = clients
        self.model = model
        self.name = f"{clients.name}@model"

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        counts = self.clients.sample(rng, n)
        loads = np.array([self.model.load(int(c)) for c in counts],
                         dtype=np.float64)
        return np.clip(loads, MIN_LOAD, 1.0)


class TraceLoads(LoadDistribution):
    """Replays a fixed list of loads (for regression tests and replaying
    recorded experiments); wraps around when exhausted."""

    def __init__(self, loads: List[float], name: str = "trace") -> None:
        if not loads:
            raise ConfigurationError("trace must contain at least one load")
        for load in loads:
            if not (0.0 < load <= 1.0):
                raise ConfigurationError(
                    f"trace loads must be in (0, 1], got {load}")
        self._loads = np.asarray(loads, dtype=np.float64)
        self._cursor = 0
        self.name = name

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        idx = (self._cursor + np.arange(n)) % len(self._loads)
        self._cursor = int((self._cursor + n) % len(self._loads))
        return self._loads[idx]
