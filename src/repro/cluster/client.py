"""Closed-loop tenant clients.

Each tenant runs a number of concurrent client threads that
"independently iterate through the TPC-H queries submitting them to the
[data] system" (Section IV).  A client is a closed loop: think for an
exponentially distributed time, issue the next query of its stream, wait
for completion, repeat.  Closed-loop clients are what make overload
visible as latency: when a server slows down, its clients slow down with
it and response times — not queue lengths — absorb the excess load.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import SimulationError
from ..workloads.tpch import QueryStream
from .engine import Simulator
from .latency import LatencyRecorder
from .routing import ReplicaRouter

#: Mean think time between queries (seconds).
DEFAULT_THINK_MEAN = 0.3


class TenantClient:
    """One client thread of one tenant."""

    def __init__(self, sim: Simulator, client_id: int, tenant_id: int,
                 router: ReplicaRouter, stream: QueryStream,
                 recorder: LatencyRecorder,
                 rng: np.random.Generator,
                 think_mean: float = DEFAULT_THINK_MEAN) -> None:
        if think_mean < 0:
            raise SimulationError(
                f"think_mean must be non-negative, got {think_mean}")
        self.sim = sim
        self.client_id = client_id
        self.tenant_id = tenant_id
        self.router = router
        self.stream = stream
        self.recorder = recorder
        self.rng = rng
        self.think_mean = think_mean
        self.queries_issued = 0
        self._stopped = False

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin the closed loop; a random initial stagger avoids a
        thundering herd at time zero."""
        if initial_delay is None:
            initial_delay = float(self.rng.uniform(0.0,
                                                   max(self.think_mean, 0.1)))
        self.sim.schedule(initial_delay, self._issue)

    def stop(self) -> None:
        """Stop issuing new queries (in-flight ones still complete)."""
        self._stopped = True

    # ------------------------------------------------------------------
    def _issue(self) -> None:
        if self._stopped:
            return
        query = self.stream.next_query()
        self.queries_issued += 1

        def on_complete(latency: Optional[float], server_id: int,
                        name: str = query.template.name) -> None:
            if latency is None:
                self.recorder.record_dropped()
            else:
                self.recorder.record(self.sim.now, self.tenant_id, name,
                                     latency, server_id=server_id)
            self._think()

        self.router.execute(self.tenant_id, query, on_complete)

    def _think(self) -> None:
        if self._stopped:
            return
        if self.think_mean <= 0:
            delay = 0.0
        else:
            delay = float(self.rng.exponential(self.think_mean))
        self.sim.schedule(delay, self._issue)
