"""Workload generation: distributions, sequences, load model, TPC-H-like."""

from .distributions import (LoadDistribution, ClientCountDistribution,
                            UniformLoad, DiscreteUniformClients,
                            ZipfClients, NormalizedClients, ModelLoad,
                            TraceLoads, DEFAULT_MAX_CLIENTS, MIN_LOAD)
from .sequences import (generate_sequence, generate_client_counts,
                        clients_to_sequence)
from .loadmodel import (LinearLoadModel, BoundaryPoint, fit_boundary,
                        DEFAULT_LOAD_MODEL)
from .tpch import (QueryTemplate, QueryStream, QueryExecution,
                   read_templates, update_template, mean_read_demand,
                   UPDATE_FRACTION, DEMAND_SCALE)
from .trace_io import (save_trace, load_trace, save_placement,
                       load_placement)

__all__ = [
    "LoadDistribution", "ClientCountDistribution", "UniformLoad",
    "DiscreteUniformClients", "ZipfClients", "NormalizedClients",
    "ModelLoad", "TraceLoads", "DEFAULT_MAX_CLIENTS", "MIN_LOAD",
    "generate_sequence", "generate_client_counts", "clients_to_sequence",
    "LinearLoadModel", "BoundaryPoint", "fit_boundary",
    "DEFAULT_LOAD_MODEL", "QueryTemplate", "QueryStream",
    "QueryExecution", "read_templates", "update_template",
    "mean_read_demand", "UPDATE_FRACTION", "DEMAND_SCALE",
    "save_trace", "load_trace", "save_placement", "load_placement",
]
