"""CUBEFIT — robust multi-tenant server consolidation (ICDCS 2017 reproduction).

Public API quick tour
---------------------

Packing::

    from repro import CubeFit, RFI, make_tenants, audit

    algo = CubeFit(gamma=3, num_classes=10)
    algo.consolidate(make_tenants([0.6, 0.3, 0.12]))
    audit(algo.placement).raise_if_violated()   # Theorem 1 holds

Workloads::

    from repro.workloads import UniformLoad, generate_sequence
    seq = generate_sequence(UniformLoad(max_load=0.4), n=1000, seed=7)

Experiments (the paper's figures and tables)::

    from repro.sim import figure5, figure6, table1
"""

from ._version import __version__
from .core.tenant import Tenant, Replica, TenantSequence, make_tenants
from .core.placement import PlacementState
from .core.server import Server
from .core.config import CubeFitConfig
from .core.classes import SizeClassifier
from .core.cubefit import CubeFit
from .core.validation import (audit, brute_force_audit, exact_failure_audit,
                              AuditReport)
from .algorithms.base import (OnlinePlacementAlgorithm, make_algorithm,
                              available_algorithms)
from .algorithms.rfi import RFI
from .algorithms.naive import RobustBestFit, RobustFirstFit, RobustNextFit
from .algorithms.lower_bound import (capacity_lower_bound,
                                     weight_lower_bound, best_lower_bound)
from .algorithms.offline import OfflineFirstFitDecreasing, optimal_servers
from .core.recovery import RecoveryPlanner, RecoveryPlan
from .errors import (ReproError, ConfigurationError, PlacementError,
                     CapacityError, RobustnessViolation, SimulationError,
                     CalibrationError, FaultInjected, SimulatedCrash)
from . import faults

__all__ = [
    "__version__",
    # core model
    "Tenant", "Replica", "TenantSequence", "make_tenants",
    "PlacementState", "Server", "SizeClassifier",
    # algorithms
    "CubeFit", "CubeFitConfig", "RFI",
    "RobustBestFit", "RobustFirstFit", "RobustNextFit",
    "OnlinePlacementAlgorithm", "make_algorithm", "available_algorithms",
    # validation
    "audit", "brute_force_audit", "exact_failure_audit", "AuditReport",
    # bounds and offline solvers
    "capacity_lower_bound", "weight_lower_bound", "best_lower_bound",
    "OfflineFirstFitDecreasing", "optimal_servers",
    # recovery
    "RecoveryPlanner", "RecoveryPlan",
    # errors
    "ReproError", "ConfigurationError", "PlacementError", "CapacityError",
    "RobustnessViolation", "SimulationError", "CalibrationError",
    "FaultInjected", "SimulatedCrash",
    # fault injection
    "faults",
]
