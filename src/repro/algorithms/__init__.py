"""Placement algorithms: CUBEFIT lives in repro.core; baselines here."""

from .base import (OnlinePlacementAlgorithm, ServerIndex, register,
                   make_algorithm, available_algorithms,
                   exact_robust_after_placement,
                   robust_after_placement, worst_shared_sum)
from .rfi import RFI, DEFAULT_MU
from .naive import RobustBestFit, RobustFirstFit, RobustNextFit
from .lower_bound import (capacity_lower_bound, weight_lower_bound,
                          best_lower_bound)
from .offline import OfflineFirstFitDecreasing, optimal_servers
from .repack import Repacker, RepackPlan, TenantMigration
from .mixed import MixedGammaFirstFit

# NOTE: CubeFit lives in repro.core.cubefit (it *is* the paper's core
# contribution) and registers itself with this package's registry when
# imported; `import repro` performs that import, so
# make_algorithm("cubefit", ...) always works after importing the
# top-level package.  It is not re-exported here to avoid a circular
# import between repro.core and repro.algorithms.

__all__ = [
    "OnlinePlacementAlgorithm", "ServerIndex", "register",
    "make_algorithm", "available_algorithms", "robust_after_placement",
    "exact_robust_after_placement",
    "worst_shared_sum", "RFI", "DEFAULT_MU", "RobustBestFit",
    "RobustFirstFit", "RobustNextFit", "capacity_lower_bound",
    "weight_lower_bound", "best_lower_bound",
    "OfflineFirstFitDecreasing", "optimal_servers",
    "Repacker", "RepackPlan", "TenantMigration", "MixedGammaFirstFit",
]
