"""Unit tests for replica routing and failover."""

import pytest

from repro.cluster.datastore import DataStore
from repro.cluster.engine import Simulator
from repro.cluster.machine import Machine
from repro.cluster.routing import ReplicaRouter
from repro.errors import SimulationError
from repro.workloads.tpch import QueryExecution, QueryTemplate


READ = QueryTemplate(name="R", mean_demand=1.0)
UPDATE = QueryTemplate(name="W", mean_demand=1.0, is_update=True)


def build(homes, cores=4, cold_penalty=1.0):
    sim = Simulator()
    machine_ids = sorted({m for hs in homes.values() for m in hs})
    machines = {mid: Machine(sim, mid, cores=cores) for mid in machine_ids}
    store = DataStore(cold_penalty=cold_penalty, warm_after=0)
    router = ReplicaRouter(sim, machines, homes, store)
    return sim, machines, router


def read(demand=1.0):
    return QueryExecution(template=READ, demand=demand)


def update(demand=1.0):
    return QueryExecution(template=UPDATE, demand=demand)


class TestReads:
    def test_round_robin_across_replicas(self):
        sim, machines, router = build({0: [0, 1]})
        servers = []
        for _ in range(4):
            router.execute(0, read(),
                           lambda lat, sid: servers.append(sid))
        sim.run_until(10.0)
        assert sorted(servers) == [0, 0, 1, 1]

    def test_latency_reported(self):
        sim, machines, router = build({0: [0]})
        out = []
        router.execute(0, read(2.0), lambda lat, sid: out.append(lat))
        sim.run_until(10.0)
        assert out == [pytest.approx(2.0)]

    def test_unknown_tenant(self):
        sim, machines, router = build({0: [0]})
        with pytest.raises(SimulationError):
            router.execute(99, read(), lambda lat, sid: None)


class TestUpdates:
    def test_update_fans_out_to_all_replicas(self):
        sim, machines, router = build({0: [0, 1, 2]})
        out = []
        router.execute(0, update(1.0), lambda lat, sid: out.append(lat))
        sim.run_until(10.0)
        assert len(out) == 1
        for mid in (0, 1, 2):
            assert machines[mid].completed_jobs == 1

    def test_update_latency_is_slowest_replica(self):
        sim, machines, router = build({0: [0, 1]}, cores=1)
        # Preload machine 1 so its copy of the update finishes later.
        machines[1].submit(3.0, lambda: None)
        out = []
        router.execute(0, update(1.0), lambda lat, sid: out.append(lat))
        sim.run_until(20.0)
        assert out[0] == pytest.approx(2.0)  # shared at rate 1/2 until 2


class TestFailover:
    def test_reads_route_around_failed_server(self):
        sim, machines, router = build({0: [0, 1]})
        router.fail_machine(0)
        servers = []
        for _ in range(3):
            router.execute(0, read(), lambda lat, sid: servers.append(sid))
        sim.run_until(10.0)
        assert servers == [1, 1, 1]

    def test_inflight_read_reissued_on_failure(self):
        sim, machines, router = build({0: [0, 1]})
        out = []
        router.execute(0, read(5.0), lambda lat, sid: out.append((lat, sid)))
        first_target = 0 if machines[0].active_jobs else 1
        sim.schedule(1.0, lambda: router.fail_machine(first_target))
        sim.run_until(20.0)
        # Re-executed on the survivor: total latency 1 (wasted) + 5.
        assert out[0][0] == pytest.approx(6.0)
        assert router.reissued == 1

    def test_no_surviving_replica_reports_none(self):
        sim, machines, router = build({0: [0, 1]})
        router.fail_machine(0)
        router.fail_machine(1)
        out = []
        router.execute(0, read(), lambda lat, sid: out.append((lat, sid)))
        assert out == [(None, -1)]
        assert router.unavailable == 1

    def test_update_part_lost_completes_with_survivors(self):
        sim, machines, router = build({0: [0, 1]}, cores=1)
        # Slow down machine 1 so the update's copy there is still
        # running when machine 1 fails.
        machines[1].submit(10.0, lambda: None)
        out = []
        router.execute(0, update(1.0), lambda lat, sid: out.append(lat))
        sim.schedule(2.0, lambda: router.fail_machine(1))
        sim.run_until(30.0)
        assert len(out) == 1
        assert out[0] is not None

    def test_fail_machine_idempotent(self):
        sim, machines, router = build({0: [0, 1]})
        assert router.fail_machine(0) == 0  # nothing in flight
        assert router.fail_machine(0) == 0

    def test_alive_homes(self):
        sim, machines, router = build({0: [0, 1]})
        assert router.alive_homes(0) == [0, 1]
        router.fail_machine(1)
        assert router.alive_homes(0) == [0]


class TestDataStoreIntegration:
    def test_cold_queries_cost_more(self):
        sim = Simulator()
        machines = {0: Machine(sim, 0, cores=1)}
        store = DataStore(cold_penalty=3.0, warm_after=1)
        router = ReplicaRouter(sim, machines, {0: [0]}, store)
        out = []
        router.execute(0, read(1.0), lambda lat, sid: out.append(lat))
        sim.run_until(10.0)
        router.execute(0, read(1.0), lambda lat, sid: out.append(lat))
        sim.run_until(20.0)
        assert out[0] == pytest.approx(3.0)  # cold
        assert out[1] == pytest.approx(1.0)  # warm


class TestValidation:
    def test_unknown_machine_rejected(self):
        sim = Simulator()
        machines = {0: Machine(sim, 0)}
        with pytest.raises(SimulationError):
            ReplicaRouter(sim, machines, {0: [0, 5]})

    def test_empty_homes_rejected(self):
        sim = Simulator()
        machines = {0: Machine(sim, 0)}
        with pytest.raises(SimulationError):
            ReplicaRouter(sim, machines, {0: []})


class TestQueryConservation:
    """completed + dropped + inflight must exactly equal issued.

    The regression: ``total_inflight`` used to count machine-level
    *parts*, so an update fanned out to several replicas (or a read
    re-issued after a failure) was accounted more than once.
    """

    def test_update_fanout_counts_as_one_inflight_query(self):
        sim, machines, router = build({0: [0, 1, 2]}, cores=1)
        done = []
        router.execute(0, update(5.0), lambda lat, sid: done.append(lat))
        sim.run_until(1.0)  # all three parts still executing
        assert router.total_inflight() == 1
        sim.run_until(30.0)
        assert router.total_inflight() == 0
        assert len(done) == 1

    def test_reissued_read_counts_as_one_inflight_query(self):
        sim, machines, router = build({0: [0, 1]}, cores=1)
        # Congest machine 1 so the re-issued read is still running when
        # the clock stops.
        machines[1].submit(50.0, lambda: None)
        done = []
        router.execute(0, read(5.0), lambda lat, sid: done.append(lat))
        sim.schedule(1.0, lambda: router.fail_machine(0))
        sim.run_until(10.0)
        assert router.reissued == 1
        # One query issued: it is either still in flight or completed,
        # never both.
        assert len(done) + router.total_inflight() == 1

    def test_conservation_on_falsifying_topology(self):
        """Deterministic re-run of the Hypothesis counterexample:
        five machines, a solo-replica tenant, and a mid-flight failure
        of machine 3 at t=19.27 while tenant 0's update is fanned out
        to machines 0 and 1."""
        import numpy as np

        from repro.cluster.client import TenantClient
        from repro.cluster.latency import LatencyRecorder
        from repro.workloads.tpch import QueryStream

        homes = {0: [0, 1], 1: [2], 2: [3], 3: [0], 4: [1]}
        sim = Simulator()
        machines = {m: Machine(sim, m, cores=2) for m in range(5)}
        router = ReplicaRouter(sim, machines, homes,
                               DataStore(warm_after=0))
        recorder = LatencyRecorder()
        rng = np.random.default_rng(72)
        clients = []
        for tid in homes:
            client = TenantClient(sim, tid, tenant_id=tid, router=router,
                                  stream=QueryStream(rng),
                                  recorder=recorder, rng=rng,
                                  think_mean=0.2)
            client.start(initial_delay=0.0)
            clients.append(client)
        sim.schedule_at(19.272030000369934,
                        lambda: router.fail_machine(3))
        sim.run_until(30.0)

        issued = sum(c.queries_issued for c in clients)
        accounted = (recorder.total_completed + recorder.dropped
                     + router.total_inflight())
        assert accounted == issued, (
            f"issued={issued} completed={recorder.total_completed} "
            f"dropped={recorder.dropped} "
            f"inflight={router.total_inflight()}")
