"""Unit tests for repro.core.tenant."""

import pytest

from repro.core.tenant import Tenant, Replica, TenantSequence, make_tenants
from repro.errors import ConfigurationError


class TestTenant:
    def test_valid_construction(self):
        t = Tenant(tenant_id=3, load=0.5)
        assert t.tenant_id == 3
        assert t.load == 0.5

    def test_load_of_one_is_allowed(self):
        assert Tenant(tenant_id=0, load=1.0).load == 1.0

    @pytest.mark.parametrize("load", [0.0, -0.1, 1.5])
    def test_invalid_load_rejected(self, load):
        with pytest.raises(ConfigurationError):
            Tenant(tenant_id=0, load=load)

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Tenant(tenant_id=-1, load=0.5)

    @pytest.mark.parametrize("gamma", [2, 3, 4])
    def test_replica_load_is_equal_split(self, gamma):
        t = Tenant(tenant_id=0, load=0.6)
        assert t.replica_load(gamma) == pytest.approx(0.6 / gamma)

    def test_replicas_materialization(self):
        t = Tenant(tenant_id=7, load=0.9)
        replicas = t.replicas(3)
        assert len(replicas) == 3
        assert [r.index for r in replicas] == [0, 1, 2]
        assert all(r.tenant_id == 7 for r in replicas)
        assert sum(r.load for r in replicas) == pytest.approx(0.9)

    def test_tenant_is_hashable_and_frozen(self):
        t = Tenant(tenant_id=0, load=0.5)
        assert hash(t) == hash(Tenant(tenant_id=0, load=0.5))
        with pytest.raises(AttributeError):
            t.load = 0.7


class TestReplica:
    def test_key_identity(self):
        r = Replica(tenant_id=4, index=1, load=0.2)
        assert r.key == (4, 1)

    def test_invalid_index_rejected(self):
        with pytest.raises(ConfigurationError):
            Replica(tenant_id=0, index=-1, load=0.2)

    def test_non_positive_load_rejected(self):
        with pytest.raises(ConfigurationError):
            Replica(tenant_id=0, index=0, load=0.0)


class TestTenantSequence:
    def test_iteration_and_len(self):
        seq = TenantSequence(tenants=make_tenants([0.1, 0.2, 0.3]))
        assert len(seq) == 3
        assert [t.load for t in seq] == [0.1, 0.2, 0.3]
        assert seq[1].load == 0.2

    def test_total_load(self):
        seq = TenantSequence(tenants=make_tenants([0.25, 0.25]))
        assert seq.total_load == pytest.approx(0.5)

    def test_loads_in_arrival_order(self):
        seq = TenantSequence(tenants=make_tenants([0.9, 0.1]))
        assert seq.loads == [0.9, 0.1]


class TestMakeTenants:
    def test_sequential_ids(self):
        tenants = make_tenants([0.5, 0.5], start_id=10)
        assert [t.tenant_id for t in tenants] == [10, 11]

    def test_empty_is_fine(self):
        assert make_tenants([]) == []
