"""Regression tests for the mixed-gamma placement path.

The load-bearing property: :class:`MixedGammaFirstFit` under an
all-equal plan is *bit-identical* to :class:`RobustFirstFit` — same
packing fingerprint, same observability journal — so the mixed path is
provably the single-gamma path plus a per-tenant lookup, not a fork
that can drift.
"""

import pytest

from repro.algorithms.mixed import MixedGammaFirstFit
from repro.algorithms.naive import RobustFirstFit
from repro.analysis.sla import SlaPolicy, gamma_map
from repro.core.tenant import Tenant
from repro.core.validation import audit, brute_force_audit
from repro.errors import ConfigurationError
from repro.obs import EventJournal, MetricsRegistry


def _tenants(seed, n=40, high=0.6):
    import random
    rng = random.Random(seed)
    return [Tenant(tenant_id=i, load=round(rng.uniform(0.05, high), 2))
            for i in range(n)]


def _journal_events(journal):
    # Drop wall-clock durations: identity is about decisions, not time.
    return [(e.type, {k: v for k, v in e.data.items()
                      if k != "seconds"}) for e in journal]


class TestAllEqualPlanBitIdentity:
    @pytest.mark.parametrize("gamma", [1, 2, 3])
    def test_matches_single_gamma_path_exactly(self, gamma):
        tenants = _tenants(seed=11)
        single_journal, mixed_journal = EventJournal(), EventJournal()
        single = RobustFirstFit(gamma=gamma)
        single.attach_obs(MetricsRegistry(journal=single_journal))
        mixed = MixedGammaFirstFit({t.tenant_id: gamma for t in tenants},
                                   gamma=gamma)
        mixed.attach_obs(MetricsRegistry(journal=mixed_journal))
        for tenant in tenants:
            single.place(tenant)
            mixed.place(tenant)
        assert mixed.placement.snapshot() == single.placement.snapshot()
        assert _journal_events(mixed_journal) == \
            _journal_events(single_journal)
        assert mixed.failures == single.failures


class TestMixedPlans:
    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_audits_clean_under_per_tenant_budgets(self, seed):
        tenants = _tenants(seed=seed, n=30)
        plan = {t.tenant_id: 1 + t.tenant_id % 3 for t in tenants}
        algo = MixedGammaFirstFit(plan, gamma=2)
        assert algo.failures == 2  # max plan gamma - 1
        for tenant in tenants:
            servers = algo.place(tenant)
            assert len(servers) == plan[tenant.tenant_id]
            assert len(set(servers)) == len(servers)
        assert audit(algo.placement, failures=algo.failures).ok
        assert brute_force_audit(algo.placement,
                                 failures=algo.failures).ok

    def test_gamma_map_plan_end_to_end(self):
        # Loads spanning the SLA regimes produce a genuinely mixed
        # plan; the packing still audits clean at the worst budget.
        tenants = [Tenant(tenant_id=i, load=load) for i, load in
                   enumerate([0.1, 0.2, 0.55, 0.8, 0.85, 0.3])]
        plan = gamma_map(tenants, 0.01,
                         SlaPolicy(failure_prob=0.05, overload=0.75))
        assert len(set(plan.values())) > 1
        algo = MixedGammaFirstFit(plan, gamma=2)
        for tenant in tenants:
            algo.place(tenant)
        assert audit(algo.placement, failures=algo.failures).ok

    def test_unplanned_tenant_uses_default_gamma(self):
        algo = MixedGammaFirstFit({0: 3}, gamma=2)
        assert algo.tenant_gamma(0) == 3
        assert algo.tenant_gamma(99) == 2
        servers = algo.place(Tenant(tenant_id=99, load=0.4))
        assert len(servers) == 2

    def test_remove_round_trip(self):
        algo = MixedGammaFirstFit({0: 3, 1: 1}, gamma=2)
        algo.place(Tenant(tenant_id=0, load=0.3))
        algo.place(Tenant(tenant_id=1, load=0.5))
        algo.remove(0)
        assert algo.placement.num_tenants == 1
        assert audit(algo.placement, failures=algo.failures).ok

    def test_describe_reports_plan_shape(self):
        algo = MixedGammaFirstFit({0: 1, 1: 3, 2: 3}, gamma=2)
        info = algo.describe()
        assert info["algorithm"] == "mixed-firstfit"
        assert info["plan_tenants"] == 3
        assert info["plan_gammas"] == [1, 3]
        assert info["failures"] == 2


class TestValidation:
    def test_bad_plan_gamma_rejected(self):
        with pytest.raises(ConfigurationError, match="must be >= 1"):
            MixedGammaFirstFit({0: 0})

    def test_explicit_failures_override(self):
        algo = MixedGammaFirstFit({0: 3}, gamma=2, failures=1)
        assert algo.failures == 1

    def test_refuses_durable_store(self):
        algo = MixedGammaFirstFit({0: 3}, gamma=2)
        with pytest.raises(ConfigurationError, match="durable store"):
            algo.attach_store(object())
        algo.attach_store(None)  # detaching is always allowed
        assert algo.store is None
