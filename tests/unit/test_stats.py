"""Unit tests for the statistics helpers."""

import pytest

from repro.analysis.stats import (ConfidenceInterval, confidence_interval_95,
                                  mean, p99, percentile,
                                  relative_difference_percent, sample_std)
from repro.errors import ConfigurationError


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_empty_raises(self):
        with pytest.raises(ConfigurationError):
            mean([])

    def test_sample_std(self):
        assert sample_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == \
            pytest.approx(2.138, abs=1e-3)

    def test_sample_std_single_value(self):
        assert sample_std([5.0]) == 0.0


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_matches_numpy(self):
        import numpy as np
        rng = np.random.default_rng(0)
        values = list(rng.uniform(0, 10, 101))
        for q in (1, 25, 50, 75, 99):
            assert percentile(values, q) == \
                pytest.approx(float(np.percentile(values, q)))

    def test_p99(self):
        values = list(range(1, 101))
        assert p99(values) == pytest.approx(99.01)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)


class TestConfidenceInterval:
    def test_single_sample_has_zero_width(self):
        ci = confidence_interval_95([4.0])
        assert ci.mean == 4.0
        assert ci.half_width == 0.0

    def test_contains_mean(self):
        ci = confidence_interval_95([1.0, 2.0, 3.0])
        assert ci.low <= 2.0 <= ci.high

    def test_uses_student_t_for_small_n(self):
        # n=2, std = sqrt(0.5)... known t(1, .975) = 12.7062
        ci = confidence_interval_95([0.0, 1.0])
        expected = 12.7062 * sample_std([0.0, 1.0]) / (2 ** 0.5)
        assert ci.half_width == pytest.approx(expected, rel=1e-4)

    def test_width_shrinks_with_n(self):
        narrow = confidence_interval_95([1.0, 2.0] * 10)
        wide = confidence_interval_95([1.0, 2.0])
        assert narrow.half_width < wide.half_width

    def test_str(self):
        assert "±" in str(confidence_interval_95([1.0, 2.0]))

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            confidence_interval_95([])


class TestRelativeDifference:
    def test_figure6_metric(self):
        # (RFI - CubeFit) / CubeFit * 100
        assert relative_difference_percent(130.0, 100.0) == pytest.approx(30.0)

    def test_negative_when_candidate_worse(self):
        assert relative_difference_percent(90.0, 100.0) == pytest.approx(-10.0)

    def test_zero_candidate_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_difference_percent(10.0, 0.0)
