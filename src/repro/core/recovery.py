"""Re-replication after server failures.

The paper's model reserves capacity so that the SLA holds *while* some
servers are down; a real deployment then restores the replication
factor by re-creating the lost replicas on healthy servers (cf. AWS RDS
re-replication, the paper's footnote 1).  This module plans that
recovery:

* every replica hosted on a failed server is relocated to a healthy
  server that does not already host the tenant,
* each relocation must keep the packing robust for the configured
  failure budget (the same exact shared-load feasibility the placement
  algorithms use),
* relocations are ordered largest-replica-first (hardest to place) and
  target the fullest feasible server (Best Fit); new servers are opened
  only when no healthy server fits.

The planner mutates the placement it is given (the failed servers end
up empty) and returns a :class:`RecoveryPlan` describing every move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

from ..algorithms.base import robust_after_placement
from ..errors import ConfigurationError
from .placement import PlacementState
from .tenant import Replica

ReplicaKey = Tuple[int, int]


@dataclass(frozen=True)
class ReplicaMove:
    """One relocated replica."""

    tenant_id: int
    replica_index: int
    load: float
    source: int
    target: int
    opened_new_server: bool


@dataclass
class RecoveryPlan:
    """Outcome of a recovery pass."""

    failed: Tuple[int, ...]
    moves: List[ReplicaMove] = field(default_factory=list)
    servers_opened: int = 0

    @property
    def replicas_relocated(self) -> int:
        return len(self.moves)

    @property
    def load_relocated(self) -> float:
        return sum(m.load for m in self.moves)

    def __str__(self) -> str:
        return (f"RecoveryPlan(failed={list(self.failed)}, "
                f"relocated={self.replicas_relocated} replicas / "
                f"{self.load_relocated:.3f} load, "
                f"opened={self.servers_opened} new servers)")


class RecoveryPlanner:
    """Plans and applies re-replication after failures.

    Pass ``obs`` (a :class:`~repro.obs.MetricsRegistry`) to emit one
    ``recovery_move`` journal event per relocated replica plus move
    counters, relocated-load histograms, and a ``span.recovery.seconds``
    timing of the whole pass.
    """

    def __init__(self, placement: PlacementState,
                 failures: Optional[int] = None,
                 obs=None) -> None:
        self.placement = placement
        self.failures = placement.gamma - 1 if failures is None \
            else failures
        if self.failures < 0:
            raise ConfigurationError(
                f"failures must be non-negative, got {self.failures}")
        from ..obs import active
        self._obs = active(obs)

    def recover(self, failed: Iterable[int]) -> RecoveryPlan:
        """Relocate every replica off the ``failed`` servers.

        The failed servers stay in the placement (empty) so ids remain
        stable, but they receive no replicas; they are also excluded
        from the robustness consideration of *other* servers only in
        the sense that having no replicas they can no longer overload
        anyone.
        """
        obs = self._obs
        if obs is None:
            return self._recover(failed, None)
        from ..obs import span
        with span("recovery", registry=obs):
            return self._recover(failed, obs)

    def _recover(self, failed: Iterable[int], obs) -> RecoveryPlan:
        failed_set = self._validate(failed)
        plan = RecoveryPlan(failed=tuple(sorted(failed_set)))
        victims = self._victims(failed_set)
        # Largest replicas first: hardest to re-fit, and placing them
        # early keeps Best Fit effective for the rest.
        victims.sort(key=lambda item: -item[1].load)
        for source, replica in victims:
            self.placement.unplace(replica.key, source)
            target, opened = self._find_target(replica, failed_set)
            self.placement.place(replica, target)
            plan.moves.append(ReplicaMove(
                tenant_id=replica.tenant_id,
                replica_index=replica.index,
                load=replica.load, source=source, target=target,
                opened_new_server=opened))
            if opened:
                plan.servers_opened += 1
            if obs is not None:
                obs.counter("recovery.moves").inc()
                obs.histogram("recovery.move_load").observe(replica.load)
                if opened:
                    obs.counter("recovery.servers_opened").inc()
                obs.emit("recovery_move", tenant=replica.tenant_id,
                         replica=replica.index, load=replica.load,
                         source=source, target=target, opened=opened)
        return plan

    # ------------------------------------------------------------------
    def _validate(self, failed: Iterable[int]) -> Set[int]:
        failed_set = set(failed)
        for sid in failed_set:
            self.placement.server(sid)  # raises on unknown ids
        healthy = set(self.placement.server_ids) - failed_set
        if not healthy and failed_set:
            # Recovery can still proceed: new servers will be opened.
            pass
        return failed_set

    def _victims(self, failed_set: Set[int]
                 ) -> List[Tuple[int, Replica]]:
        victims: List[Tuple[int, Replica]] = []
        for sid in failed_set:
            server = self.placement.server(sid)
            victims.extend((sid, replica) for replica in list(server))
        return victims

    def _find_target(self, replica: Replica,
                     failed_set: Set[int]) -> Tuple[int, bool]:
        """Fullest healthy feasible server, or a fresh one.

        Servers carrying a ``mature: False`` tag are skipped: CUBEFIT's
        immature bins have unfilled slots whose space the cube
        machinery will hand to future second-stage tenants *without*
        re-checking — an outsider replica there would be invisible to
        that structural guarantee.  Mature bins (and servers of
        algorithms that do not tag) only ever admit exactly-checked
        placements, so they are fair game.
        """
        sibling_homes = set(
            self.placement.tenant_servers(replica.tenant_id).values())
        candidates = [
            s for s in self.placement.servers
            if s.server_id not in failed_set
            and s.server_id not in sibling_homes
            and s.tags.get("mature", True)
            and s.capacity - s.load >= replica.load - 1e-12
        ]
        candidates.sort(key=lambda s: (-s.load, s.server_id))
        chosen = sorted(sibling_homes)
        for server in candidates:
            if robust_after_placement(self.placement, server.server_id,
                                      replica.load, chosen,
                                      failures=self.failures,
                                      obs=self._obs):
                return server.server_id, False
        fresh = self.placement.open_server()
        return fresh.server_id, True
