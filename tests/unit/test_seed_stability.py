"""Pinned-seed stability snapshots for the workload generators.

Every experiment in the repo hangs off "same seed, same workload": the
paired Figure 6 comparisons, the chaos harness's repro lines, and the
parallel engine's per-item seed derivation all assume a given seed
produces byte-identical draws forever.  These tests pin the actual
values, so any change to a sampling implementation — reordering rng
calls, switching a distribution's algorithm, touching normalization —
fails loudly instead of silently invalidating recorded results.

If one of these fails, the generator's output stream changed.  That is
a compatibility break for saved traces and published repro lines; only
update the constants as a deliberate, documented decision (see
docs/testing.md).
"""

import hashlib

import pytest

from repro.par.pool import derive_seed
from repro.workloads.distributions import (DiscreteUniformClients,
                                           NormalizedClients, UniformLoad,
                                           ZipfClients)
from repro.workloads.sequences import (generate_client_counts,
                                       generate_sequence)
from repro.workloads.trace_io import load_trace, save_trace

SEED = 53


def _digest(values):
    payload = ",".join(f"{v:.12e}" for v in values)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class TestDistributionSnapshots:
    def test_uniform_load_sequence_is_pinned(self):
        seq = generate_sequence(UniformLoad(0.9), 50, seed=SEED)
        assert [round(t.load, 12) for t in seq.tenants[:3]] == [
            0.889985716019, 0.25298113052, 0.601985859091]
        assert _digest(t.load for t in seq.tenants) == "90f39e4d50532d54"
        assert seq.seed == SEED
        assert [t.tenant_id for t in seq.tenants] == list(range(50))

    def test_zipf_client_counts_are_pinned(self):
        counts = generate_client_counts(ZipfClients(), 40, seed=SEED)
        assert counts.tolist() == [
            1, 1, 1, 2, 1, 1, 1, 1, 15, 1, 1, 1, 1, 1, 1, 1, 2, 1, 1,
            1, 1, 1, 1, 1, 2, 1, 1, 2, 7, 1, 1, 2, 1, 5, 1, 1, 1, 1,
            1, 1]

    def test_discrete_uniform_client_counts_are_pinned(self):
        counts = generate_client_counts(DiscreteUniformClients(), 12,
                                        seed=SEED)
        assert counts.tolist() == [12, 1, 11, 11, 13, 5, 8, 14, 6, 2,
                                   2, 10]

    def test_normalized_zipf_sequence_is_pinned(self):
        seq = generate_sequence(NormalizedClients(ZipfClients()), 50,
                                seed=SEED)
        assert _digest(t.load for t in seq.tenants) == "e23e975304fe955b"

    def test_same_seed_same_sequence_fresh_objects(self):
        """Distribution objects hold no hidden rng state: two fresh
        pipelines with the same seed agree exactly."""
        first = generate_sequence(NormalizedClients(ZipfClients()), 30,
                                  seed=7)
        second = generate_sequence(NormalizedClients(ZipfClients()), 30,
                                   seed=7)
        assert [t.load for t in first.tenants] \
            == [t.load for t in second.tenants]

    def test_different_seeds_differ(self):
        a = generate_sequence(UniformLoad(0.9), 30, seed=1)
        b = generate_sequence(UniformLoad(0.9), 30, seed=2)
        assert [t.load for t in a.tenants] != [t.load for t in b.tenants]


class TestTraceIoStability:
    def test_save_is_byte_deterministic(self, tmp_path):
        seq = generate_sequence(UniformLoad(0.9), 25, seed=SEED)
        save_trace(seq, tmp_path / "a.json")
        save_trace(seq, tmp_path / "b.json")
        assert (tmp_path / "a.json").read_bytes() \
            == (tmp_path / "b.json").read_bytes()

    def test_round_trip_preserves_loads_exactly(self, tmp_path):
        seq = generate_sequence(NormalizedClients(ZipfClients()), 25,
                                seed=SEED)
        save_trace(seq, tmp_path / "trace.json")
        loaded = load_trace(tmp_path / "trace.json")
        assert [(t.tenant_id, t.load) for t in loaded.tenants] \
            == [(t.tenant_id, t.load) for t in seq.tenants]
        assert loaded.seed == seq.seed


class TestSeedDerivation:
    """repro.par fans work items out to processes; each item's rng seed
    comes from derive_seed(base, index).  These exact values are baked
    into every recorded parallel experiment."""

    @pytest.mark.parametrize("base,index,expected", [
        (0, 0, 8668861027912758289),
        (0, 1, 4881901421217228719),
        (53, 7, 3912693311643055480),
        (1, 0, 8431846347943309920),
    ])
    def test_pinned_derivations(self, base, index, expected):
        assert derive_seed(base, index) == expected

    def test_adjacent_bases_decorrelated(self):
        """SeedSequence spawn keys keep (base, i) and (base+1, i)
        independent — no collisions across a realistic fan-out."""
        seeds = {derive_seed(base, index)
                 for base in range(8) for index in range(64)}
        assert len(seeds) == 8 * 64

    def test_range_is_uint64(self):
        for index in range(16):
            value = derive_seed(SEED, index)
            assert 0 <= value < 2 ** 64
