"""Unit tests for the discrete-event engine."""

import pytest

from repro.cluster.engine import Simulator
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_fifo(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run_until(2.0)
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run_until(5.0)
        assert times == [1.5]
        assert sim.now == 5.0

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run_until(5.0)
        assert fired == []
        sim.run_until(10.0)
        assert fired == ["late"]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run_until(3.0)
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_past_schedule_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(2.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run_until(2.0)
        assert fired == []

    def test_pending_counts_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1
        sim.run_until(2.0)
        assert sim.pending == 0


class TestRunAll:
    def test_drains_heap(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run_all()
        assert fired == [1, 2]

    def test_runaway_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.1, rearm)

        sim.schedule(0.1, rearm)
        with pytest.raises(SimulationError):
            sim.run_all(max_events=100)

    def test_events_dispatched_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        assert sim.events_dispatched == 1
