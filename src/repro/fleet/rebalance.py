"""Cross-shard rebalancing: audited tenant migrations.

Shards drift apart — hash routing is load-blind, tenants resize and
depart — so the fleet periodically moves tenants from its most loaded
shard to its least loaded one.  A migration is the same machinery the
single-controller repacker uses (remove the tenant, place it again
through the instrumented algorithm surface, every step WAL-logged),
split across two stores:

1. ``fleet.rebalance`` failpoint fires — before anything mutates.
2. The tenant is placed on the **target** shard (its robustness
   invariants enforced by the target's own placement path).
3. The tenant is removed from the **source** shard.
4. Both shards are audited; a violation raises immediately.

Ordering is deliberate: a crash between 2 and 3 leaves the tenant on
*both* shards — recoverable by :meth:`PlacementFleet.reconcile`'s
deterministic rule — never on neither.  An acked placement can thus
survive any single crash point in a migration.

Move selection is deterministic: the source is the most loaded shard
(ties to the lowest id), the target the least loaded, and the moved
tenant is the largest tenant whose move does not overshoot the
midpoint (ties to the lowest tenant id).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .. import faults
from ..core.tenant import Tenant
from ..errors import ShardSaturatedError

#: Loads this close to balanced are not worth a migration.
_EPS = 1e-12


@dataclass(frozen=True)
class Migration:
    """One audited cross-shard tenant move."""

    tenant_id: int
    load: float
    source: int
    target: int
    #: Server ids the tenant landed on inside the target shard.
    target_servers: Tuple[int, ...]

    def __str__(self) -> str:
        return (f"tenant {self.tenant_id} (load {self.load:.4f}): "
                f"shard {self.source} -> {self.target} "
                f"servers {list(self.target_servers)}")


def pick_move(loads, tenants_by_shard) -> Tuple[int, int, int, float]:
    """Choose ``(source, target, tenant_id, load)`` or raise KeyError.

    ``loads`` maps shard id -> total load; ``tenants_by_shard`` maps
    shard id -> {tenant_id: load}.  Deterministic; pure.
    """
    source = min(loads, key=lambda s: (-loads[s], s))
    target = min(loads, key=lambda s: (loads[s], s))
    gap = loads[source] - loads[target]
    movable = [(load, tid) for tid, load
               in tenants_by_shard[source].items()
               if load <= gap / 2 + _EPS]
    if source == target or not movable:
        raise KeyError("no balancing move available")
    load, tenant_id = max(movable, key=lambda lt: (lt[0], -lt[1]))
    return source, target, tenant_id, load


def rebalance(fleet, max_moves: int = 16,
              tolerance: float = 0.1) -> List[Migration]:
    """Migrate tenants until shard loads are within ``tolerance``.

    ``tolerance`` is relative: rebalancing stops when the spread
    between the most and least loaded shard is at most ``tolerance``
    times the mean shard load (or when ``max_moves`` is reached, or no
    move would improve the balance).  Every committed migration has
    been audited on both shards; the returned list is the audit trail,
    and each move is also journaled through the fleet's obs registry.
    """
    moves: List[Migration] = []
    obs = fleet._obs
    for _ in range(max_moves):
        live = {c.shard_id: c for c in fleet.shards if c is not None}
        if len(live) < 2:
            break
        loads = {sid: c.total_load for sid, c in live.items()}
        mean = sum(loads.values()) / len(loads)
        spread = max(loads.values()) - min(loads.values())
        if spread <= tolerance * max(mean, _EPS):
            break
        tenants_by_shard = {
            sid: {tid: c.placement.tenant_load(tid)
                  for tid in c.placement.tenant_ids}
            for sid, c in live.items()}
        try:
            source, target, tenant_id, load = pick_move(
                loads, tenants_by_shard)
        except KeyError:
            break
        if faults.active():
            faults.fire("fleet.rebalance")
        # Place on the target before removing from the source: a crash
        # in between duplicates the tenant (repaired by reconcile()),
        # it never loses it.
        try:
            servers = live[target].place(Tenant(tenant_id, load))
        except ShardSaturatedError:
            break
        live[source].remove(tenant_id)
        fleet.router.record_move(source, target, load)
        fleet.shard_of[tenant_id] = target
        live[source].audit().raise_if_violated()
        live[target].audit().raise_if_violated()
        move = Migration(tenant_id=tenant_id, load=load,
                         source=source, target=target,
                         target_servers=tuple(servers))
        moves.append(move)
        if obs is not None:
            obs.counter("fleet.migrations").inc()
            obs.emit("fleet_migrate", tenant=tenant_id, load=load,
                     source=source, target=target)
    return moves
