"""Struct-of-arrays mirror of placement state (the *array core*).

:class:`~repro.core.placement.PlacementState` keeps exact per-server
state in Python objects and dicts; every feasibility probe then pays a
chain of attribute lookups and memo-dict probes per server.  This module
mirrors the quantities the hot paths actually read into flat numpy
vectors — per server id:

* ``capacity`` and ``load`` (the bin level),
* the memoized worst-case failover load (the paper's top-``f``
  shared-load sum),
* ``headroom = capacity - load`` and the robust availability
  ``avail = headroom - worst_failover``,
* the replica count and an eligibility mask (CUBEFIT maturity).

The vectors are kept in sync *incrementally* through the placement's
existing invalidation stream (:meth:`PlacementState.dirty_tracker`):
each mutation marks the affected servers, and the core refreshes
exactly those — eagerly before a vector query (:meth:`sync`), or lazily
per server id on scalar reads (:meth:`scalar`), so probe-heavy
algorithms never pay for servers they are not looking at.

Crucially the worst-failover entries are **assigned from**
:meth:`PlacementState.worst_failover_load` — never maintained by
incremental float arithmetic — so a scalar read from the core is
bit-identical to the dict path and the array core can never drift the
screened-feasibility decisions of
:func:`repro.algorithms.base.robust_after_placement`.  The
``REPRO_ARRAY_CORE`` switch (on by default) disables the whole layer for
differential testing: the property suite replays identical workloads
with the core on and off and demands identical packings and identical
``feasibility.*`` accounting.

:meth:`ArrayCore.batch_screen` is the vectorized face of PR 4's
screened feasibility: one pass classifies every server as
screen-feasible / screen-infeasible / ambiguous using the same
``1e-9`` guard band; only the ambiguous band needs the scalar exact
``worst_shared_sum`` (see
:func:`repro.algorithms.base.batch_robust_after_placement` for the
resolver that drops to it).

The ``array_core.desync`` failpoint corrupts a worst-failover value as
it is written into the vector (a simulated stale read).  The default
float mutator *inflates* the value, which keeps the screen conservative
— a desynced core may refuse placements but never admits a
non-robust one — so under chaos the conformance contract (typed error
XOR audit-clean) holds on the audit-clean side; ``raise``/``crash``
policies exercise the typed side.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence, Set, Tuple, TYPE_CHECKING

import numpy as np

from .. import faults
from ..errors import ConfigurationError, PlacementError
from .tenant import LOAD_EPS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .placement import PlacementState

#: Environment switch for the array-core layer (on unless "0"/"false"/...).
ARRAY_CORE_ENV_VAR = "REPRO_ARRAY_CORE"

#: Safety margin on the screened feasibility bounds (see
#: :func:`repro.algorithms.base.robust_after_placement`): decisions
#: closer than this to a cached bound fall into the ambiguous band and
#: are settled by the exact top-``f`` sum.
SCREEN_MARGIN = 1e-9

#: :meth:`ArrayCore.batch_screen` verdict codes.
FEASIBLE = np.int8(1)
INFEASIBLE = np.int8(-1)
AMBIGUOUS = np.int8(0)


def _env_enabled() -> bool:
    return os.environ.get(ARRAY_CORE_ENV_VAR, "").strip().lower() \
        not in ("0", "false", "no", "off")


_ENABLED = _env_enabled()


def enabled() -> bool:
    """Whether new indexes/placements build array cores."""
    return _ENABLED


def set_enabled(value: bool) -> bool:
    """Set the switch; returns the previous value.

    Only affects *newly constructed* cores/indexes — live objects keep
    the engine they were built with (that is what makes on/off
    differential runs meaningful).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(value)
    return previous


@contextmanager
def overridden(value: bool) -> Iterator[None]:
    """Scoped :func:`set_enabled` (the differential-test helper)."""
    previous = set_enabled(value)
    try:
        yield
    finally:
        set_enabled(previous)


class ArrayCore:
    """Per-``failures`` struct-of-arrays view over one placement.

    Two usage modes share the implementation:

    * ``eligibility=True`` — owned by a
      :class:`~repro.algorithms.base.ServerIndex`: servers are tracked
      explicitly via :meth:`track`, ineligible servers keep the
      ``avail = -inf`` sentinel (one float compare doubles as the
      eligibility filter) and are skipped by :meth:`sync`, exactly the
      PR 4 semantics.  The index *registers* its core with the
      placement (:meth:`PlacementState.register_array_core`), so the
      scalar probe path (:func:`~repro.algorithms.base
      .robust_after_placement`) reads ``headroom``/``worst_failover``
      out of the very vectors the index's candidate queries keep
      synced — one set of arrays per failure budget, no duplicate
      bookkeeping.
    * ``eligibility=False`` — standalone: every placement server is
      tracked automatically on sync, for direct :meth:`batch_screen`
      use over a whole placement without an index.
    """

    _GROW = 1024
    #: Initial CSR partner-row width; grows by doubling.  Partner sets
    #: are small by construction (a server's partners are its tenants'
    #: sibling homes, ~``replicas * (gamma - 1)``), so rows stay narrow.
    _CSR_COLS = 8

    def __init__(self, placement: "PlacementState", failures: int,
                 eligibility: bool = False) -> None:
        if failures < 0:
            raise ConfigurationError(
                f"failures must be non-negative, got {failures}")
        self.placement = placement
        self.failures = failures
        self._explicit_eligibility = eligibility
        n = self._GROW
        self._cap = np.zeros(n, dtype=np.float64)
        self._load = np.zeros(n, dtype=np.float64)
        self._wfl = np.zeros(n, dtype=np.float64)
        self._avail = np.full(n, -np.inf, dtype=np.float64)
        self._nrep = np.zeros(n, dtype=np.int64)
        self._eligible = np.zeros(n, dtype=bool)
        self.size = 0
        self._tracker = placement.dirty_tracker()
        #: Drained-but-unrefreshed ids (the lazy scalar-read mode).
        self._pending: Set[int] = set()
        # ------------------------------------------------------------------
        # CSR shared-load mirror (lazy).  Row ``sid`` holds the values of
        # ``placement._shared[sid]`` in dict insertion order (``_pval``),
        # the matching partner ids (``_pidx``), and the entry count
        # (``_pcnt``); unused cells are ``-inf`` / ``-1``.  Rows are
        # rebuilt on demand: a separate dirty tracker marks mutated rows
        # stale and :meth:`_csr_rows` refreshes exactly the rows a
        # resolver call reads, so workloads that never hit the ambiguous
        # band never pay for the mirror.
        self._pval = np.full((n, self._CSR_COLS), -np.inf, dtype=np.float64)
        self._pidx = np.full((n, self._CSR_COLS), -1, dtype=np.int64)
        self._pcnt = np.zeros(n, dtype=np.int64)
        self._pfresh = np.zeros(n, dtype=bool)
        self._csr_tracker = placement.dirty_tracker()
        #: Monotonic refresh serial + append-only log of refreshed ids.
        #: Consumers that cache verdicts derived from the vectors (the
        #: screen cache in :class:`~repro.algorithms.base.ServerIndex`)
        #: remember their build position and patch exactly the ids
        #: refreshed since.  The log is cleared (and :attr:`refresh_epoch`
        #: bumped, invalidating those caches) when it grows too long.
        self.refresh_log: list = []
        self.refresh_epoch = 0

    def close(self) -> None:
        """Unsubscribe from the placement's invalidation stream."""
        self._tracker.close()
        self._csr_tracker.close()

    # ------------------------------------------------------------------
    # Growth / tracking
    # ------------------------------------------------------------------
    def _ensure(self, server_id: int) -> None:
        while server_id >= len(self._load):
            grow = self._GROW
            self._cap = np.concatenate(
                [self._cap, np.zeros(grow, dtype=np.float64)])
            self._load = np.concatenate(
                [self._load, np.zeros(grow, dtype=np.float64)])
            self._wfl = np.concatenate(
                [self._wfl, np.zeros(grow, dtype=np.float64)])
            self._avail = np.concatenate(
                [self._avail, np.full(grow, -np.inf, dtype=np.float64)])
            self._nrep = np.concatenate(
                [self._nrep, np.zeros(grow, dtype=np.int64)])
            self._eligible = np.concatenate(
                [self._eligible, np.zeros(grow, dtype=bool)])
            cols = self._pval.shape[1]
            self._pval = np.concatenate(
                [self._pval,
                 np.full((grow, cols), -np.inf, dtype=np.float64)])
            self._pidx = np.concatenate(
                [self._pidx, np.full((grow, cols), -1, dtype=np.int64)])
            self._pcnt = np.concatenate(
                [self._pcnt, np.zeros(grow, dtype=np.int64)])
            self._pfresh = np.concatenate(
                [self._pfresh, np.zeros(grow, dtype=bool)])
        self.size = max(self.size, server_id + 1)

    def _csr_grow_cols(self, needed: int) -> None:
        cols = self._pval.shape[1]
        while cols < needed:
            cols *= 2
        rows = self._pval.shape[0]
        pval = np.full((rows, cols), -np.inf, dtype=np.float64)
        pval[:, :self._pval.shape[1]] = self._pval
        self._pval = pval
        pidx = np.full((rows, cols), -1, dtype=np.int64)
        pidx[:, :self._pidx.shape[1]] = self._pidx
        self._pidx = pidx

    def track(self, server_id: int, eligible: bool = True) -> None:
        """Start mirroring ``server_id`` (must exist in the placement)."""
        self._ensure(server_id)
        # Capacity is fixed at server creation; mirror it once here so
        # refresh never re-writes it.
        self._cap[server_id] = self.placement._servers[server_id].capacity
        self._eligible[server_id] = eligible
        self.refresh((server_id,))

    def set_eligible(self, server_id: int, eligible: bool) -> None:
        self._ensure(server_id)
        if bool(self._eligible[server_id]) == eligible:
            return
        self._eligible[server_id] = eligible
        self.refresh((server_id,))

    def is_eligible(self, server_id: int) -> bool:
        return server_id < self.size and bool(self._eligible[server_id])

    # ------------------------------------------------------------------
    # Incremental sync
    # ------------------------------------------------------------------
    def refresh(self, server_ids: Iterable[int]) -> None:
        """Recompute the vectors for the given (tracked) servers.

        Ineligible servers keep ``avail = -inf`` and skip the
        worst-failover recomputation — candidate queries cannot return
        them, and their vectors are rebuilt the moment
        :meth:`set_eligible` promotes them.  Only the mutable hot
        quantities are written here (load, worst-failover,
        availability); capacity is mirrored once at :meth:`track` time
        and headroom / replica counts are derived on read, which keeps
        the per-server refresh at three array writes — the incremental
        cost that every candidate-query sync pays.
        """
        placement = self.placement
        servers = placement._servers
        wfl_of = placement.worst_failover_load
        failures = self.failures
        size = self.size
        eligible = self._eligible
        failpoints = faults.FAILPOINTS
        log = self.refresh_log
        for sid in server_ids:
            if sid >= size:
                continue
            server = servers[sid]
            load = server.load
            self._load[sid] = load
            if eligible[sid]:
                value = wfl_of(sid, failures)
                if failpoints._active:
                    value = failpoints.corrupt("array_core.desync", value)
                self._wfl[sid] = value
                self._avail[sid] = (server.capacity - load) - value
            else:
                self._avail[sid] = -np.inf
            log.append(sid)
        if len(log) > 16384:
            # Bound the log: consumers holding an older position must
            # rebuild (they compare epochs).
            log.clear()
            self.refresh_epoch += 1

    def sync(self) -> None:
        """Eagerly refresh every server mutated since the last query."""
        tracker = self._tracker
        pending = self._pending
        if tracker._dirty:
            pending |= tracker.drain()
        if not pending:
            return
        if not self._explicit_eligibility:
            for sid in pending:
                self._auto_track(sid)
        self.refresh(pending)
        pending.clear()

    def _auto_track(self, server_id: int) -> None:
        """Automatic tracking (standalone mode)."""
        if server_id >= self.size:
            self._ensure(server_id)
        self._cap[server_id] = self.placement._servers[server_id].capacity
        self._eligible[server_id] = True

    def scalar(self, server_id: int) -> Tuple[float, float]:
        """``(headroom, worst_failover)`` of one server, lazily synced.

        Probes of servers untouched since the last refresh read straight
        out of the vectors (as plain Python floats — downstream float
        arithmetic is much cheaper than on numpy scalars).  Dirty,
        untracked or ineligible servers are answered from the placement
        — the same memoized values a refresh would assign, so the
        result is identical — without writing the vectors, and dirty
        ids stay pending for the next vector query: a probe after a
        mutation costs O(1) regardless of how many servers the mutation
        touched, and pure scalar workloads never pay for array writes
        at all.
        """
        # Membership tests only — the dirty set is left for the next
        # vector query to drain, so a scalar probe never allocates.
        if server_id not in self._tracker._dirty \
                and server_id not in self._pending \
                and server_id < self.size \
                and self._eligible[server_id]:
            return (self._cap.item(server_id)
                    - self._load.item(server_id),
                    self._wfl.item(server_id))
        placement = self.placement
        try:
            server = placement._servers[server_id]
        except KeyError:
            raise PlacementError(
                f"no such server: {server_id}") from None
        if self._explicit_eligibility and server_id >= self.size:
            raise PlacementError(
                f"server {server_id} is not tracked by this index")
        value = placement.worst_failover_load(server_id, self.failures)
        if faults.FAILPOINTS._active:
            value = faults.FAILPOINTS.corrupt("array_core.desync", value)
        return server.capacity - server.load, value

    # ------------------------------------------------------------------
    # Vector reads (tests / reporting)
    # ------------------------------------------------------------------
    def loads(self) -> np.ndarray:
        """Per-server load vector (synced view, length :attr:`size`)."""
        self.sync()
        return self._load[:self.size]

    def worst_failovers(self) -> np.ndarray:
        self.sync()
        return self._wfl[:self.size]

    def avails(self) -> np.ndarray:
        self.sync()
        return self._avail[:self.size]

    def headrooms(self) -> np.ndarray:
        """Per-server ``capacity - load`` (derived; not stored)."""
        self.sync()
        n = self.size
        return self._cap[:n] - self._load[:n]

    def replica_counts(self) -> np.ndarray:
        """Per-server replica counts, rebuilt on read.

        Counts are reporting-only, so they are not maintained by the
        incremental refresh (that would tax every candidate-query
        sync); this recounts the tracked prefix from the placement.
        """
        self.sync()
        servers = self.placement._servers
        for sid in range(self.size):
            server = servers.get(sid)
            self._nrep[sid] = 0 if server is None else len(server)
        return self._nrep[:self.size]

    def eligibles(self) -> np.ndarray:
        self.sync()
        return self._eligible[:self.size]

    # ------------------------------------------------------------------
    # Vectorized screening
    # ------------------------------------------------------------------
    def batch_screen(self, replica_load: float, n_bumped: int = 0,
                     extra_reserve: float = 0.0) -> np.ndarray:
        """Classify every tracked server for hosting one replica.

        Returns an ``int8`` array of length :attr:`size`:
        :data:`FEASIBLE` (+1) where the sufficient bound accepts,
        :data:`INFEASIBLE` (-1) where the necessary bound rejects, and
        :data:`AMBIGUOUS` (0) in between — exactly the bounds of
        :func:`repro.algorithms.base.robust_after_placement` with
        ``n_bumped`` anticipated shared-load bumps (placed siblings
        plus future siblings), evaluated in one vectorized pass.
        Ineligible servers are reported infeasible.

        Ambiguous entries must be settled by the exact
        ``worst_shared_sum``; see
        :func:`repro.algorithms.base.batch_robust_after_placement`.
        """
        for name, value in (("replica_load", replica_load),
                            ("extra_reserve", extra_reserve)):
            if not math.isfinite(value):
                raise ConfigurationError(
                    f"{name} must be finite, got {value!r}")
        if n_bumped < 0:
            raise ConfigurationError(
                f"n_bumped must be non-negative, got {n_bumped}")
        self.sync()
        n = self.size
        verdict = np.zeros(n, dtype=np.int8)
        if n == 0:
            return verdict
        # Mirror the scalar screen's float expressions operation for
        # operation so batch and scalar classifications are bit-equal.
        empty_after = ((self._cap[:n] - self._load[:n]) - replica_load) \
            - extra_reserve
        failures = self.failures
        if failures <= 0:
            feasible = empty_after + LOAD_EPS >= 0.0
            verdict[feasible] = FEASIBLE
            verdict[~feasible] = INFEASIBLE
        else:
            wfl = self._wfl[:n]
            delta = replica_load * min(failures, n_bumped)
            infeasible = empty_after + LOAD_EPS < wfl - SCREEN_MARGIN
            feasible = empty_after >= (wfl + SCREEN_MARGIN) + delta
            verdict[feasible] = FEASIBLE
            verdict[infeasible] = INFEASIBLE
        verdict[~self._eligible[:n]] = INFEASIBLE
        return verdict

    # ------------------------------------------------------------------
    # CSR shared-load mirror + vectorized ambiguous-band resolution
    # ------------------------------------------------------------------
    def _csr_rows(self, ids: Sequence[int]) -> None:
        """Bring the CSR partner rows for ``ids`` up to date."""
        tracker = self._csr_tracker
        if tracker._dirty:
            stale = tracker.drain()
            fresh = self._pfresh
            limit = len(fresh)
            for sid in stale:
                if sid < limit:
                    fresh[sid] = False
        shared_of = self.placement._shared
        pval = self._pval
        pidx = self._pidx
        pcnt = self._pcnt
        fresh = self._pfresh
        for sid in ids:
            if fresh[sid]:
                continue
            shared = shared_of[sid]
            n = len(shared)
            if n > pval.shape[1]:
                self._csr_grow_cols(n)
                pval = self._pval
                pidx = self._pidx
            old = int(pcnt[sid])
            if n:
                pval[sid, :n] = np.fromiter(
                    shared.values(), np.float64, count=n)
                pidx[sid, :n] = np.fromiter(
                    shared.keys(), np.int64, count=n)
            if old > n:
                pval[sid, n:old] = -np.inf
                pidx[sid, n:old] = -1
            pcnt[sid] = n
            fresh[sid] = True

    def resolve_worst(self, ids: Sequence[int], replica_load: float,
                      chosen: Sequence[int] = (),
                      future_siblings: int = 0) -> np.ndarray:
        """Exact worst shared sums for many servers in one pass.

        For each ``sid`` in ``ids`` this returns exactly
        ``worst_shared_sum(placement, sid, failures,
        {c: replica_load for c in chosen},
        [replica_load] * future_siblings)`` — the exact top-``failures``
        sum over the server's *bumped* shared-load multiset — computed
        for all rows with one ``np.partition`` pass over the CSR mirror
        instead of one ``heapq.nlargest`` per server.

        Bit-identity with the scalar path holds because the value
        multiset of the top-``failures`` selection is the same either
        way (ties contribute equal values) and the final sum accumulates
        in the same value-descending order.  Rows whose survivor count
        does not exceed the failure budget are delegated to the scalar
        function outright (its summation order there is dict insertion
        order, which only the dict walk reproduces cheaply).

        Precondition (as with the scalar call sites): ``sid`` itself is
        never in ``chosen``.
        """
        m = len(ids)
        f = self.failures
        out = np.zeros(m, dtype=np.float64)
        if m == 0 or f <= 0:
            return out
        self._csr_rows(ids)
        idx = np.fromiter(ids, np.int64, count=m)
        cnt = self._pcnt[idx]
        width0 = int(cnt.max())
        V = self._pval[idx][:, :width0]
        extra_cols = []
        if chosen:
            P = self._pidx[idx][:, :width0]
            present = np.zeros(m, dtype=np.int64)
            for c in chosen:
                hit = P == c
                has = hit.any(axis=1)
                present += has
                V = np.where(hit, V + replica_load, V)
                extra_cols.append(np.where(has, -np.inf, replica_load))
            survivors = cnt + (len(chosen) - present) + future_siblings
        else:
            survivors = cnt + future_siblings
        small = survivors <= f
        big = ~small
        if big.any():
            if future_siblings:
                extra_cols.extend(
                    np.full(m, replica_load)
                    for _ in range(future_siblings))
            Vb = V[big]
            if extra_cols:
                Vb = np.column_stack(
                    [Vb] + [col[big] for col in extra_cols])
            w = Vb.shape[1]
            if f == 1:
                res = Vb.max(axis=1)
            else:
                top = np.partition(Vb, w - f, axis=1)[:, w - f:]
                top.sort(axis=1)
                res = top[:, f - 1].copy()
                for j in range(f - 2, -1, -1):
                    res += top[:, j]
            out[big] = res
        if small.any():
            scalar = _scalar_worst_shared_sum()
            placement = self.placement
            bumps = {c: replica_load for c in chosen} if chosen else None
            extras = [replica_load] * future_siblings
            for i in np.nonzero(small)[0]:
                out[i] = scalar(placement, int(idx[i]), f, bumps, extras)
        return out


_WORST_SHARED_SUM = None


def _scalar_worst_shared_sum():
    """Lazy import of the scalar reference (avoids a circular import)."""
    global _WORST_SHARED_SUM
    if _WORST_SHARED_SUM is None:
        from ..algorithms.base import worst_shared_sum
        _WORST_SHARED_SUM = worst_shared_sum
    return _WORST_SHARED_SUM
