#!/usr/bin/env python
"""Run the placement-speed bench scenarios; write or check a baseline.

The scenario lineup, timing protocol and tolerance check live in
:mod:`repro.sim.bench`; this runner is the command-line front-end that
maintains ``BENCH_placement.json`` so the bench trajectory can be
diffed commit over commit.

Usage::

    PYTHONPATH=src python tools/run_bench.py              # full run, write
    PYTHONPATH=src python tools/run_bench.py --jobs 4     # parallel timing
    PYTHONPATH=src python tools/run_bench.py --quick      # CI smoke: run a
        # reduced protocol and check against the committed baseline
        # instead of writing; exits 1 on packing drift or gross slowdown

The default run times every scenario at 2,000, 10,000 and 100,000
tenants (override with ``--scales``), records screened-vs-exact
feasibility counters per scenario, and writes the version-3 schema::

    {"format": "repro-bench", "version": 3, "rounds": ...,
     "scales": {"2000": {...}, "10000": {...}, "100000": {...}},
     "feasibility": {"2000": {"cubefit": {"screened": ..., "exact": ...,
                                          "screened_fraction": ...}}},
     "fleet": {"100000x8": {...}, "1000000x16": {...}}}

Version 3 drops v2's duplicate top-level ``n_tenants`` + ``scenarios``
alias of the first scale; the ``--quick`` baseline check reads v2 and
v3 baselines interchangeably.

``servers``, ``utilization`` and the feasibility counters are
deterministic and meaningful to diff; throughput numbers are
machine-dependent context.
"""

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))

from repro.sim.bench import (DEFAULT_FLEET_SCALES,  # noqa: E402
                             DEFAULT_ROUNDS, DEFAULT_SCALES,
                             batch_identity_check,
                             check_against_baseline, run_bench)

QUICK_SCALES = (2000,)
QUICK_ROUNDS = 2
#: Quick mode still exercises the fleet pipeline, at a scale cheap
#: enough for a CI smoke; its key differs from the committed 100k
#: entry, so the baseline check skips the throughput comparison.
QUICK_FLEET_SCALES = ((2000, 4),)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Time placement algorithms; write or check the "
                    "bench baseline.")
    parser.add_argument("--output", type=Path,
                        default=_ROOT / "BENCH_placement.json")
    parser.add_argument("--rounds", type=int, default=None,
                        help=f"timing rounds per scenario "
                             f"(default {DEFAULT_ROUNDS})")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the scenario fan-out")
    parser.add_argument("--scales", type=str, default=None,
                        help="comma-separated tenant counts "
                             f"(default {','.join(map(str, DEFAULT_SCALES))})")
    parser.add_argument("--names", type=str, default=None,
                        help="comma-separated scenario subset "
                             "(default: every scenario)")
    parser.add_argument("--fleet-scales", type=str, default=None,
                        help="comma-separated TENANTSxSHARDS fleet "
                             "scenarios (default "
                             f"{','.join(f'{n}x{s}' for n, s in DEFAULT_FLEET_SCALES)}"
                             "; 'none' disables)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced protocol + baseline check; does "
                             "not write the baseline")
    parser.add_argument("--baseline", type=Path,
                        default=_ROOT / "BENCH_placement.json",
                        help="baseline to check --quick runs against")
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed throughput slowdown factor for "
                             "--quick (default 3.0)")
    args = parser.parse_args(argv)

    if args.scales is not None:
        scales = tuple(int(s) for s in args.scales.split(","))
    elif args.quick:
        scales = QUICK_SCALES
    else:
        scales = DEFAULT_SCALES
    rounds = args.rounds if args.rounds is not None else \
        (QUICK_ROUNDS if args.quick else DEFAULT_ROUNDS)

    if args.fleet_scales is not None:
        fleet_scales = () if args.fleet_scales == "none" else tuple(
            tuple(int(part) for part in spec.split("x"))
            for spec in args.fleet_scales.split(","))
    elif args.quick:
        fleet_scales = QUICK_FLEET_SCALES
    else:
        fleet_scales = DEFAULT_FLEET_SCALES

    names = tuple(args.names.split(",")) if args.names else None
    payload = run_bench(scales=scales, rounds=rounds, jobs=args.jobs,
                        names=names, fleet_scales=fleet_scales,
                        progress=print)

    if args.quick:
        baseline = json.loads(args.baseline.read_text())
        problems = check_against_baseline(payload, baseline,
                                          slowdown_tolerance=args.tolerance)
        # The batched admission pipeline must be invisible: packing
        # fingerprints at every chunk length equal the sequential loop.
        problems += batch_identity_check(
            n_tenants=min(min(scales), 10000), names=names)
        if problems:
            for problem in problems:
                print(f"BASELINE CHECK FAILED: {problem}",
                      file=sys.stderr)
            return 1
        print(f"baseline check passed against {args.baseline} "
              f"(batch==sequential fingerprints agree)")
        return 0

    args.output.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
