"""Unit tests for the churn simulator and slot recycling."""

import numpy as np
import pytest

from repro.algorithms.rfi import RFI
from repro.core.cubefit import CubeFit
from repro.core.tenant import Tenant
from repro.core.validation import audit
from repro.sim.churn import ChurnConfig, run_churn
from repro.workloads.distributions import TraceLoads, UniformLoad
from repro.errors import ConfigurationError


CFG = ChurnConfig(arrival_rate=6.0, mean_lifetime=15.0, horizon=60.0,
                  sample_every=10.0, seed=2)


class TestChurnConfig:
    def test_expected_population(self):
        assert CFG.expected_population == pytest.approx(90.0)

    @pytest.mark.parametrize("kwargs", [
        dict(arrival_rate=0.0), dict(mean_lifetime=-1.0),
        dict(horizon=0.0), dict(sample_every=0.0)])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChurnConfig(**kwargs)


class TestRunChurn:
    def test_population_near_steady_state(self):
        result = run_churn(lambda: RFI(gamma=2), UniformLoad(0.3), CFG)
        steady = result.steady_state()
        assert steady
        mean_tenants = sum(s.tenants for s in steady) / len(steady)
        # within a loose band of arrival_rate * mean_lifetime = 90
        assert 45 <= mean_tenants <= 150

    def test_departures_happen_and_robustness_holds(self):
        result = run_churn(lambda: CubeFit(gamma=2, num_classes=10),
                           UniformLoad(0.3), CFG)
        assert result.departures > 0
        assert result.arrivals >= result.departures
        assert result.final_robust

    def test_samples_cover_horizon(self):
        result = run_churn(lambda: RFI(gamma=2), UniformLoad(0.3), CFG)
        times = [s.time for s in result.samples]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(60.0)

    def test_reproducible(self):
        a = run_churn(lambda: RFI(gamma=2), UniformLoad(0.3), CFG)
        b = run_churn(lambda: RFI(gamma=2), UniformLoad(0.3), CFG)
        assert a.arrivals == b.arrivals
        assert a.mean_steady_servers == b.mean_steady_servers

    def test_table(self):
        result = run_churn(lambda: RFI(gamma=2), UniformLoad(0.3), CFG)
        assert "Churn timeline" in result.to_table().to_text()


class _ScriptedRng:
    """Returns pre-scripted exponential draws, in order."""

    def __init__(self, draws):
        self._draws = list(draws)

    def exponential(self, scale):
        return self._draws.pop(0)


class TestSampleTieBreak:
    """A sample at time t reflects the state *strictly before* any
    event at t (samples are flushed before the event is applied)."""

    CFG = ChurnConfig(arrival_rate=1.0, mean_lifetime=1.0,
                      horizon=10.0, sample_every=5.0)

    def test_arrival_at_sample_instant_not_visible(self):
        # First arrival gap lands exactly on the t=5 sample; lifetime
        # and next gap are pushed past the horizon.
        rng = _ScriptedRng([5.0, 100.0, 100.0])
        result = run_churn(lambda: RFI(gamma=2), TraceLoads([0.5]),
                           self.CFG, rng=rng)
        assert result.arrivals == 1 and result.departures == 0
        assert [(s.time, s.tenants) for s in result.samples] == \
            [(5.0, 0), (10.0, 1)]

    def test_departure_at_sample_instant_still_visible(self):
        # Arrival at t=2 lives exactly 3 units: departure at the t=5
        # sample instant.  The sample still shows the tenant.
        rng = _ScriptedRng([2.0, 3.0, 100.0])
        result = run_churn(lambda: RFI(gamma=2), TraceLoads([0.5]),
                           self.CFG, rng=rng)
        assert result.arrivals == 1 and result.departures == 1
        assert [(s.time, s.tenants) for s in result.samples] == \
            [(5.0, 1), (10.0, 0)]


class TestSlotRecycling:
    def test_recycles_departed_cube_slots(self):
        algo = CubeFit(gamma=2, num_classes=5)
        # Three class-1 tenants (replicas > 1/3): cube tenants.
        for tid in range(3):
            algo.place(Tenant(tid, 0.9))
        servers_before = algo.placement.num_servers
        algo.remove(1)
        algo.place(Tenant(3, 0.9))
        assert algo.stats.get("recycled_slots", 0) == 1
        assert algo.placement.num_servers == servers_before

    def test_recycle_respects_robustness(self):
        """If the first stage consumed the freed space, the slot set is
        not force-reused."""
        rng = np.random.default_rng(5)
        algo = CubeFit(gamma=2, num_classes=5)
        tid = 0
        alive = []
        for _ in range(250):
            if alive and rng.random() < 0.5:
                victim = alive.pop(int(rng.integers(len(alive))))
                algo.remove(victim)
            else:
                algo.place(Tenant(tid, float(rng.uniform(0.02, 1.0))))
                alive.append(tid)
                tid += 1
        assert audit(algo.placement).ok

    def test_recycling_reduces_server_growth_under_churn(self):
        """Replace-one-tenant loops must not leak servers."""
        algo = CubeFit(gamma=2, num_classes=5)
        algo.place(Tenant(0, 0.9))
        baseline = algo.placement.num_servers
        for step in range(1, 30):
            algo.remove(step - 1)
            algo.place(Tenant(step, 0.9))
        assert algo.placement.num_servers == baseline

    def test_tiny_tenants_not_slot_tracked(self):
        algo = CubeFit(gamma=2, num_classes=10)
        algo.place(Tenant(0, 0.05))
        algo.remove(0)
        assert not algo._free_slots  # tiny path uses multi-replicas
