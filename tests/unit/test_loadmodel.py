"""Unit tests for the linear load model and its boundary fit."""

import pytest

from repro.workloads.loadmodel import (BoundaryPoint, DEFAULT_LOAD_MODEL,
                                       LinearLoadModel, fit_boundary)
from repro.errors import CalibrationError, ConfigurationError


class TestModel:
    def test_load_formula(self):
        model = LinearLoadModel(delta=0.02, beta=0.01)
        assert model.load(10) == pytest.approx(0.21)

    def test_zero_clients_zero_load(self):
        model = LinearLoadModel(delta=0.02, beta=0.01)
        assert model.load(0) == 0.0

    def test_load_may_exceed_one(self):
        """Loads above 1.0 signal over-utilization (Section IV)."""
        model = LinearLoadModel(delta=0.02, beta=0.01)
        assert model.load(60) > 1.0

    def test_server_load_additive(self):
        model = LinearLoadModel(delta=0.02, beta=0.01)
        assert model.server_load([5, 10]) == pytest.approx(
            model.load(5) + model.load(10))

    def test_max_clients(self):
        model = LinearLoadModel(delta=0.019, beta=0.012)
        assert model.max_clients() == 52

    def test_max_clients_multiple_tenants(self):
        model = LinearLoadModel(delta=0.019, beta=0.012)
        assert model.max_clients(tenants=10) < model.max_clients(tenants=1)

    def test_max_clients_overhead_exceeds_capacity(self):
        model = LinearLoadModel(delta=0.02, beta=0.3)
        assert model.max_clients(tenants=4) == 0

    def test_clients_for_load_inverts(self):
        model = LinearLoadModel(delta=0.02, beta=0.01)
        assert model.clients_for_load(model.load(25)) == 25

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LinearLoadModel(delta=0.0, beta=0.01)
        with pytest.raises(ConfigurationError):
            LinearLoadModel(delta=0.02, beta=-0.1)
        with pytest.raises(ConfigurationError):
            LinearLoadModel(delta=0.02, beta=0.01).load(-1)


class TestFitBoundary:
    def test_recovers_exact_model(self):
        truth = LinearLoadModel(delta=0.018, beta=0.01)
        points = []
        for tenants in (1, 4, 8, 12):
            clients = truth.max_clients(tenants=tenants)
            points.append(BoundaryPoint(tenants=tenants, clients=clients))
        fitted = fit_boundary(points)
        assert fitted.delta == pytest.approx(truth.delta, rel=0.05)
        assert fitted.beta == pytest.approx(truth.beta, abs=0.005)

    def test_needs_two_tenant_counts(self):
        with pytest.raises(CalibrationError):
            fit_boundary([BoundaryPoint(1, 50), BoundaryPoint(1, 51)])

    def test_needs_two_points(self):
        with pytest.raises(CalibrationError):
            fit_boundary([BoundaryPoint(1, 50)])

    def test_nonphysical_fit_rejected(self):
        # A boundary where more tenants allow far more clients forces a
        # negative delta in the least-squares solution.
        points = [BoundaryPoint(tenants=1, clients=10),
                  BoundaryPoint(tenants=2, clients=100)]
        with pytest.raises(CalibrationError):
            fit_boundary(points)


class TestDefault:
    def test_default_model_prices_conservatively(self):
        """The shipped model keeps headroom below the raw simulated
        boundary (C ≈ 52): see the module docstring."""
        assert 35 <= DEFAULT_LOAD_MODEL.max_clients() <= 52
