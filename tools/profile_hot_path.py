#!/usr/bin/env python
"""Profile the admission hot path, phase by phase.

Runs one batched consolidation of the bench workload under cProfile
and buckets every function's *self* time into the pipeline's four
phases:

* ``sync``        — array-core refresh/sync + dirty-tracker feeds
  (mirroring placement mutations into the struct-of-arrays core);
* ``screen``      — candidate iteration, vectorized batch screening,
  and the quantized band-screen cache (build/patch/consult);
* ``exact``       — exact top-``f`` shared-load evaluations: scalar
  ``worst_shared_sum``, the CSR ``resolve_worst`` kernel, and the
  ``robust_after_placement`` drivers;
* ``bookkeeping`` — placement mutation itself (``place``, server
  add, shared-load index updates, cache invalidation).

Self time (pstats ``tottime``) is used so the phases partition the
run without double counting callers; everything unmatched lands in
``other`` (tenant generation, dataclass plumbing, the bench driver).

Usage::

    PYTHONPATH=src python tools/profile_hot_path.py
    PYTHONPATH=src python tools/profile_hot_path.py \
        --name cubefit --tenants 20000 --batch-size 1   # sequential
    PYTHONPATH=src python tools/profile_hot_path.py --top 15
"""

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))

from repro.sim.bench import FACTORIES, bench_sequence  # noqa: E402

#: phase -> ((filename substring, function name), ...).  Order
#: matters: the first phase whose pattern matches claims the function.
PHASE_PATTERNS = (
    ("sync", (
        ("arrays.py", "sync"),
        ("arrays.py", "refresh"),
        ("arrays.py", "track"),
        ("arrays.py", "set_eligible"),
        ("base.py", "refresh"),
        ("base.py", "sync"),
        ("base.py", "begin_batch"),
        ("base.py", "end_batch"),
    )),
    ("screen", (
        ("arrays.py", "batch_screen"),
        ("arrays.py", "candidates"),
        ("base.py", "iter_candidates"),
        ("base.py", "candidates"),
        ("base.py", "candidates_by_id"),
        ("base.py", "_survivors"),
        ("base.py", "select"),
        ("base.py", "_band_cache"),
        ("base.py", "_band_of"),
        ("base.py", "_build_band_cache"),
        ("base.py", "_patch_band_caches"),
    )),
    ("exact", (
        ("arrays.py", "resolve_worst"),
        ("base.py", "worst_shared_sum"),
        ("base.py", "robust_after_placement"),
        ("base.py", "batch_robust_after_placement"),
        ("base.py", "_feasible"),
    )),
    ("bookkeeping", (
        ("placement.py", "place"),
        ("placement.py", "_touch"),
        ("placement.py", "open_server"),
        ("placement.py", "server"),
        ("server.py", "add"),
        ("server.py", "remove"),
        ("tenant.py", "replicas"),
        ("tenant.py", "replica_load"),
    )),
)


def classify(filename: str, funcname: str) -> str:
    for phase, patterns in PHASE_PATTERNS:
        for file_part, func in patterns:
            if func == funcname and filename.endswith(file_part):
                return phase
    return "other"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="cProfile the admission hot path; report self "
                    "time per pipeline phase.")
    parser.add_argument("--name", default="bestfit",
                        choices=sorted(FACTORIES),
                        help="scenario to profile (default bestfit)")
    parser.add_argument("--tenants", type=int, default=10000,
                        help="sequence length (default 10000)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="consolidation chunk length (default: "
                             "the algorithm's DEFAULT_BATCH; 1 = "
                             "sequential admission)")
    parser.add_argument("--top", type=int, default=8,
                        help="functions listed per phase (default 8)")
    args = parser.parse_args(argv)

    sequence = bench_sequence(args.tenants)
    tenants = list(sequence)
    algo = FACTORIES[args.name]()

    profiler = cProfile.Profile()
    profiler.enable()
    algo.consolidate(tenants, batch_size=args.batch_size)
    profiler.disable()

    stats = pstats.Stats(profiler)
    phases = {phase: [] for phase, _ in PHASE_PATTERNS}
    phases["other"] = []
    total = 0.0
    for (filename, _line, funcname), row in stats.stats.items():
        calls, _prim, tottime, _cum = row[0], row[1], row[2], row[3]
        total += tottime
        phases[classify(filename, funcname)].append(
            (tottime, calls, funcname, Path(filename).name))

    batch = (args.batch_size if args.batch_size is not None
             else algo.DEFAULT_BATCH)
    print(f"hot-path profile: {args.name}, {args.tenants} tenants, "
          f"batch_size={batch}, {algo.placement.num_servers} servers")
    print(f"{'phase':<12} {'self s':>9} {'share':>7}")
    print("-" * 30)
    order = [phase for phase, _ in PHASE_PATTERNS] + ["other"]
    for phase in order:
        seconds = sum(t for t, *_ in phases[phase])
        share = seconds / total if total else 0.0
        print(f"{phase:<12} {seconds:>9.3f} {share:>6.1%}")
    print("-" * 30)
    print(f"{'total':<12} {total:>9.3f}")
    for phase in order:
        rows = sorted(phases[phase], reverse=True)[:args.top]
        rows = [r for r in rows if r[0] >= 0.001]
        if not rows:
            continue
        print(f"\n{phase}:")
        for tottime, calls, funcname, filename in rows:
            print(f"  {tottime:>8.3f}s {calls:>9,}x  "
                  f"{filename}:{funcname}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
