"""``repro.obs`` — lightweight, dependency-free observability.

Three primitives, all stdlib-only:

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms with percentile estimates (:mod:`repro.obs.metrics`);
* :class:`span` — nestable context-manager wall-clock timers
  (:mod:`repro.obs.spans`);
* :class:`EventJournal` — an append-only event log with JSON-lines
  export and a replay reader (:mod:`repro.obs.journal`).

Cost model
----------
Observability is **disabled by default**: nothing is recorded unless a
harness explicitly attaches a registry (e.g.
``run_soak(factory, obs=MetricsRegistry())``).  Instrumented hot paths
pay a single ``is None`` check when nothing is attached, so the
benched placement loop is unaffected.  A global off-switch on top of
that — :func:`set_enabled`, or the environment variable
``REPRO_OBS=0`` — turns every attachment into a no-op, guaranteeing a
run is un-instrumented regardless of what callers pass.
"""

from __future__ import annotations

import os
from typing import Optional

from .journal import (EventJournal, JournalEvent, ReplaySummary,
                      iter_jsonl, read_journal, replay)
from .metrics import (DEFAULT_BUCKETS, LATENCY_BUCKETS, Counter, Gauge,
                      Histogram, MetricsRegistry, absorb_snapshot,
                      merge_snapshots)
from .spans import current_span, span

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "LATENCY_BUCKETS",
    "merge_snapshots", "absorb_snapshot",
    "span", "current_span",
    "EventJournal", "JournalEvent", "ReplaySummary",
    "read_journal", "iter_jsonl", "replay",
    "obs_enabled", "set_enabled", "active",
]

#: Environment variable consulted once at import; "0"/"false"/"no"/"off"
#: start the process with observability globally disabled.
OBS_ENV_VAR = "REPRO_OBS"

_enabled = os.environ.get(OBS_ENV_VAR, "1").strip().lower() \
    not in ("0", "false", "no", "off")


def obs_enabled() -> bool:
    """Whether the global observability switch is on."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Flip the global switch (affects *future* attachments only)."""
    global _enabled
    _enabled = bool(flag)


def active(registry: Optional[MetricsRegistry]
           ) -> Optional[MetricsRegistry]:
    """Gate an attachment through the global switch.

    Instrumented components call this once at attach time:
    ``self._obs = active(registry)`` — the result is ``None`` whenever
    the registry is ``None`` or observability is globally disabled, so
    hot paths only ever test ``is None``.
    """
    return registry if (_enabled and registry is not None) else None
