"""Unit tests for the exact optimum oracle (`repro.analysis.optimum`)."""

import pytest

from repro.analysis.optimum import (BRUTE_FORCE_MAX_TENANTS,
                                    OptimumResult, SearchBudget,
                                    assignment_to_placement,
                                    branch_and_bound_optimum,
                                    brute_force_optimum,
                                    certified_lower_bound)
from repro.core.validation import audit, exact_failure_audit
from repro.errors import ConfigurationError


class TestKnownInstances:
    def test_two_half_plus_tenants_need_four_servers(self):
        # Two tenants of load 1.0 at gamma 2: each replica is 0.5, and
        # any shared server would see 0.5 + 0.5 + 0.5 on one failure.
        result = branch_and_bound_optimum([1.0, 1.0], 2)
        assert result.optimum() == 4
        assert result.certified

    def test_tiny_tenants_share_one_server_group(self):
        result = branch_and_bound_optimum([0.05] * 6, 3)
        assert result.optimum() == 3

    def test_single_tenant_gamma_one(self):
        result = branch_and_bound_optimum([0.7], 1)
        assert result.optimum() == 1
        assert result.assignment == ((0,),)

    def test_empty_instance_is_zero_servers(self):
        for solver in (branch_and_bound_optimum, brute_force_optimum):
            result = solver([], 2)
            assert result.optimum() == 0
            assert result.assignment == ()

    def test_interleaving_beats_ffd_seed(self):
        # Four tenants of 0.66 at gamma 2: pairwise-isolated packings
        # need 4 servers; no 3-server packing survives one failure, and
        # the oracle proves it.
        result = branch_and_bound_optimum([0.66] * 4, 2)
        assert result.optimum() == 4

    def test_relaxed_failures_reduce_servers(self):
        # At failures=0 the survivability rows collapse to capacity
        # rows, so the same instance packs tighter.
        strict = branch_and_bound_optimum([0.66] * 4, 2)
        relaxed = branch_and_bound_optimum([0.66] * 4, 2, failures=0)
        assert relaxed.optimum() < strict.optimum()
        assert relaxed.failures == 0

    def test_deterministic(self):
        loads = [0.31, 0.62, 0.17, 0.55, 0.48]
        first = branch_and_bound_optimum(loads, 2)
        second = branch_and_bound_optimum(loads, 2)
        assert first == second


class TestValidation:
    def test_bad_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            branch_and_bound_optimum([0.5], 0)

    def test_negative_failures_rejected(self):
        with pytest.raises(ConfigurationError):
            branch_and_bound_optimum([0.5], 2, failures=-1)

    def test_nonpositive_load_rejected(self):
        with pytest.raises(ConfigurationError):
            branch_and_bound_optimum([0.5, 0.0], 2)

    def test_unpackable_tenant_rejected(self):
        # Replicas of 0.6 imply a worst-case level of 1.2 on the
        # tenant's own servers: no robust packing exists at all.
        with pytest.raises(ConfigurationError, match="cannot be packed"):
            branch_and_bound_optimum([1.2], 2)

    def test_brute_force_size_cap(self):
        loads = [0.1] * (BRUTE_FORCE_MAX_TENANTS + 1)
        with pytest.raises(ConfigurationError, match="exhaustive"):
            brute_force_optimum(loads, 2)

    def test_budget_validation(self):
        with pytest.raises(ConfigurationError):
            SearchBudget(max_nodes=0)
        with pytest.raises(ConfigurationError):
            SearchBudget(max_seconds=0.0)


class TestBudgetInterval:
    LOADS = [0.37, 0.58, 0.23, 0.71, 0.45, 0.62, 0.29, 0.51,
             0.33, 0.66, 0.41, 0.55, 0.27, 0.61, 0.35, 0.49]

    def test_exhausted_budget_certifies_interval(self):
        result = branch_and_bound_optimum(
            self.LOADS, 2, budget=SearchBudget(max_nodes=5))
        assert result.exhausted
        assert not result.certified
        assert result.lower_bound <= result.upper_bound
        assert certified_lower_bound(self.LOADS, 2) \
            <= result.lower_bound
        with pytest.raises(ConfigurationError, match="not certified"):
            result.optimum()
        assert "OPT in [" in str(result)
        assert "exhausted" in str(result)

    def test_interval_packing_is_robust(self):
        result = branch_and_bound_optimum(
            self.LOADS, 2, budget=SearchBudget(max_nodes=5))
        placement = assignment_to_placement(self.LOADS,
                                            result.assignment, 2)
        assert placement.num_servers == result.upper_bound
        assert audit(placement, failures=1).ok

    def test_time_budget_is_honoured(self):
        result = branch_and_bound_optimum(
            self.LOADS, 2, budget=SearchBudget(max_nodes=None,
                                               max_seconds=0.05))
        assert result.lower_bound <= result.upper_bound

    def test_certified_repr(self):
        result = branch_and_bound_optimum([1.0, 1.0], 2)
        text = str(result)
        assert "OPT 4" in text
        assert "exhausted" not in text


class TestMaterialization:
    def test_assignment_round_trips_through_placement(self):
        loads = [0.31, 0.62, 0.17, 0.55]
        result = branch_and_bound_optimum(loads, 2)
        placement = assignment_to_placement(loads, result.assignment, 2)
        assert placement.num_tenants == len(loads)
        assert placement.num_servers == result.optimum()
        assert audit(placement, failures=1).ok
        # The exact redistribution semantics are at least as permissive.
        assert exact_failure_audit(placement, failures=1).ok

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="covers"):
            assignment_to_placement([0.5, 0.5], ((0, 1),), 2)


class TestCertifiedLowerBound:
    def test_weight_bound_only_at_full_budget(self):
        loads = [0.4] * 6
        # At failures == gamma - 1 the Theorem 2 weight bound applies;
        # at a relaxed budget only the capacity bound is valid.
        full = certified_lower_bound(loads, 2)
        relaxed = certified_lower_bound(loads, 2, failures=0)
        assert full >= relaxed >= 1

    def test_never_exceeds_optimum(self):
        loads = [0.52, 0.38, 0.61, 0.44, 0.29]
        for gamma in (1, 2, 3):
            lb = certified_lower_bound(loads, gamma)
            assert lb <= branch_and_bound_optimum(loads, gamma).optimum()


class TestBruteForce:
    def test_agrees_on_a_known_pathology(self):
        # The FFD seed is beatable here; both engines must find it.
        loads = [0.66, 0.66, 0.34, 0.34]
        brute = brute_force_optimum(loads, 2)
        bnb = branch_and_bound_optimum(loads, 2)
        assert brute.optimum() == bnb.optimum()

    def test_result_is_certified_and_audited(self):
        result = brute_force_optimum([0.4, 0.5, 0.6], 2)
        assert result.certified
        assert result.nodes == 0  # no search machinery at all
        placement = assignment_to_placement([0.4, 0.5, 0.6],
                                            result.assignment, 2)
        assert audit(placement, failures=1).ok
