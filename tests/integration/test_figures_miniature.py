"""Integration: the figure harnesses end-to-end at miniature scale.

The benchmarks run these at the default profile; here a tiny profile
exercises the same code paths quickly enough for the test suite.
"""

import pytest

from repro.sim.figures import figure5, figure6
from repro.sim.scenarios import ScaleProfile
from repro.viz import render_figure5, render_figure6


TINY = ScaleProfile(
    name="tiny", sim_tenants=250, sim_runs=2, cluster_servers=6,
    cluster_warmup=5.0, cluster_measure=12.0, theorem2_max_k=31)


@pytest.fixture(scope="module")
def figure6_result():
    return figure6(scale=TINY, base_seed=0)


@pytest.fixture(scope="module")
def figure5_result():
    return figure5(scale=TINY, failure_counts=(1,), seed=0)


class TestFigure6Miniature:
    def test_all_eight_distributions_present(self, figure6_result):
        assert len(figure6_result.rows()) == 8

    def test_rows_have_cis(self, figure6_result):
        for row in figure6_result.rows():
            assert row.ci.n == 2
            assert row.rfi_servers > 0
            assert row.cubefit_servers > 0

    def test_renders_to_svg(self, figure6_result, tmp_path):
        path = render_figure6(figure6_result).save(tmp_path / "f6.svg")
        assert path.stat().st_size > 1000

    def test_str_table(self, figure6_result):
        assert "Figure 6" in str(figure6_result)


class TestFigure5Miniature:
    def test_all_six_bars_present(self, figure5_result):
        rows = figure5_result.rows()
        assert len(rows) == 6  # 2 distributions x 3 configs x 1 failure
        configs = {r.configuration for r in rows}
        assert len(configs) == 3

    def test_latencies_positive(self, figure5_result):
        for row in figure5_result.rows():
            assert row.p99 > 0
            assert row.tenants > 0

    def test_row_lookup(self, figure5_result):
        row = figure5_result.row("uniform", "RFI 2 replicas", 1)
        assert row.failures == 1
        with pytest.raises(KeyError):
            figure5_result.row("uniform", "RFI 2 replicas", 9)

    def test_renders_to_svg(self, figure5_result, tmp_path):
        path = render_figure5(figure5_result).save(tmp_path / "f5.svg")
        assert path.stat().st_size > 1000
