"""Benchmark E13 — Theorem 2 validated end-to-end on adversarial inputs.

:func:`repro.analysis.competitive.adversarial_sequence` constructs the
tenant multiset realizing the competitive-ratio bound's worst OPT bin.
Feeding it to CUBEFIT connects theory to the running code:

* with the first stage disabled (pure cube packing — the construction
  the proof analyzes) the measured servers/OPT ratio lands within ~1%
  of the exact bound from the integer-program solver;
* with the first stage on, m-fit backfilling collapses the ratio to
  ~1.02 — the worst case is an artifact of slot rigidity that the real
  algorithm's first stage removes on this input.
"""

import pytest

from repro.algorithms.lower_bound import weight_lower_bound
from repro.analysis.competitive import (adversarial_sequence,
                                        competitive_ratio_upper_bound)
from repro.core.cubefit import CubeFit
from repro.core.tenant import make_tenants
from repro.core.validation import audit

GAMMA = 2
K = 31
COPIES = 300


@pytest.fixture(scope="module")
def adversarial_loads():
    return adversarial_sequence(GAMMA, K, copies=COPIES)


@pytest.fixture(scope="module")
def bound():
    return float(competitive_ratio_upper_bound(GAMMA, K, "alpha").value)


def run_cubefit(loads, first_stage):
    algo = CubeFit(gamma=GAMMA, num_classes=K, tiny_policy="alpha",
                   first_stage=first_stage)
    algo.consolidate(make_tenants(list(loads)))
    assert audit(algo.placement).ok
    return algo


def test_pure_cube_packing_attains_the_bound(benchmark,
                                             adversarial_loads, bound):
    algo = benchmark.pedantic(
        lambda: run_cubefit(adversarial_loads, first_stage=False),
        rounds=1, iterations=1)
    opt_lb = weight_lower_bound(adversarial_loads, GAMMA, K, "alpha")
    ratio = algo.placement.num_servers / opt_lb
    benchmark.extra_info["measured_ratio"] = round(ratio, 4)
    benchmark.extra_info["theorem2_bound"] = round(bound, 4)
    # Tight from below, never above: the bound is a bound, and the
    # construction realizes >= 93% of it.
    assert ratio <= bound + 1e-9
    assert ratio >= 0.93 * bound


def test_first_stage_defuses_the_adversary(benchmark, adversarial_loads,
                                           bound):
    algo = benchmark.pedantic(
        lambda: run_cubefit(adversarial_loads, first_stage=True),
        rounds=1, iterations=1)
    opt_lb = weight_lower_bound(adversarial_loads, GAMMA, K, "alpha")
    ratio = algo.placement.num_servers / opt_lb
    benchmark.extra_info["measured_ratio"] = round(ratio, 4)
    assert ratio < 1.2
