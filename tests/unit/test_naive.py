"""Unit tests for the checked baseline heuristics."""

import pytest

from repro.algorithms.naive import (RobustBestFit, RobustFirstFit,
                                    RobustNextFit)
from repro.core.tenant import Tenant, make_tenants
from repro.core.validation import audit
from repro.errors import ConfigurationError


ALL = [RobustBestFit, RobustFirstFit, RobustNextFit]


@pytest.mark.parametrize("cls", ALL)
@pytest.mark.parametrize("gamma", [2, 3])
def test_default_failure_budget_is_gamma_minus_one(cls, gamma):
    algo = cls(gamma=gamma)
    assert algo.failures == gamma - 1


@pytest.mark.parametrize("cls", ALL)
@pytest.mark.parametrize("gamma", [2, 3])
def test_robustness_random_loads(cls, gamma, seeded_tenants):
    algo = cls(gamma=gamma)
    algo.consolidate(seeded_tenants(200, seed=53))
    assert audit(algo.placement, failures=algo.failures).ok


@pytest.mark.parametrize("cls", ALL)
def test_custom_failure_budget(cls, seeded_tenants):
    algo = cls(gamma=2, failures=1)
    algo.consolidate(seeded_tenants(100, 0.01, 0.5, seed=59))
    assert audit(algo.placement, failures=1).ok


def test_negative_failures_rejected():
    with pytest.raises(ConfigurationError):
        RobustBestFit(gamma=2, failures=-1)


def test_firstfit_prefers_lowest_id():
    algo = RobustFirstFit(gamma=2)
    algo.consolidate(make_tenants([0.2, 0.2]))
    homes = algo.placement.tenant_servers(1)
    # Tenant 1 should reuse servers 0 and 1 (lowest feasible ids).
    assert set(homes.values()) == {0, 1}


def test_bestfit_prefers_fullest():
    algo = RobustBestFit(gamma=2)
    algo.consolidate(make_tenants([0.4, 0.1, 0.1]))
    # The small tenants stack onto the fullest feasible servers.
    assert algo.placement.num_nonempty_servers == 2


def test_nextfit_window_validation():
    with pytest.raises(ConfigurationError):
        RobustNextFit(gamma=3, window=2)


def test_nextfit_uses_recent_servers():
    algo = RobustNextFit(gamma=2)
    algo.consolidate(make_tenants([0.1] * 10))
    # With a window of 2*gamma = 4 and tiny tenants, the packing should
    # heavily reuse recent servers instead of opening one per replica.
    assert algo.placement.num_nonempty_servers <= 8


def test_nextfit_opens_new_when_window_is_full():
    algo = RobustNextFit(gamma=2)
    algo.consolidate(make_tenants([0.9, 0.9, 0.9]))
    # Class-size loads cannot share servers robustly: 6 servers needed.
    assert algo.placement.num_nonempty_servers == 6
