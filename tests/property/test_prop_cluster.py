"""Property-based tests for the cluster substrate.

The invariant under chaos: queries are conserved — everything a client
issues is eventually completed, dropped (no surviving replica), or
still in flight when the clock stops — across arbitrary failure and
recovery schedules.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster.datastore import DataStore
from repro.cluster.engine import Simulator
from repro.cluster.latency import LatencyRecorder
from repro.cluster.machine import Machine
from repro.cluster.client import TenantClient
from repro.cluster.routing import ReplicaRouter
from repro.workloads.tpch import QueryStream


@st.composite
def topologies(draw):
    n_machines = draw(st.integers(min_value=2, max_value=5))
    n_tenants = draw(st.integers(min_value=1, max_value=6))
    homes = {}
    for tid in range(n_tenants):
        gamma = draw(st.integers(min_value=1,
                                 max_value=min(2, n_machines)))
        ids = draw(st.permutations(range(n_machines)))
        homes[tid] = list(ids[:gamma])
    events = draw(st.lists(
        st.tuples(st.floats(min_value=1.0, max_value=25.0),
                  st.integers(min_value=0, max_value=n_machines - 1)),
        max_size=4))
    return n_machines, homes, events


@given(topology=topologies(), seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_query_conservation_under_failures(topology, seed):
    n_machines, homes, failure_events = topology
    sim = Simulator()
    machines = {m: Machine(sim, m, cores=2) for m in range(n_machines)}
    router = ReplicaRouter(sim, machines, homes,
                           DataStore(warm_after=0))
    recorder = LatencyRecorder()
    rng = np.random.default_rng(seed)
    clients = []
    for tid in homes:
        client = TenantClient(sim, tid, tenant_id=tid, router=router,
                              stream=QueryStream(rng), recorder=recorder,
                              rng=rng, think_mean=0.2)
        client.start(initial_delay=0.0)
        clients.append(client)
    for at, machine_id in failure_events:
        sim.schedule_at(at, lambda m=machine_id: router.fail_machine(m))
    sim.run_until(30.0)

    issued = sum(c.queries_issued for c in clients)
    accounted = (recorder.total_completed + recorder.dropped
                 + router.total_inflight())
    # Re-issued reads are the same logical query, so they do not add to
    # `issued`; conservation must hold exactly.
    assert accounted == issued, (
        f"issued={issued} completed={recorder.total_completed} "
        f"dropped={recorder.dropped} inflight={router.total_inflight()}")


@given(topology=topologies(), seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_no_completions_from_failed_machines(topology, seed):
    n_machines, homes, failure_events = topology
    sim = Simulator()
    machines = {m: Machine(sim, m, cores=2) for m in range(n_machines)}
    router = ReplicaRouter(sim, machines, homes,
                           DataStore(warm_after=0))
    recorder = LatencyRecorder()
    rng = np.random.default_rng(seed)
    for tid in homes:
        TenantClient(sim, tid, tenant_id=tid, router=router,
                     stream=QueryStream(rng), recorder=recorder,
                     rng=rng, think_mean=0.2).start(initial_delay=0.0)
    fail_times = {}
    for at, machine_id in failure_events:
        fail_times.setdefault(machine_id, at)
        sim.schedule_at(at, lambda m=machine_id: router.fail_machine(m))
    sim.run_until(30.0)
    for sample in recorder._samples:
        failed_at = fail_times.get(sample.server_id)
        if failed_at is not None:
            # A query attributed to a machine must have completed
            # before that machine failed.
            assert sample.completed_at <= failed_at + 1e-9
