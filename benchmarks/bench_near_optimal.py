"""Benchmark E8 — near-optimality against the *exact* offline optimum.

The paper claims CUBEFIT "produces near-optimal tenant allocation when
the number of tenants is large" and proves a worst-case ratio below
1.64 (Theorem 2).  This bench measures the actual gap two ways:

* on **small** instances, against the exact branch-and-bound optimum
  (`repro.algorithms.offline.optimal_servers`, cross-checked against
  the certified exact-rational oracle in `repro.analysis.optimum`);
* on **large** instances, against the weight-based lower bound on OPT
  (Theorem 2 statement II), where exhaustive search is impossible —
  plus the certified `[LB, UB]` interval the budgeted oracle still
  proves at sizes exhaustive search cannot touch.
"""

import numpy as np
import pytest

from repro.algorithms.lower_bound import best_lower_bound
from repro.algorithms.offline import (OfflineFirstFitDecreasing,
                                      optimal_servers)
from repro.analysis.optimum import SearchBudget, branch_and_bound_optimum
from repro.core.cubefit import CubeFit
from repro.core.tenant import make_tenants
from repro.workloads.distributions import UniformLoad
from repro.workloads.sequences import generate_sequence


def small_instances(n_instances=6, n_tenants=8, seed=0):
    rng = np.random.default_rng(seed)
    return [list(rng.uniform(0.1, 0.9, n_tenants))
            for _ in range(n_instances)]


def test_exact_optimum_small_instances(benchmark):
    instances = small_instances()

    def run():
        return [optimal_servers(loads, gamma=2) for loads in instances]

    optima = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = []
    for loads, opt in zip(instances, optima):
        algo = CubeFit(gamma=2, num_classes=5)
        algo.consolidate(make_tenants(loads))
        ratios.append(algo.placement.num_servers / opt)
    benchmark.extra_info["mean_ratio_vs_opt"] = round(
        sum(ratios) / len(ratios), 3)
    # At 8 tenants the cube structure is mostly unfilled, so the gap is
    # large; the point of this bench is the measured number, with the
    # asymptotic picture covered below.
    assert all(r >= 1.0 for r in ratios)


def test_offline_ffd_close_to_optimum(benchmark):
    instances = small_instances(seed=1)

    def run():
        gaps = []
        for loads in instances:
            opt = optimal_servers(loads, gamma=2)
            ffd = OfflineFirstFitDecreasing(gamma=2)
            ffd.consolidate(make_tenants(loads))
            gaps.append(ffd.placement.num_servers - opt)
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ffd_extra_servers"] = gaps
    assert max(gaps) <= 2


def test_certified_oracle_agrees_with_float_search(benchmark):
    """The exact-rational oracle certifies what the float search found
    — and reports how much of its budget the certification costs."""
    instances = small_instances()

    def run():
        return [branch_and_bound_optimum(loads, 2)
                for loads in instances]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for loads, result in zip(instances, results):
        assert result.certified
        assert result.optimum() == optimal_servers(loads, gamma=2)
    benchmark.extra_info["nodes"] = [r.nodes for r in results]


def test_budgeted_oracle_interval_at_scale(benchmark):
    """Beyond exhaustive reach (24 tenants), the budgeted oracle still
    returns a certified [LB, UB] interval bracketing CubeFit."""
    rng = np.random.default_rng(2)
    loads = list(rng.uniform(0.1, 0.9, 24))

    def run():
        return branch_and_bound_optimum(
            loads, 2, budget=SearchBudget(max_nodes=50_000))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    algo = CubeFit(gamma=2, num_classes=5)
    algo.consolidate(make_tenants(loads))
    assert result.lower_bound <= result.upper_bound
    assert algo.placement.num_servers >= result.lower_bound
    benchmark.extra_info["interval"] = [result.lower_bound,
                                        result.upper_bound]
    benchmark.extra_info["cubefit_servers"] = algo.placement.num_servers


@pytest.mark.parametrize("n", [2_000, 8_000])
def test_cubefit_gap_to_lower_bound_shrinks(benchmark, n):
    """The asymptotic near-optimality claim: the ratio of CubeFit's
    servers to the OPT lower bound falls well below Theorem 2's
    worst-case as n grows."""
    seq = generate_sequence(UniformLoad(0.3), n, seed=0)

    def run():
        algo = CubeFit(gamma=2, num_classes=10)
        algo.consolidate(seq)
        return algo

    algo = benchmark.pedantic(run, rounds=1, iterations=1)
    lb = best_lower_bound(seq.loads, 2, 10)
    ratio = algo.placement.num_servers / lb
    benchmark.extra_info["ratio_vs_lower_bound"] = round(ratio, 3)
    assert ratio < 1.6  # comfortably below the worst-case bound
