"""Plain-text and CSV rendering of experiment results.

A single tiny table model shared by the CLI output, the benchmark
`extra_info`, and CSV export, so every experiment's numbers can leave
the process in a machine-readable form.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Sequence, Union

from ..errors import ConfigurationError

PathLike = Union[str, Path]


@dataclass
class Table:
    """An ordered grid with a title; render as text, markdown, or CSV."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns")
        self.rows.append(values)

    # ------------------------------------------------------------------
    def _formatted(self) -> List[List[str]]:
        out = []
        for row in self.rows:
            formatted = []
            for value in row:
                if isinstance(value, float):
                    formatted.append(f"{value:,.2f}")
                elif isinstance(value, int):
                    formatted.append(f"{value:,}")
                else:
                    formatted.append(str(value))
            out.append(formatted)
        return out

    def to_text(self) -> str:
        """Fixed-width table (what the CLI prints)."""
        body = self._formatted()
        widths = [len(c) for c in self.columns]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title] if self.title else []
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.rjust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        body = self._formatted()
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in body:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_csv(self, path: Optional[PathLike] = None) -> str:
        """CSV text; also written to ``path`` when given."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def __str__(self) -> str:
        return self.to_text()


def figure5_table(result) -> Table:
    """Tabulate a :class:`repro.sim.figures.Figure5Result`."""
    table = Table(
        title=f"Figure 5 (SLA {result.sla_seconds:.0f}s p99)",
        columns=["distribution", "configuration", "failures", "p99_s",
                 "meets_sla", "dropped"])
    for row in result.rows():
        table.add_row(row.distribution, row.configuration, row.failures,
                      round(row.p99, 3), row.meets_sla, row.dropped)
    return table


def figure6_table(result) -> Table:
    """Tabulate a :class:`repro.sim.figures.Figure6Result`."""
    table = Table(
        title=f"Figure 6 ({result.tenants} tenants, {result.runs} runs)",
        columns=["distribution", "savings_percent", "ci_half_width",
                 "rfi_servers", "cubefit_servers"])
    for row in result.rows():
        table.add_row(row.distribution, round(row.savings_percent, 2),
                      round(row.ci.half_width, 2),
                      round(row.rfi_servers, 1),
                      round(row.cubefit_servers, 1))
    return table


def table1_table(result) -> Table:
    """Tabulate a :class:`repro.sim.figures.Table1Result`."""
    table = Table(
        title=f"Table I ({result.tenants} tenants, {result.runs} runs)",
        columns=["distribution", "rfi_servers", "cubefit_servers",
                 "servers_saved", "yearly_savings_usd",
                 "rfi_servers_50k", "servers_saved_50k",
                 "yearly_savings_usd_50k"])
    for row in result.rows():
        table.add_row(row.distribution, round(row.rfi_servers, 1),
                      round(row.cubefit_servers, 1),
                      round(row.servers_saved, 1),
                      round(row.yearly_savings_usd),
                      round(row.rfi_servers_50k),
                      round(row.servers_saved_50k),
                      round(row.yearly_savings_usd_50k))
    return table


def metrics_table(snapshot) -> Table:
    """Tabulate a :meth:`repro.obs.MetricsRegistry.snapshot` mapping.

    One row per metric: counters show their running total, gauges the
    last set value, histograms their count / mean / p50 / p99.
    """
    table = Table(
        title="Metrics snapshot",
        columns=["metric", "kind", "count", "value", "mean",
                 "p50", "p99"])
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type", "?")
        if kind == "histogram":
            table.add_row(name, kind, data["count"], "",
                          f"{float(data['mean']):.6g}",
                          f"{float(data['p50']):.6g}",
                          f"{float(data['p99']):.6g}")
        else:
            table.add_row(name, kind, "", data.get("value", ""),
                          "", "", "")
    return table


def theorem2_table(result) -> Table:
    """Tabulate a :class:`repro.sim.figures.Theorem2Result`."""
    table = Table(title="Theorem 2 bounds",
                  columns=["gamma", "K", "alpha_K", "bound"])
    for row in result.rows():
        table.add_row(row.gamma, row.num_classes, row.alpha,
                      round(row.ratio, 6))
    return table
