"""SLA-adaptive replication: violation-probability curves and gamma maps.

The paper fixes one replication factor ``gamma`` for the whole fleet.
With the placement core accepting per-tenant budgets
(:class:`repro.algorithms.mixed.MixedGammaFirstFit`), the natural
question is *which* gamma each tenant actually needs — replication is
paid for in servers, so the cheapest gamma that still meets a tenant's
availability SLA is the right one.

The model: servers fail independently within a recovery window with
probability ``failure_prob``.  A tenant of load ``x`` replicated
``gamma`` ways has its load re-shared among survivors when ``k`` of its
servers fail (the exact-redistribution semantics of
:meth:`repro.core.placement.PlacementState.exact_failover_load`), so
the tenant's SLA is violated when

* all ``gamma`` replicas are lost (``k == gamma``), or
* a surviving replica's share ``x / (gamma - k)`` exceeds the
  degradation threshold ``overload`` — the per-replica load beyond
  which the tenant's queries start missing their latency target.

``p_violate`` sums the binomial failure probabilities over the
violating ``k``.  It is monotone non-decreasing in load, but *not*
always decreasing in gamma: thin replicas help only if the survivors
can absorb the re-shared load, so an under-provisioned heavy tenant can
be worse off at gamma 2 than unreplicated (splitting doubles the
chance that *some* server fails while each survivor still overloads).
:func:`gamma_map` therefore scans the allowed gammas cheapest-first and
keeps the first that meets the target — falling back to the most
reliable choice when none does.

Everything here is closed-form and deterministic, which is what lets
the seed-stability suite pin the curves byte-for-byte
(``benchmarks/expected/sla_gamma.json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from ..core.tenant import LOAD_EPS, Tenant
from ..errors import ConfigurationError

#: Per-server failure probability within one recovery window.  The
#: paper's Section V failure experiments kill ~5% of the fleet.
DEFAULT_FAILURE_PROB = 0.05

#: Per-replica load beyond which a surviving replica is considered
#: degraded.  0.75 leaves the 25% headroom the interleaving literature
#: (RFI's mu = 0.85, minus its own reserve) keeps for failover bursts.
DEFAULT_OVERLOAD = 0.75

#: Replication factors an SLA policy may choose from, cheapest first.
DEFAULT_GAMMAS: Tuple[int, ...] = (1, 2, 3)


@dataclass(frozen=True)
class SlaPolicy:
    """Parameters of the violation model and the allowed gamma menu."""

    failure_prob: float = DEFAULT_FAILURE_PROB
    overload: float = DEFAULT_OVERLOAD
    gammas: Tuple[int, ...] = DEFAULT_GAMMAS

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_prob < 1.0:
            raise ConfigurationError(
                f"failure_prob must be in [0, 1), got "
                f"{self.failure_prob!r}")
        if self.overload <= 0.0:
            raise ConfigurationError(
                f"overload must be positive, got {self.overload!r}")
        if not self.gammas:
            raise ConfigurationError("gammas must be non-empty")
        if any(g < 1 for g in self.gammas):
            raise ConfigurationError(
                f"every gamma must be >= 1, got {self.gammas}")
        if tuple(sorted(self.gammas)) != tuple(self.gammas):
            raise ConfigurationError(
                f"gammas must be sorted ascending (cheapest first), "
                f"got {self.gammas}")


DEFAULT_POLICY = SlaPolicy()


def p_violate(load: float, gamma: int,
              policy: SlaPolicy = DEFAULT_POLICY) -> float:
    """Probability that a tenant's SLA is violated in one window.

    Closed-form sum of ``Binomial(gamma, failure_prob)`` over the
    violating failure counts (total loss, or a survivor share above
    ``policy.overload``).  Monotone non-decreasing in ``load``.
    """
    if not load > 0.0:
        raise ConfigurationError(
            f"load must be positive, got {load!r}")
    if gamma < 1:
        raise ConfigurationError(f"gamma must be >= 1, got {gamma}")
    p = policy.failure_prob
    if p == 0.0:
        return 0.0
    q = 1.0 - p
    total = 0.0
    for k in range(1, gamma + 1):
        survivors = gamma - k
        if survivors == 0:
            violated = True  # every replica lost
        else:
            violated = load / survivors > policy.overload + LOAD_EPS
        if violated:
            total += comb(gamma, k) * p ** k * q ** survivors
    return total


def p_violate_curve(loads: Sequence[float], gamma: int,
                    policy: SlaPolicy = DEFAULT_POLICY) -> List[float]:
    """``p_violate`` over a grid of loads (for tables and snapshots)."""
    return [p_violate(load, gamma, policy) for load in loads]


def cheapest_gamma(load: float, target: float,
                   policy: SlaPolicy = DEFAULT_POLICY) -> int:
    """Smallest allowed gamma with ``p_violate <= target``.

    When no allowed gamma meets the target (the tenant is too heavy or
    the target too strict), returns the most *reliable* allowed choice
    — the one minimizing ``p_violate``, ties to the cheaper gamma — so
    the map always degrades to best-effort instead of failing.
    """
    if not 0.0 < target <= 1.0:
        raise ConfigurationError(
            f"SLA target must be in (0, 1], got {target!r}")
    best_gamma = None
    best_p = None
    for gamma in policy.gammas:
        p = p_violate(load, gamma, policy)
        if p <= target:
            return gamma
        if best_p is None or p < best_p - 1e-15:
            best_gamma, best_p = gamma, p
    return best_gamma


def gamma_map(tenants: Iterable[Union[Tenant, Tuple[int, float]]],
              targets: Union[float, Mapping[int, float]],
              policy: SlaPolicy = DEFAULT_POLICY) -> Dict[int, int]:
    """Per-tenant replication plan meeting each tenant's SLA cheaply.

    ``tenants`` yields :class:`~repro.core.tenant.Tenant` objects or
    ``(tenant_id, load)`` pairs; ``targets`` is one fleet-wide violation
    ceiling or a per-tenant mapping (every tenant must be covered).
    The result maps ``tenant_id`` to the gamma
    :func:`cheapest_gamma` picks, and plugs directly into
    :class:`repro.algorithms.mixed.MixedGammaFirstFit`.
    """
    plan: Dict[int, int] = {}
    for item in tenants:
        if isinstance(item, Tenant):
            tenant_id, load = item.tenant_id, item.load
        else:
            tenant_id, load = item
        if isinstance(targets, Mapping):
            try:
                target = targets[tenant_id]
            except KeyError:
                raise ConfigurationError(
                    f"no SLA target for tenant {tenant_id}") from None
        else:
            target = targets
        plan[tenant_id] = cheapest_gamma(load, target, policy)
    return plan
