"""Fleet-scale soak: route, execute shards in parallel, verify.

The soak is the fleet's bench-and-drill harness.  It runs in three
phases, shaped so that the result is **bit-identical at any ``jobs``
setting**:

1. **Route.**  The whole admission stream goes through the batched
   :class:`~repro.fleet.router.PlacementRouter` queue.  Routing uses
   only the router's own estimates, so the per-shard sub-streams are
   fixed before any shard exists.
2. **Execute.**  Each shard's sub-stream runs in a
   :func:`repro.par.pmap` worker that owns the shard's
   :class:`~repro.fleet.shard.ShardController` (and therefore its WAL
   + checkpoint directory) exclusively.  Per-shard work is fully
   self-contained; ``jobs`` only changes wall-clock time.  When the
   config names a crash shard, that worker SIGKILL-simulates its
   controller mid-stream (abandoned with no shutdown), recovers from
   the shard's own WAL + checkpoint, verifies every acked placement
   came back replica-for-replica, and finishes its stream on the
   recovered controller.
3. **Spill.**  Tenants refused by their budgeted shard come back and
   are re-admitted serially through a live
   :class:`~repro.fleet.fleet.PlacementFleet` (router spillover, ring
   order).  Unbudgeted fleets never spill.

Latency is measured, not inferred: when an obs registry is attached,
the per-operation ``placement.place.seconds`` histograms
(:data:`~repro.obs.LATENCY_BUCKETS`) from every worker are absorbed in
shard order and the soak reports their p50/p99.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.tenant import Tenant
from ..errors import ConfigurationError, ShardSaturatedError
from ..obs import LATENCY_BUCKETS, active
from ..par import pmap
from ..workloads.distributions import UniformLoad
from ..workloads.sequences import generate_sequence
from .fleet import PlacementFleet, write_fleet_meta
from .router import POLICIES, PlacementRouter
from .shard import ShardController, shard_directory

PathLike = Union[str, Path]


@dataclass(frozen=True)
class FleetSoakConfig:
    """Parameters of one fleet soak."""

    shards: int = 4
    tenants: int = 10000
    policy: str = "hash"
    gamma: int = 2
    seed: int = 0
    batch_size: int = 256
    #: Upper bound of the uniform tenant-load distribution.
    max_load: float = 0.6
    max_servers_per_shard: Optional[int] = None
    #: Shard to SIGKILL-simulate mid-stream (``None`` disables the
    #: crash drill; the default crashes shard 0).
    crash_shard: Optional[int] = 0
    segment_records: int = 512

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}")
        if self.tenants < 1:
            raise ConfigurationError(
                f"tenants must be >= 1, got {self.tenants}")
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; known: {POLICIES}")
        if self.crash_shard is not None and not (
                0 <= self.crash_shard < self.shards):
            raise ConfigurationError(
                f"crash_shard must be in [0, {self.shards}), got "
                f"{self.crash_shard}")


@dataclass
class ShardOutcome:
    """What one shard's worker did (picklable; crosses the pool)."""

    shard_id: int
    tenants: int
    servers: int
    nonempty_servers: int
    total_load: float
    utilization: float
    audit_ok: bool
    min_slack: float
    wal_next_seq: int
    #: sha256 over the sorted ``tenant -> [servers]`` mapping — the
    #: deterministic identity of this shard's packing.
    fingerprint: str
    elapsed: float
    #: ``(tenant_id, load)`` pairs the shard refused (budget).
    spilled: List[Tuple[int, float]] = field(default_factory=list)
    #: Crash-drill evidence, when this shard was the victim.
    crash: Optional[Dict[str, object]] = None


@dataclass
class FleetSoakResult:
    """Aggregate of one fleet soak."""

    config: FleetSoakConfig
    outcomes: List[ShardOutcome]
    placed: int
    spill_placed: int
    spill_unplaced: int
    servers: int
    utilization: float
    wall_seconds: float
    tenants_per_second: float
    #: Sum over shards of (tenants / shard seconds): the rate the fleet
    #: sustains when shards run on independent cores.
    aggregate_tenants_per_second: float
    latency_p50: Optional[float]
    latency_p99: Optional[float]
    router: Dict[str, object]

    @property
    def audits_ok(self) -> bool:
        return all(o.audit_ok for o in self.outcomes)

    @property
    def crash_outcome(self) -> Optional[ShardOutcome]:
        for outcome in self.outcomes:
            if outcome.crash is not None:
                return outcome
        return None

    @property
    def crash_divergences(self) -> List[str]:
        outcome = self.crash_outcome
        if outcome is None:
            return []
        return list(outcome.crash["divergences"])

    @property
    def ok(self) -> bool:
        return (self.audits_ok and not self.crash_divergences
                and self.placed + self.spill_placed
                + self.spill_unplaced == self.config.tenants)

    def fingerprint(self) -> str:
        """Deterministic identity of the whole run (jobs-invariant)."""
        digest = hashlib.sha256()
        for outcome in self.outcomes:
            digest.update(outcome.fingerprint.encode("ascii"))
        digest.update(json.dumps(self.router,
                                 sort_keys=True).encode("utf-8"))
        return digest.hexdigest()

    def __str__(self) -> str:
        cfg = self.config
        lines = [
            f"Fleet soak: {cfg.tenants} tenants over {cfg.shards} "
            f"shard(s), policy {cfg.policy}, gamma {cfg.gamma}, "
            f"seed {cfg.seed}",
            f"  placed {self.placed} (+{self.spill_placed} spilled, "
            f"{self.spill_unplaced} refused) on {self.servers} "
            f"servers at {self.utilization:.4f} utilization",
            f"  wall {self.wall_seconds:.2f}s = "
            f"{self.tenants_per_second:,.0f} tenants/s; aggregate "
            f"{self.aggregate_tenants_per_second:,.0f} tenants/s "
            f"across shards",
        ]
        if self.latency_p99 is not None:
            lines.append(
                f"  place latency p50 {self.latency_p50 * 1e6:.0f}us, "
                f"p99 {self.latency_p99 * 1e6:.0f}us")
        outcome = self.crash_outcome
        if outcome is not None:
            crash = outcome.crash
            verdict = ("clean" if not crash["divergences"]
                       else f"{len(crash['divergences'])} DIVERGENCES")
            lines.append(
                f"  crash drill: shard {outcome.shard_id} killed after "
                f"{crash['acked']} acked placements, recovered "
                f"replica-for-replica: {verdict}")
        lines.append(
            f"  audits: "
            f"{'all clean' if self.audits_ok else 'VIOLATED'} "
            f"({sum(o.audit_ok for o in self.outcomes)}/"
            f"{len(self.outcomes)} shards)")
        return "\n".join(lines)


def _packing_fingerprint(acked: Dict[int, List[int]]) -> str:
    canon = json.dumps(sorted(acked.items()), separators=(",", ":"))
    return hashlib.sha256(canon.encode("ascii")).hexdigest()


def _run_shard(item, registry) -> ShardOutcome:
    """Worker body: run one shard's sub-stream to completion.

    ``item`` is ``(shard_id, root, gamma, max_servers,
    segment_records, assignment, crash_at)`` where ``assignment`` is
    the routed ``(tenant_id, load)`` sub-stream and ``crash_at`` is an
    index into it (-1: no crash drill on this shard).
    """
    (shard_id, root, gamma, max_servers, segment_records,
     assignment, crash_at) = item

    def fresh() -> ShardController:
        return ShardController(
            shard_id, shard_directory(root, shard_id), gamma=gamma,
            max_servers=max_servers, obs=registry,
            segment_records=segment_records)

    started = time.perf_counter()
    controller = fresh()
    acked: Dict[int, List[int]] = {}
    spilled: List[Tuple[int, float]] = []
    crash_report: Optional[Dict[str, object]] = None
    for index, (tenant_id, load) in enumerate(assignment):
        if index == crash_at:
            # SIGKILL semantics: abandon the controller with no
            # shutdown, then recover from the shard's own WAL +
            # checkpoint and verify every acked placement survived.
            controller.crash()
            controller = fresh()
            recovered = controller.recovered_state
            divergences: List[str] = []
            placement = controller.placement
            if placement.num_tenants != len(acked):
                divergences.append(
                    f"recovered {placement.num_tenants} tenants, "
                    f"acked {len(acked)}")
            for tid, servers in acked.items():
                by_index = placement.tenant_servers(tid)
                got = [by_index[i] for i in sorted(by_index)]
                if got != servers:
                    divergences.append(
                        f"tenant {tid}: acked {servers}, "
                        f"recovered {got}")
            crash_report = {
                "at": index,
                "acked": len(acked),
                "divergences": divergences,
                "audit_ok": (recovered is not None
                             and recovered.audit.ok),
                "records_replayed": (
                    0 if recovered is None
                    else recovered.records_replayed),
                "checkpoint_seq": (
                    0 if recovered is None
                    else recovered.checkpoint_seq),
            }
        try:
            servers = controller.place(Tenant(tenant_id, load))
        except ShardSaturatedError:
            spilled.append((tenant_id, load))
            continue
        acked[tenant_id] = list(servers)
    controller.checkpoint_and_compact()
    report = controller.audit()
    elapsed = time.perf_counter() - started
    placement = controller.placement
    outcome = ShardOutcome(
        shard_id=shard_id,
        tenants=placement.num_tenants,
        servers=placement.num_servers,
        nonempty_servers=placement.num_nonempty_servers,
        total_load=placement.total_load(),
        utilization=placement.utilization(),
        audit_ok=report.ok,
        min_slack=report.min_slack,
        wal_next_seq=controller.store.wal.next_seq,
        fingerprint=_packing_fingerprint(acked),
        elapsed=elapsed,
        spilled=spilled,
        crash=crash_report,
    )
    controller.close()
    return outcome


def run_fleet_soak(root: PathLike,
                   config: Optional[FleetSoakConfig] = None,
                   obs=None, jobs: int = 1) -> FleetSoakResult:
    """Run a fleet soak under ``root``; see the module docstring."""
    cfg = config if config is not None else FleetSoakConfig()
    gated = active(obs)
    root = Path(root)
    sequence = generate_sequence(UniformLoad(cfg.max_load),
                                 cfg.tenants, seed=cfg.seed)
    load_budget = (None if cfg.max_servers_per_shard is None
                   else float(cfg.max_servers_per_shard))
    router = PlacementRouter(cfg.shards, policy=cfg.policy,
                             seed=cfg.seed, batch_size=cfg.batch_size,
                             load_budget=load_budget)
    routed = router.route_stream(list(sequence))
    assignments: Dict[int, List[Tuple[int, float]]] = {
        shard: [] for shard in range(cfg.shards)}
    for shard, tenant in routed:
        assignments[shard].append((tenant.tenant_id, tenant.load))
    write_fleet_meta(root, shards=cfg.shards, gamma=cfg.gamma,
                     capacity=1.0, policy=cfg.policy, seed=cfg.seed,
                     max_servers_per_shard=cfg.max_servers_per_shard)

    items = []
    for shard in range(cfg.shards):
        assignment = assignments[shard]
        crash_at = -1
        if cfg.crash_shard == shard and assignment:
            crash_at = max(1, len(assignment) // 2)
        items.append((shard, str(root), cfg.gamma,
                      cfg.max_servers_per_shard, cfg.segment_records,
                      assignment, crash_at))

    started = time.perf_counter()
    outcomes: List[ShardOutcome] = pmap(_run_shard, items, jobs=jobs,
                                        obs=gated)

    spill_placed = spill_unplaced = 0
    spilled = [pair for outcome in outcomes
               for pair in outcome.spilled]
    if spilled:
        with PlacementFleet(root, obs=gated) as fleet:
            for tenant_id, load in spilled:
                try:
                    fleet.place(Tenant(tenant_id, load))
                except ShardSaturatedError:
                    spill_unplaced += 1
                else:
                    spill_placed += 1
            fleet.checkpoint_all()
            servers = fleet.status()["servers"]
            total_load = sum(c.total_load for c in fleet.shards)
            nonempty = sum(c.placement.num_nonempty_servers
                           for c in fleet.shards)
            audits = fleet.audit_all()
            for outcome, controller in zip(outcomes, fleet.shards):
                outcome.audit_ok = audits[controller.shard_id].ok
            router_snapshot = fleet.router.snapshot()
        utilization = (total_load / nonempty) if nonempty else 0.0
    else:
        servers = sum(o.servers for o in outcomes)
        total_load = sum(o.total_load for o in outcomes)
        nonempty = sum(o.nonempty_servers for o in outcomes)
        utilization = (total_load / nonempty) if nonempty else 0.0
        router_snapshot = router.snapshot()
    wall = time.perf_counter() - started

    placed = sum(o.tenants for o in outcomes)
    aggregate = sum(o.tenants / o.elapsed for o in outcomes
                    if o.elapsed > 0 and o.tenants)
    p50 = p99 = None
    if gated is not None:
        histogram = gated.histogram("placement.place.seconds",
                                    buckets=LATENCY_BUCKETS)
        if histogram.count:
            p50 = histogram.percentile(50.0)
            p99 = histogram.percentile(99.0)
    return FleetSoakResult(
        config=cfg, outcomes=outcomes, placed=placed,
        spill_placed=spill_placed, spill_unplaced=spill_unplaced,
        servers=servers, utilization=utilization,
        wall_seconds=wall,
        tenants_per_second=(cfg.tenants / wall if wall > 0 else 0.0),
        aggregate_tenants_per_second=aggregate,
        latency_p50=p50, latency_p99=p99, router=router_snapshot)
