"""Server (bin) model used by the packing core.

Each server has unit capacity (Section II).  A server hosts replicas of
distinct tenants; its *level* is the total load of hosted replicas.  The
packing algorithms additionally annotate servers with algorithm-specific
metadata (e.g. the CUBEFIT bin class) through the :attr:`Server.tags`
mapping so that the core model stays algorithm-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Tuple

from ..errors import CapacityError, PlacementError
from .tenant import LOAD_EPS, Replica

#: Default (normalized) server capacity.
UNIT_CAPACITY = 1.0

ReplicaKey = Tuple[int, int]


@dataclass
class Server:
    """A single server machine with unit capacity.

    Mutating operations are intended to be driven through
    :class:`repro.core.placement.PlacementState`, which also maintains the
    cross-server shared-load index required for robustness accounting.
    """

    server_id: int
    capacity: float = UNIT_CAPACITY
    #: Replicas hosted by this server, keyed by ``(tenant_id, index)``.
    replicas: Dict[ReplicaKey, Replica] = field(default_factory=dict)
    #: Algorithm-specific annotations (e.g. CUBEFIT bin class, maturity).
    tags: Dict[str, Any] = field(default_factory=dict)
    _load: float = 0.0
    #: Ids of hosted tenants (each tenant has at most one replica per
    #: server, so a set mirrors ``replicas`` exactly); kept in sync by
    #: :meth:`add`/:meth:`remove` for O(1) distinctness checks.
    _tenants: set = field(default_factory=set)

    @property
    def load(self) -> float:
        """Total load of replicas currently hosted (the bin *level*)."""
        return self._load

    @property
    def free(self) -> float:
        """Unused capacity (before any failover reservation)."""
        return self.capacity - self._load

    @property
    def tenant_ids(self) -> set:
        """Ids of tenants with a replica on this server (a copy)."""
        return set(self._tenants)

    def hosts_tenant(self, tenant_id: int) -> bool:
        """Whether any replica of ``tenant_id`` lives here."""
        return tenant_id in self._tenants

    def add(self, replica: Replica) -> None:
        """Host ``replica``.

        Raises
        ------
        PlacementError
            If a replica of the same tenant is already hosted here (the
            problem requires gamma *distinct* servers per tenant).
        CapacityError
            If hosting the replica would exceed the server capacity.
        """
        if replica.tenant_id in self._tenants:
            raise PlacementError(
                f"server {self.server_id} already hosts a replica of "
                f"tenant {replica.tenant_id}")
        if self._load + replica.load > self.capacity + LOAD_EPS:
            raise CapacityError(
                f"server {self.server_id}: load {self._load:.6f} + replica "
                f"{replica.load:.6f} exceeds capacity {self.capacity}")
        self.replicas[replica.key] = replica
        self._tenants.add(replica.tenant_id)
        self._load += replica.load

    def remove(self, key: ReplicaKey) -> Replica:
        """Remove and return the replica identified by ``key``.

        Raises
        ------
        PlacementError
            If no such replica is hosted here.
        """
        try:
            replica = self.replicas.pop(key)
        except KeyError:
            raise PlacementError(
                f"server {self.server_id} does not host replica {key}"
            ) from None
        self._tenants.discard(replica.tenant_id)
        self._load -= replica.load
        if -1e-9 < self._load < 0.0:
            # Clamp float drift; leave genuinely negative loads visible
            # (they would indicate a bookkeeping bug upstream).
            self._load = 0.0
        return replica

    def __iter__(self) -> Iterator[Replica]:
        return iter(self.replicas.values())

    def __len__(self) -> int:
        return len(self.replicas)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Server(id={self.server_id}, load={self._load:.4f}, "
                f"replicas={len(self.replicas)}, tags={self.tags})")
