"""One fleet shard: a durable placement controller in a directory.

A :class:`ShardController` is the unit the fleet partitions the server
estate into — a full :class:`~repro.algorithms.naive.RobustBestFit`
controller bound to its own :class:`~repro.store.DurableStore` (WAL +
checkpoint lineage) under ``<fleet root>/shard-NNN/``.  The store layer
is reused unchanged: recovery, compaction, and the durability contract
("ack implies the record is fsynced") are exactly those of a
single-controller deployment; the fleet merely runs N of them.

Shards add one new refusal mode on top of the single-controller
contract: a ``max_servers`` budget.  A placement that would have to
open servers beyond the budget is undone in place and surfaces as a
typed :class:`~repro.errors.ShardSaturatedError` — the router's
spillover signal.  The undo is itself WAL-logged (a ``place`` followed
by a ``remove``), so a refused attempt replays to a no-op on recovery.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..algorithms.naive import RobustBestFit
from ..core.tenant import Tenant
from ..core.validation import AuditReport, audit
from ..errors import ConfigurationError, ShardSaturatedError
from ..store import DurableStore
from ..store.wal import FSYNC_ALWAYS

PathLike = Union[str, Path]

#: Directory-name template for shard ``i`` under a fleet root.
SHARD_DIRNAME = "shard-{:03d}"


def shard_directory(root: PathLike, shard_id: int) -> Path:
    """The store directory of shard ``shard_id`` under ``root``."""
    return Path(root) / SHARD_DIRNAME.format(shard_id)


class ShardController:
    """A durable placement controller owning one shard of the fleet.

    Parameters
    ----------
    shard_id:
        Position of this shard in the fleet (``0..num_shards-1``).
    directory:
        Store root of this shard (``meta.json``, ``checkpoint.json``,
        ``wal/``).  A directory with recoverable state produces a warm
        start: the placement is recovered, audited, and adopted; the
        recorded gamma/capacity/failure budget win over the arguments.
    max_servers:
        Server budget; ``None`` (default) means unbounded, matching a
        plain single controller bit-for-bit.
    """

    def __init__(self, shard_id: int, directory: PathLike,
                 gamma: int = 2, capacity: float = 1.0,
                 failures: Optional[int] = None,
                 max_servers: Optional[int] = None,
                 obs=None, fsync: str = FSYNC_ALWAYS,
                 segment_records: int = 512) -> None:
        if shard_id < 0:
            raise ConfigurationError(
                f"shard_id must be >= 0, got {shard_id}")
        if max_servers is not None and max_servers < 1:
            raise ConfigurationError(
                f"max_servers must be >= 1, got {max_servers}")
        self.shard_id = shard_id
        self.directory = Path(directory)
        self.max_servers = max_servers
        self._obs = obs
        store = DurableStore(self.directory, fsync=fsync,
                             segment_records=segment_records, obs=obs)
        if store.has_state:
            recovered = store.recover()
            algorithm = RobustBestFit(gamma=recovered.gamma,
                                      failures=recovered.failures,
                                      capacity=recovered.capacity)
            algorithm.adopt(recovered.placement)
            self.recovered_state = recovered
        else:
            algorithm = RobustBestFit(gamma=gamma, failures=failures,
                                      capacity=capacity)
            self.recovered_state = None
        if obs is not None:
            algorithm.attach_obs(obs)
        algorithm.attach_store(store)
        self.store = store
        self.algorithm = algorithm
        self._closed = False
        self._opened_at = time.monotonic()

    # ------------------------------------------------------------------
    # Placement surface
    # ------------------------------------------------------------------
    @property
    def placement(self):
        return self.algorithm.placement

    @property
    def total_load(self) -> float:
        return self.placement.total_load()

    def place(self, tenant: Tenant) -> Tuple[int, ...]:
        """Place ``tenant``; refuse (typed) when over the budget.

        The budget check is *post hoc*: the placement runs, and if it
        had to open servers beyond ``max_servers`` it is removed again
        and :class:`~repro.errors.ShardSaturatedError` raised.  Empty
        servers opened by the refused attempt stay in the placement
        (they are reused by later placements, exactly like any other
        empty server) but are only WAL-logged once a placement that
        uses them commits.
        """
        before = self.placement.num_servers
        servers = self.algorithm.place(tenant)
        opened = self.placement.num_servers - before
        if (self.max_servers is not None and opened > 0
                and self.placement.num_servers > self.max_servers):
            self.algorithm.remove(tenant.tenant_id)
            raise ShardSaturatedError(
                f"shard {self.shard_id}: placing tenant "
                f"{tenant.tenant_id} (load {tenant.load}) needs "
                f"{self.placement.num_servers} servers, budget is "
                f"{self.max_servers}", shard_id=self.shard_id)
        return servers

    def place_batch(self, tenants: Sequence[Tenant]
                    ) -> List[Tuple[Tenant, Optional[Tuple[int, ...]]]]:
        """Admit a chunk of tenants in one index batch window.

        Per-tenant semantics are exactly those of :meth:`place` —
        including the post-hoc budget rollback — but the whole chunk
        runs inside the algorithm's
        :meth:`~repro.algorithms.base.OnlinePlacementAlgorithm.batched`
        window, so the placement index syncs once and screens the
        chunk's same-band probes from its amortized cache.  Returns
        ``(tenant, servers)`` pairs in admission order; a budget
        refusal yields ``(tenant, None)`` instead of raising, so one
        refusal does not abort the rest of the chunk.
        """
        tenants = list(tenants)
        outcomes: List[Tuple[Tenant, Optional[Tuple[int, ...]]]] = []
        with self.algorithm.batched(tenants):
            for tenant in tenants:
                try:
                    outcomes.append((tenant, self.place(tenant)))
                except ShardSaturatedError:
                    outcomes.append((tenant, None))
        return outcomes

    def remove(self, tenant_id: int) -> None:
        self.algorithm.remove(tenant_id)

    def update_load(self, tenant_id: int, load: float) -> Tuple[int, ...]:
        return self.algorithm.update_load(tenant_id, load)

    def has_tenant(self, tenant_id: int) -> bool:
        return bool(self.placement.tenant_servers(tenant_id))

    def tenant_servers(self, tenant_id: int) -> Dict[int, int]:
        return self.placement.tenant_servers(tenant_id)

    # ------------------------------------------------------------------
    # Durability + introspection
    # ------------------------------------------------------------------
    def audit(self) -> AuditReport:
        return audit(self.placement, failures=self.algorithm.failures)

    def checkpoint_and_compact(self):
        return self.store.checkpoint_and_compact(self.placement)

    def status(self) -> Dict[str, object]:
        """Introspection snapshot (all values read live, no mutation)."""
        placement = self.placement
        return {
            "shard": self.shard_id,
            "directory": str(self.directory),
            "tenants": placement.num_tenants,
            "servers": placement.num_servers,
            "nonempty_servers": placement.num_nonempty_servers,
            "total_load": placement.total_load(),
            "utilization": placement.utilization(),
            "max_servers": self.max_servers,
            "gamma": placement.gamma,
            "wal_next_seq": self.store.wal.next_seq,
            "checkpoint_exists": self.store.checkpoint_path.exists(),
        }

    def crash(self) -> None:
        """Simulate kill -9: abandon the controller, no shutdown.

        No ``close()``, no flush, no final checkpoint — exactly the
        state a SIGKILL leaves behind.  Under the default ``always``
        fsync policy every acked record is already on disk, so a fresh
        :class:`ShardController` on the same directory recovers every
        acked placement replica-for-replica.
        """
        self.store = None
        self.algorithm = None
        self._closed = True

    def close(self) -> None:
        if not self._closed and self.store is not None:
            self.store.close()
            self._closed = True

    def __enter__(self) -> "ShardController":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardController(shard={self.shard_id}, "
                f"dir={str(self.directory)!r})")
