"""The CUBEFIT online server-consolidation algorithm (Section III).

Placement of each arriving tenant proceeds in two stages:

**First stage (m-fit best fit).**  If *every* replica of the tenant
mature-fits some mature bin, the replicas are placed one by one, each in
the mature bin with the highest level (Best Fit) that m-fits it.  A bin
``B`` m-fits a replica when, after placing it, ``B``'s empty space still
covers the total shared load between ``B`` and any ``gamma - 1`` other
bins — i.e. the placement preserves the failover reserve.  Our check is
exact: it accounts for the new shared load the replica itself creates
against the sibling bins chosen so far, and re-verifies those siblings
(see DESIGN.md, "Interpretation notes").

**Second stage (cubes).**  Replicas of class ``tau`` are packed ``tau``
per bin into bins of ``tau + gamma - 1`` slots (``gamma - 1`` reserved
empty), using the cube addressing of :mod:`repro.core.cube` which
guarantees that any two bins share replicas of at most one tenant
(Lemma 1).  Tiny (class-``K``) replicas are first coalesced into
multi-replicas (:mod:`repro.core.multireplica`) and then routed through
the cube machinery of the policy's target class.

Together the stages yield Theorem 1: no bin is overloaded under the
simultaneous failure of any ``gamma - 1`` servers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import (OnlinePlacementAlgorithm, ServerIndex,
                               register, robust_after_placement)
from ..errors import ConfigurationError
from .classes import SizeClassifier
from .config import CubeFitConfig
from .cube import ClassCubes
from .multireplica import MultiReplica, MultiReplicaPolicy
from .tenant import Replica, Tenant

#: Server tag keys used by CUBEFIT.
TAG_CLASS = "class"
TAG_SLOTS_FILLED = "slots_filled"
TAG_MATURE = "mature"
TAG_ACTIVE_MULTI = "has_active_multireplica"
TAG_DOMAIN = "domain"


@register
class CubeFit(OnlinePlacementAlgorithm):
    """CUBEFIT with configurable ``K``, ``gamma`` and tiny-tenant policy.

    Examples
    --------
    >>> from repro.core.tenant import make_tenants
    >>> algo = CubeFit(gamma=2, num_classes=5)
    >>> _ = algo.consolidate(make_tenants([0.6, 0.3, 0.6, 0.78]))
    >>> algo.num_servers > 0
    True
    """

    name = "cubefit"

    def __init__(self, gamma: int = 2,
                 config: Optional[CubeFitConfig] = None,
                 capacity: float = 1.0,
                 **config_kwargs) -> None:
        if config is None:
            config = CubeFitConfig(gamma=gamma, capacity=capacity,
                                   **config_kwargs)
        elif config_kwargs:
            raise ConfigurationError(
                "pass either a CubeFitConfig or keyword overrides, not both")
        if config.gamma != gamma:
            raise ConfigurationError(
                f"gamma mismatch: argument {gamma} vs config {config.gamma}")
        super().__init__(gamma=config.gamma, capacity=config.capacity)
        self.config = config
        self.classifier = SizeClassifier(num_classes=config.num_classes,
                                         gamma=config.gamma)
        self._tiny_policy = MultiReplicaPolicy(config)
        self._cubes: Dict[int, ClassCubes] = {}
        self._active_multi: Optional[MultiReplica] = None
        self._multireplicas: List[MultiReplica] = []
        #: tenant id -> owning multi-replica (tiny tenants only).
        self._tenant_multi: Dict[int, MultiReplica] = {}
        #: tenant id -> (class, server ids in replica order) for tenants
        #: placed through the cube machinery (slot-recycling support).
        self._tenant_slots: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        #: class -> freed gamma-slot sets from departed cube tenants.
        #: A new same-class tenant may take over a departed tenant's
        #: exact slot set: the geometry is identical, so Lemma 1 is
        #: preserved by construction; admission is still verified with
        #: the exact robustness check (the first stage may have sold
        #: the freed space in the meantime).
        self._free_slots: Dict[int, List[Tuple[int, ...]]] = {}
        # Index over mature bins for first-stage candidate pruning; the
        # reserve budget is the full gamma-1 failures CUBEFIT guarantees.
        self._index = ServerIndex(self.placement, failures=config.gamma - 1)
        #: Counters for reporting / tests.
        self.stats = {
            "first_stage_tenants": 0,
            "cube_tenants": 0,
            "tiny_tenants": 0,
            "first_stage_rollbacks": 0,
            "multireplicas": 0,
        }

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def _place(self, tenant: Tenant) -> Tuple[int, ...]:
        replica_load = tenant.replica_load(self.gamma)
        tau = self.classifier.replica_class(replica_load)
        tiny = tau == self.config.num_classes
        if self.config.first_stage and (
                not tiny or self.config.first_stage_tiny):
            placed = self._try_first_stage(tenant, replica_load, tau)
            if placed is not None:
                self.stats["first_stage_tenants"] += 1
                return placed
        if tiny:
            self.stats["tiny_tenants"] += 1
            return self._place_tiny(tenant, replica_load)
        self.stats["cube_tenants"] += 1
        return self._place_cube(tenant, tau)

    # ------------------------------------------------------------------
    # First stage: m-fit Best Fit into mature bins
    # ------------------------------------------------------------------
    def _try_first_stage(self, tenant: Tenant, replica_load: float,
                         tau: int) -> Optional[Tuple[int, ...]]:
        """Attempt to m-fit every replica into mature bins.

        Returns the server ids on success; on failure rolls back any
        replicas placed so far and returns None (the paper's pseudocode
        does the same removal before falling through to stage two).
        """
        chosen: List[int] = []
        replicas = tenant.replicas(self.gamma)
        for replica in replicas:
            target = self._find_mature_fit(replica, tau, chosen)
            if target is None:
                for placed_replica, sid in zip(replicas, chosen):
                    self.placement.unplace(placed_replica.key, sid)
                if chosen:
                    self.stats["first_stage_rollbacks"] += 1
                return None
            self.placement.place(replica, target)
            chosen.append(target)
        return tuple(chosen)

    def _find_mature_fit(self, replica: Replica, tau: int,
                         chosen: Sequence[int]) -> Optional[int]:
        """Best Fit: fullest mature bin that exactly m-fits ``replica``."""
        placement = self.placement
        server_of = placement._servers
        same_class_ok = self.config.allow_same_class_first_stage
        taken_domains = None
        if self.config.enforce_fault_domains:
            taken_domains = {
                server_of[c].tags.get(TAG_DOMAIN) for c in chosen}

        def accept(sid: int) -> bool:
            tags = server_of[sid].tags
            bin_class = tags[TAG_CLASS]
            if same_class_ok:
                if tau < bin_class:
                    return False
            elif tau <= bin_class:
                # Only strictly smaller replicas (larger class index) may
                # reuse a mature bin's leftover space.
                return False
            return taken_domains is None \
                or tags.get(TAG_DOMAIN) not in taken_domains

        return self._index.select(
            replica.load, chosen, min_avail=replica.load,
            exclude=chosen, obs=self._obs, accept=accept)

    # ------------------------------------------------------------------
    # Second stage: cube placement
    # ------------------------------------------------------------------
    def _cubes_for(self, tau: int) -> ClassCubes:
        cubes = self._cubes.get(tau)
        if cubes is None:
            cubes = ClassCubes(tau=tau, gamma=self.gamma)
            self._cubes[tau] = cubes
        return cubes

    def _resolve_bins(self, cubes: ClassCubes) -> List[int]:
        """Server ids for the counter's current addresses, opening bins
        lazily and tagging them with CUBEFIT metadata."""
        sids: List[int] = []
        for address in cubes.current_addresses():
            sid = cubes.bin_id(address)
            if sid is None:
                server = self.placement.open_server()
                server.tags[TAG_CLASS] = cubes.tau
                server.tags[TAG_SLOTS_FILLED] = 0
                server.tags[TAG_MATURE] = False
                server.tags[TAG_ACTIVE_MULTI] = False
                # The cube group doubles as the bin's fault domain:
                # replica j always lives in group j, so second-stage
                # tenants span all gamma domains by construction.
                server.tags[TAG_DOMAIN] = address.group
                cubes.assign_bin(address, server.server_id)
                self._index.track(server.server_id, eligible=False)
                sid = server.server_id
            sids.append(sid)
        return sids

    def _fill_slot(self, sid: int) -> None:
        tags = self.placement.server(sid).tags
        tags[TAG_SLOTS_FILLED] += 1
        self._maybe_mature(sid, tags)

    def _maybe_mature(self, sid: int, tags=None) -> None:
        """Promote a bin to mature when all data slots are occupied and
        no unsealed multi-replica can still grow inside it."""
        if tags is None:
            tags = self.placement.server(sid).tags
        mature = (tags[TAG_SLOTS_FILLED] >= tags[TAG_CLASS]
                  and not tags[TAG_ACTIVE_MULTI])
        tags[TAG_MATURE] = mature
        self._index.set_eligible(sid, mature)

    def _place_cube(self, tenant: Tenant, tau: int) -> Tuple[int, ...]:
        recycled = self._try_recycle(tenant, tau)
        if recycled is not None:
            return recycled
        cubes = self._cubes_for(tau)
        sids = self._resolve_bins(cubes)
        self.placement.place_tenant(tenant, sids)
        self._tenant_slots[tenant.tenant_id] = (tau, tuple(sids))
        for sid in sids:
            self._fill_slot(sid)
        cubes.advance()
        return tuple(sids)

    def _try_recycle(self, tenant: Tenant,
                     tau: int) -> Optional[Tuple[int, ...]]:
        """Reuse a departed same-class tenant's slot set if it still
        admits this tenant under the exact robustness check."""
        free = self._free_slots.get(tau)
        if not free:
            return None
        replicas = tenant.replicas(self.gamma)
        for position, sids in enumerate(free):
            placed = []
            ok = True
            for replica, sid in zip(replicas, sids):
                if not robust_after_placement(
                        self.placement, sid, replica.load,
                        chosen=list(placed), failures=self.gamma - 1,
                        obs=self._obs):
                    ok = False
                    break
                self.placement.place(replica, sid)
                placed.append(sid)
            if ok:
                free.pop(position)
                self._tenant_slots[tenant.tenant_id] = (tau, tuple(sids))
                self.stats["recycled_slots"] = \
                    self.stats.get("recycled_slots", 0) + 1
                return tuple(sids)
            for replica, sid in zip(replicas, placed):
                self.placement.unplace(replica.key, sid)
        return None

    # ------------------------------------------------------------------
    # Tiny tenants: multi-replicas
    # ------------------------------------------------------------------
    def _place_tiny(self, tenant: Tenant,
                    replica_load: float) -> Tuple[int, ...]:
        if not self._tiny_policy.fits(self._active_multi, replica_load):
            self._seal_active()
            self._active_multi = self._new_multireplica()
        active = self._active_multi
        active.add(tenant.tenant_id, replica_load)
        self._tenant_multi[tenant.tenant_id] = active
        self.placement.place_tenant(tenant, active.server_ids)
        return active.server_ids

    def _new_multireplica(self) -> MultiReplica:
        cubes = self._cubes_for(self._tiny_policy.target_class)
        sids = self._resolve_bins(cubes)
        for sid in sids:
            tags = self.placement.server(sid).tags
            tags[TAG_ACTIVE_MULTI] = True
            tags[TAG_SLOTS_FILLED] += 1
            self._maybe_mature(sid)
        cubes.advance()
        multi = MultiReplica(server_ids=tuple(sids))
        self._multireplicas.append(multi)
        self.stats["multireplicas"] += 1
        return multi

    def _seal_active(self) -> None:
        active = self._active_multi
        if active is None:
            return
        active.sealed = True
        for sid in active.server_ids:
            tags = self.placement.server(sid).tags
            tags[TAG_ACTIVE_MULTI] = False
            self._maybe_mature(sid)
        self._active_multi = None

    # ------------------------------------------------------------------
    # Departures (dynamic tenancy)
    # ------------------------------------------------------------------
    def _remove(self, tenant_id: int) -> None:
        """Handle a tenant's departure.

        Beyond the base-class removal (which is already robustness-
        preserving), a tiny tenant's share is subtracted from its
        multi-replica so that, if the multi-replica is still active,
        future tiny arrivals can reclaim the space.  Cube slot counts
        are deliberately *not* decremented: the counter machinery never
        revisits a slot, so freed slot space is reused through the
        first stage's exact m-fit check instead (leaving a once-mature
        bin mature is safe — every m-fit admission re-verifies the
        actual loads).
        """
        replica_load = self.placement.tenant_load(tenant_id) / self.gamma
        super()._remove(tenant_id)
        multi = self._tenant_multi.pop(tenant_id, None)
        if multi is not None:
            multi.remove(tenant_id, replica_load)
        slot_record = self._tenant_slots.pop(tenant_id, None)
        if slot_record is not None:
            tau, sids = slot_record
            self._free_slots.setdefault(tau, []).append(sids)
        self.stats["departures"] = self.stats.get("departures", 0) + 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def mature_bin_ids(self) -> List[int]:
        """Ids of bins currently usable by the first stage."""
        return [s.server_id for s in self.placement
                if s.tags.get(TAG_MATURE)]

    def bin_class(self, server_id: int) -> int:
        """CUBEFIT class of the given bin."""
        return self.placement.server(server_id).tags[TAG_CLASS]

    def server_domain(self, server_id: int) -> Optional[int]:
        """Fault domain (cube group) of the given bin, if tagged."""
        return self.placement.server(server_id).tags.get(TAG_DOMAIN)

    def domains_respected(self) -> bool:
        """Whether every tenant's replicas span distinct fault domains.

        Trivially true for pure second-stage packings (replica ``j``
        lives in group ``j``); with ``enforce_fault_domains`` it also
        holds through the first stage.
        """
        for tenant_id in self.placement.tenant_ids:
            homes = self.placement.tenant_servers(tenant_id).values()
            domains = [self.server_domain(sid) for sid in homes]
            if len(set(domains)) != len(domains):
                return False
        return True

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update({
            "K": self.config.num_classes,
            "tiny_policy": self.config.tiny_policy,
            "stats": dict(self.stats),
        })
        return info
