"""First Fit with per-tenant replication budgets (mixed gamma).

:func:`repro.analysis.sla.gamma_map` turns per-tenant SLA targets into a
``{tenant_id: gamma}`` plan; this module is the placement path that
consumes it.  :class:`MixedGammaFirstFit` is
:class:`~repro.algorithms.naive.RobustFirstFit` with one change: each
tenant materializes ``plan[tenant_id]`` replicas instead of the fleet
default.  The selection rule, feasibility check, and index discipline
are call-for-call identical — the regression suite pins an all-equal
plan to the single-gamma path bit-for-bit (same packing fingerprint,
same observability journal).

The robustness budget is a single fleet-wide ``failures`` (default: the
largest gamma in play minus one).  Tenants with small gammas still
contribute their failover shares to every server-level check; a
gamma-1 tenant simply has no failover share (its data is gone when its
server dies — that is the availability trade the SLA model priced in,
not a capacity concern).

Not registered in the algorithm registry: the registry's contract is
``make_algorithm(name, gamma)`` with a uniform gamma, and the durable
store's WAL replays placements through
:meth:`~repro.core.placement.PlacementState.place_tenant`, which
requires exactly ``gamma`` servers per tenant — so
:meth:`MixedGammaFirstFit.attach_store` refuses rather than writing a
log that cannot be replayed.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from ..core.tenant import Replica, Tenant
from ..errors import ConfigurationError
from .base import robust_after_placement
from .naive import _CheckedBaseline


class MixedGammaFirstFit(_CheckedBaseline):
    """Lowest-id-feasible placement honouring a per-tenant gamma plan.

    ``plan`` maps tenant ids to replication factors; tenants not in the
    plan get the constructor ``gamma``.  ``failures`` defaults to
    ``max(plan gammas, gamma) - 1`` so the robustness audit covers the
    worst co-location any tenant in the plan can create.
    """

    name = "mixed-firstfit"

    # Same engine choice as RobustFirstFit: id-ordered scans never
    # amortize the array core's sync cost.
    _probe_only = True

    def __init__(self, plan: Mapping[int, int], gamma: int = 2,
                 failures: Optional[int] = None,
                 capacity: float = 1.0) -> None:
        for tenant_id, g in plan.items():
            if g < 1:
                raise ConfigurationError(
                    f"plan gamma for tenant {tenant_id} must be >= 1, "
                    f"got {g}")
        if failures is None:
            failures = max([gamma, *plan.values()]) - 1
        super().__init__(gamma=gamma, failures=failures,
                         capacity=capacity)
        self.plan = dict(plan)

    def attach_store(self, store) -> None:
        if store is not None:
            raise ConfigurationError(
                "mixed-firstfit cannot attach a durable store: WAL "
                "replay places exactly gamma replicas per tenant")
        super().attach_store(store)

    def tenant_gamma(self, tenant_id: int) -> int:
        """The replication factor the plan assigns ``tenant_id``."""
        return self.plan.get(tenant_id, self.gamma)

    def _place(self, tenant: Tenant) -> Tuple[int, ...]:
        g = self.tenant_gamma(tenant.tenant_id)
        chosen: List[int] = []
        for replica in tenant.replicas(g):
            target = self._select_mixed(replica, chosen, g)
            if target is None:
                target = self._open_server()
            self.placement.place(replica, target)
            chosen.append(target)
        self._after_tenant(chosen)
        return tuple(chosen)

    def _select_mixed(self, replica: Replica, chosen: List[int],
                      g: int) -> Optional[int]:
        candidates = self._index.candidates_by_id(min_avail=replica.load,
                                                  exclude=chosen)
        future = g - len(chosen) - 1
        for sid in candidates:
            if robust_after_placement(self.placement, sid, replica.load,
                                      chosen, failures=self.failures,
                                      future_siblings=future,
                                      obs=self._obs):
                return sid
        return None

    def describe(self) -> dict:
        info = super().describe()
        info["plan_tenants"] = len(self.plan)
        if self.plan:
            info["plan_gammas"] = sorted(set(self.plan.values()))
        return info
