"""Unit tests for the segmented write-ahead log."""

import json

import pytest

from repro.errors import ConfigurationError, StoreCorruptionError
from repro.store.wal import (FSYNC_NEVER, FSYNC_ROTATE, WalRecord,
                             WriteAheadLog)


class TestAppendAndRead:
    def test_sequence_numbers_are_contiguous(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        seqs = [wal.append("place", {"tenant": i}) for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert wal.next_seq == 5
        assert wal.last_seq == 4
        records = list(wal.records())
        assert [r.seq for r in records] == seqs
        assert [r.data["tenant"] for r in records] == list(range(5))

    def test_records_start_seq_filters(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for i in range(10):
            wal.append("place", {"tenant": i})
        tail = list(wal.records(start_seq=7))
        assert [r.seq for r in tail] == [7, 8, 9]

    def test_payload_roundtrips_floats_exactly(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        load = 0.1 + 0.2  # 0.30000000000000004
        wal.append("place", {"load": load})
        wal.flush()
        (record,) = wal.records()
        assert record.data["load"] == load

    def test_empty_op_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        with pytest.raises(ConfigurationError):
            wal.append("", {})

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_bad_segment_records_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path, segment_records=0)


class TestSegmentRotation:
    def test_rotation_creates_segments_named_by_first_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=3)
        for i in range(7):
            wal.append("op", {"i": i})
        names = [p.name for p in wal.segments()]
        assert names == ["wal-000000000000.jsonl",
                         "wal-000000000003.jsonl",
                         "wal-000000000006.jsonl"]
        assert [r.seq for r in wal.records()] == list(range(7))

    def test_reader_skips_whole_segments_below_start(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=4)
        for i in range(12):
            wal.append("op", {"i": i})
        assert [r.seq for r in wal.records(start_seq=8)] == [8, 9, 10, 11]
        # Requesting from mid-segment still yields only the tail.
        assert [r.seq for r in wal.records(start_seq=9)] == [9, 10, 11]

    def test_truncate_before_removes_only_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=4,
                            fsync=FSYNC_NEVER)
        for i in range(12):
            wal.append("op", {"i": i})
        removed = wal.truncate_before(8)
        assert [p.name for p in removed] == ["wal-000000000000.jsonl",
                                             "wal-000000000004.jsonl"]
        assert [r.seq for r in wal.records(start_seq=8)] == [8, 9, 10, 11]

    def test_truncate_never_deletes_final_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=4)
        for i in range(4):
            wal.append("op", {"i": i})
        assert wal.truncate_before(10**9) == [] or \
            len(wal.segments()) >= 1


class TestReopen:
    def test_reopen_resumes_numbering(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=FSYNC_ROTATE) as wal:
            for i in range(5):
                wal.append("op", {"i": i})
        wal2 = WriteAheadLog(tmp_path)
        assert wal2.next_seq == 5
        assert wal2.append("op", {"i": 5}) == 5
        assert [r.seq for r in wal2.records()] == list(range(6))

    def test_reopen_truncates_torn_tail(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(3):
                wal.append("op", {"i": i})
        segment = tmp_path / "wal-000000000000.jsonl"
        with open(segment, "a") as handle:
            handle.write('{"seq": 3, "op": "op", "data"')  # torn
        wal2 = WriteAheadLog(tmp_path)
        assert wal2.next_seq == 3  # the torn record never committed
        assert wal2.append("op", {"i": 3}) == 3
        assert [r.seq for r in wal2.records()] == [0, 1, 2, 3]

    def test_reopen_truncates_newlineless_complete_json(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append("op", {"i": 0})
        segment = tmp_path / "wal-000000000000.jsonl"
        with open(segment, "a") as handle:
            handle.write(json.dumps({"seq": 1, "op": "op", "data": {}}))
        wal2 = WriteAheadLog(tmp_path)
        assert wal2.next_seq == 1


class TestCorruption:
    def _write_records(self, tmp_path, count, segment_records=512):
        wal = WriteAheadLog(tmp_path, segment_records=segment_records)
        for i in range(count):
            wal.append("op", {"i": i})
        wal.close()
        return wal

    def test_torn_final_line_is_skipped_by_reader(self, tmp_path):
        wal = self._write_records(tmp_path, 3)
        with open(tmp_path / "wal-000000000000.jsonl", "a") as handle:
            handle.write("garbage tail")
        assert [r.seq for r in wal.records()] == [0, 1, 2]

    def test_mid_stream_garbage_raises(self, tmp_path):
        wal = self._write_records(tmp_path, 4)
        path = tmp_path / "wal-000000000000.jsonl"
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = "garbage in the middle\n"
        path.write_text("".join(lines))
        with pytest.raises(StoreCorruptionError):
            list(wal.records())

    def test_sequence_gap_raises(self, tmp_path):
        wal = self._write_records(tmp_path, 4)
        path = tmp_path / "wal-000000000000.jsonl"
        lines = path.read_text().splitlines(keepends=True)
        del lines[1]
        path.write_text("".join(lines))
        with pytest.raises(StoreCorruptionError):
            list(wal.records())

    def test_missing_segment_raises(self, tmp_path):
        wal = self._write_records(tmp_path, 9, segment_records=3)
        (tmp_path / "wal-000000000003.jsonl").unlink()
        with pytest.raises(StoreCorruptionError):
            list(wal.records())

    def test_reopen_with_mid_segment_garbage_raises(self, tmp_path):
        self._write_records(tmp_path, 4)
        path = tmp_path / "wal-000000000000.jsonl"
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = "@@@ not json @@@\n"
        path.write_text("".join(lines))
        with pytest.raises(StoreCorruptionError):
            WriteAheadLog(tmp_path)

    def test_reopen_with_bad_tail_sequence_raises(self, tmp_path):
        self._write_records(tmp_path, 2)
        path = tmp_path / "wal-000000000000.jsonl"
        record = WalRecord(seq=7, op="op", data={})
        with open(path, "a") as handle:
            handle.write(record.to_json() + "\n")
        with pytest.raises(StoreCorruptionError):
            WriteAheadLog(tmp_path)


class TestCloseSafety:
    """``close()`` must release the file handle even when the final
    fsync fails — the regression where a fired ``store.wal.fsync``
    failpoint (or a real ``OSError``) during close leaked the handle
    and left the WAL half-closed."""

    def test_failed_fsync_on_close_still_releases_handle(self, tmp_path):
        from repro import faults
        from repro.errors import FaultInjected

        wal = WriteAheadLog(tmp_path)
        wal.append("op", {"i": 0})
        handle = wal._file
        with faults.injected("store.wal.fsync", action="raise"):
            with pytest.raises(FaultInjected):
                wal.close()
        # The error surfaced, but the handle is closed and detached.
        assert handle.closed
        assert wal._file is None
        # The record had already been flushed: a reopen sees it.
        assert [r.seq for r in WriteAheadLog(tmp_path).records()] == [0]

    def test_failed_real_fsync_on_close_still_releases(self, tmp_path,
                                                       monkeypatch):
        import os as _os

        wal = WriteAheadLog(tmp_path)
        wal.append("op", {"i": 0})
        handle = wal._file

        def broken_fsync(fileno):
            raise OSError(5, "I/O error")

        monkeypatch.setattr(_os, "fsync", broken_fsync)
        with pytest.raises(OSError):
            wal.close()
        assert handle.closed
        assert wal._file is None

    def test_close_is_idempotent(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("op", {})
        wal.close()
        wal.close()  # no-op, no error
        assert wal._file is None

    def test_close_after_failed_close_is_noop(self, tmp_path):
        from repro import faults
        from repro.errors import FaultInjected

        wal = WriteAheadLog(tmp_path)
        wal.append("op", {})
        with faults.injected("store.wal.fsync", action="raise"):
            with pytest.raises(FaultInjected):
                wal.close()
        wal.close()  # second close after the failed one: clean no-op

    def test_append_after_close_reopens_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("op", {"i": 0})
        wal.close()
        wal.append("op", {"i": 1})
        wal.close()
        assert [r.seq for r in wal.records()] == [0, 1]
