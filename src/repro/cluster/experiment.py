"""The cluster experiment harness (Section V-A/V-B methodology).

Runs one end-to-end scenario against the simulated cluster:

1. build machines and a router from a tenant -> servers assignment,
2. attach each tenant's closed-loop clients,
3. warm up (caches fill, the closed-loop system reaches steady state),
4. optionally fail a set of servers (worst-overload selection is the
   caller's job, via :mod:`repro.cluster.failures`),
5. measure query latencies for the measurement window,
6. report p99 / SLA verdict / utilization.

The defaults mirror the paper (five-minute warm-up and measurement, 5 s
p99 SLA) scaled down by ``time_scale`` so the default test/bench runs
are fast; pass ``time_scale=1.0`` for paper-duration runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import faults
from ..errors import ConfigurationError, SimulationError
from ..workloads.tpch import QueryStream, DEMAND_SCALE
from .background import (MaintenanceTask, DEFAULT_MAINTENANCE_DEMAND,
                         DEFAULT_MAINTENANCE_INTERVAL)
from .client import TenantClient, DEFAULT_THINK_MEAN
from .datastore import DataStore, DEFAULT_COLD_PENALTY, DEFAULT_WARM_AFTER
from .engine import Simulator
from .latency import LatencyRecorder, DEFAULT_SLA_SECONDS
from .machine import Machine, DEFAULT_CORES
from .routing import ReplicaRouter

#: Paper durations (seconds).
PAPER_WARMUP = 300.0
PAPER_MEASURE = 300.0


@dataclass(frozen=True)
class ClusterConfig:
    """Hardware and timing knobs of a cluster run."""

    cores: int = DEFAULT_CORES
    think_mean: float = DEFAULT_THINK_MEAN
    demand_scale: float = DEMAND_SCALE
    cold_penalty: float = DEFAULT_COLD_PENALTY
    warm_after: int = DEFAULT_WARM_AFTER
    #: Per-tenant background maintenance (the beta of the load model).
    maintenance_interval: float = DEFAULT_MAINTENANCE_INTERVAL
    maintenance_demand: float = DEFAULT_MAINTENANCE_DEMAND
    warmup: float = PAPER_WARMUP
    measure: float = PAPER_MEASURE
    #: Fraction of warmup+measure actually simulated (speed knob).
    time_scale: float = 1.0
    #: Failures are injected this long before the measurement window so
    #: that re-issued queries drain out of the statistics.
    failure_lead: float = 5.0
    #: When set, lost replicas are re-replicated onto healthy servers
    #: this many (scaled) seconds after the failure: the failed homes
    #: are deregistered, least-loaded healthy servers take over, and
    #: their caches warm up from cold.
    recovery_delay: Optional[float] = None
    sla_seconds: float = DEFAULT_SLA_SECONDS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.warmup < 0 or self.measure <= 0:
            raise ConfigurationError(
                f"invalid durations: warmup={self.warmup}, "
                f"measure={self.measure}")
        if not (0 < self.time_scale <= 1.0):
            raise ConfigurationError(
                f"time_scale must be in (0, 1], got {self.time_scale}")

    @property
    def scaled_warmup(self) -> float:
        return self.warmup * self.time_scale

    @property
    def scaled_measure(self) -> float:
        return self.measure * self.time_scale


@dataclass
class ClusterResult:
    """Outcome of one cluster run.

    ``p99`` is the SLA metric: the worst per-server 99th-percentile
    latency.  The load model ties the SLA to per-server load, so
    overload manifests per server; every tenant on a compliant server is
    compliant.  ``global_p99`` is the cluster-wide percentile over all
    queries, for reference (it dilutes single-server overload among
    healthy servers).
    """

    p99: float
    global_p99: float
    mean_latency: float
    completed: int
    dropped: int
    reissued: int
    meets_sla: bool
    violating_tenants: List[int] = field(default_factory=list)
    failed_servers: List[int] = field(default_factory=list)
    utilization: Dict[int, float] = field(default_factory=dict)
    events: int = 0
    max_post_failure_clients: float = 0.0
    #: Replicas re-homed by in-run recovery (0 without recovery_delay).
    recovered_replicas: int = 0

    def __str__(self) -> str:
        verdict = "meets SLA" if self.meets_sla else "VIOLATES SLA"
        return (f"ClusterResult(p99={self.p99:.2f}s, "
                f"global_p99={self.global_p99:.2f}s, "
                f"mean={self.mean_latency:.2f}s, n={self.completed}, "
                f"failed={list(self.failed_servers)}, {verdict})")


class ClusterExperiment:
    """One scenario: an assignment, client populations, optional failures."""

    def __init__(self, tenant_homes: Dict[int, Sequence[int]],
                 tenant_clients: Dict[int, int],
                 config: Optional[ClusterConfig] = None) -> None:
        if not tenant_homes:
            raise ConfigurationError("no tenants to run")
        for tid in tenant_homes:
            if tenant_clients.get(tid, 0) < 0:
                raise ConfigurationError(
                    f"tenant {tid}: negative client count")
        self.tenant_homes = {t: list(h) for t, h in tenant_homes.items()}
        self.tenant_clients = dict(tenant_clients)
        self.config = config if config is not None else ClusterConfig()

    def run(self, fail_servers: Sequence[int] = (),
            latency_csv: Optional[str] = None,
            obs=None) -> ClusterResult:
        """Execute the scenario; ``fail_servers`` fail together shortly
        before the measurement window opens.

        ``latency_csv`` writes every in-window latency sample
        (completion time, tenant, serving machine, query, latency) to
        the given path for offline analysis.

        ``obs`` (a :class:`~repro.obs.MetricsRegistry`) feeds the run's
        query/SLA metrics: per-query latency histograms and completion
        counters from the :class:`LatencyRecorder`, dispatched-event
        counts from the :class:`Simulator`, and end-of-run SLA gauges
        (``cluster.p99_seconds``, ``cluster.meets_sla``).
        """
        from ..obs import active
        obs = active(obs)
        cfg = self.config
        sim = Simulator(obs=obs)
        rng = np.random.default_rng(cfg.seed)
        machine_ids = sorted({h for homes in self.tenant_homes.values()
                              for h in homes})
        for fid in fail_servers:
            if fid not in machine_ids:
                raise SimulationError(
                    f"cannot fail unknown server {fid}")
        machines = {mid: Machine(sim, mid, cores=cfg.cores)
                    for mid in machine_ids}
        datastore = DataStore(cold_penalty=cfg.cold_penalty,
                              warm_after=cfg.warm_after)
        router = ReplicaRouter(sim, machines, self.tenant_homes, datastore)

        warmup = cfg.scaled_warmup
        measure = cfg.scaled_measure
        recorder = LatencyRecorder(window_start=warmup,
                                   window_end=warmup + measure,
                                   obs=obs)

        clients: List[TenantClient] = []
        next_client_id = 0
        for tenant_id in sorted(self.tenant_homes):
            for _ in range(self.tenant_clients.get(tenant_id, 0)):
                stream = QueryStream(rng, scale=cfg.demand_scale)
                client = TenantClient(
                    sim, client_id=next_client_id, tenant_id=tenant_id,
                    router=router, stream=stream, recorder=recorder,
                    rng=rng, think_mean=cfg.think_mean)
                clients.append(client)
                next_client_id += 1
        if not clients:
            raise ConfigurationError("no clients configured")
        for client in clients:
            client.start()

        # Background maintenance: every machine hosting a tenant's data
        # pays the per-tenant overhead, regardless of client traffic.
        # Like the query workload, the tenant's total overhead (the beta
        # of the load model, calibrated on a single unreplicated machine)
        # is shared between the tenant's *surviving* replicas: each home
        # runs the cycle at 1/alive of the single-machine rate, so a
        # failure shifts the failed replica's maintenance share onto the
        # survivors just like its query share.
        tasks: List[MaintenanceTask] = []
        for tenant_id, homes in self.tenant_homes.items():
            for mid in homes:
                task = MaintenanceTask(
                    sim, machines[mid], tenant_id, rng,
                    interval=cfg.maintenance_interval,
                    demand=cfg.maintenance_demand,
                    alive_homes=(lambda t=tenant_id:
                                 len(router.alive_homes(t))))
                task.start()
                tasks.append(task)

        recovered = [0]
        chaos_victims: List[int] = []
        if faults.active() and faults.should("cluster.machine.fail"):
            # Fail one machine the scenario did not plan to lose, at
            # the moment planned failures would land.  The firing *is*
            # the scheduling decision (deterministic: highest live id).
            spare = [mid for mid in machine_ids
                     if mid not in set(fail_servers)]
            if spare:
                victim = spare[-1]
                chaos_victims.append(victim)
                sim.schedule_at(
                    max(0.0, warmup - cfg.failure_lead * cfg.time_scale),
                    lambda: router.fail_machine(victim))
        if fail_servers:
            fail_at = max(0.0, warmup - cfg.failure_lead * cfg.time_scale)

            def inject() -> None:
                for fid in fail_servers:
                    router.fail_machine(fid)

            sim.schedule_at(fail_at, inject)

            if cfg.recovery_delay is not None:
                from .failures import plan_replacement_homes

                def recover() -> None:
                    current = {tid: router.tenant_homes(tid)
                               for tid in self.tenant_homes}
                    try:
                        plan = plan_replacement_homes(
                            current, self.tenant_clients, fail_servers,
                            candidates=machine_ids)
                    except ConfigurationError:
                        return  # nowhere to re-replicate
                    for tenant_id, targets in plan.items():
                        failed_homes = [h for h in current[tenant_id]
                                        if h in fail_servers]
                        for old, new in zip(failed_homes, targets):
                            router.remove_home(tenant_id, old)
                            router.add_home(tenant_id, new)
                            task = MaintenanceTask(
                                sim, machines[new], tenant_id, rng,
                                interval=cfg.maintenance_interval,
                                demand=cfg.maintenance_demand,
                                alive_homes=(lambda t=tenant_id:
                                             len(router.alive_homes(t))))
                            task.start()
                            tasks.append(task)
                            recovered[0] += 1

                sim.schedule_at(
                    fail_at + cfg.recovery_delay * cfg.time_scale,
                    recover)

        sim.run_until(warmup + measure)

        if latency_csv is not None:
            recorder.to_csv(latency_csv)
        utilization = {mid: machines[mid].utilization()
                       for mid in machine_ids}
        if recorder.count == 0:
            if recorder.dropped == 0:
                raise SimulationError(
                    "no queries completed inside the measurement window; "
                    "increase measure time or client counts")
            # Every query was dropped (e.g. all replicas of all tenants
            # failed): latency is unbounded and the SLA is violated.
            return ClusterResult(
                p99=float("inf"), global_p99=float("inf"),
                mean_latency=float("inf"), completed=0,
                dropped=recorder.dropped, reissued=router.reissued,
                meets_sla=False, violating_tenants=[],
                failed_servers=list(fail_servers) + chaos_victims,
                utilization=utilization, events=sim.events_dispatched,
                recovered_replicas=recovered[0])
        meets = recorder.meets_sla(cfg.sla_seconds)
        if obs is not None:
            obs.gauge("cluster.p99_seconds").set(
                recorder.worst_server_p99())
            obs.gauge("cluster.meets_sla").set(1.0 if meets else 0.0)
            obs.gauge("cluster.dropped").set(recorder.dropped)
        return ClusterResult(
            p99=recorder.worst_server_p99(),
            global_p99=recorder.p99(),
            mean_latency=recorder.mean_latency(),
            completed=recorder.count,
            dropped=recorder.dropped,
            reissued=router.reissued,
            meets_sla=meets,
            violating_tenants=recorder.violating_tenants(cfg.sla_seconds),
            failed_servers=list(fail_servers) + chaos_victims,
            utilization=utilization,
            events=sim.events_dispatched,
            recovered_replicas=recovered[0],
        )
