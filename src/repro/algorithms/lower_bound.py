"""Lower bounds on the optimal (offline) number of servers.

Used to substantiate the paper's "near-optimal when the number of tenants
is large" claim without solving the NP-hard offline problem:

* :func:`capacity_lower_bound` — total tenant load; any packing, robust
  or not, needs at least this many unit-capacity servers.
* :func:`weight_lower_bound` — Theorem 2's statement (II): every bin of a
  *valid robust* packing carries weight at most ``r``, so
  ``OPT >= ceil(W(σ) / r)``.  Strictly stronger than the capacity bound
  on inputs dominated by large replicas.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence

from ..analysis.competitive import competitive_ratio_upper_bound
from ..analysis.weights import total_weight
from ..core.config import TINY_POLICY_LAST_CLASS


def capacity_lower_bound(loads: Iterable[float]) -> int:
    """``ceil(sum of tenant loads)`` — servers needed just for capacity."""
    return int(math.ceil(sum(loads) - 1e-12))


def weight_lower_bound(loads: Sequence[float], gamma: int,
                       num_classes: int,
                       tiny_policy: str = TINY_POLICY_LAST_CLASS) -> int:
    """``ceil(W(σ) / r)`` — robust packings cannot beat this.

    ``r`` is the exact per-bin weight supremum from
    :func:`repro.analysis.competitive.competitive_ratio_upper_bound`.
    """
    if not loads:
        return 0
    w = total_weight(loads, gamma, num_classes, tiny_policy)
    r = competitive_ratio_upper_bound(gamma, num_classes, tiny_policy).value
    bound = Fraction(w) / r
    return int(math.ceil(bound - Fraction(1, 10 ** 12)))


def best_lower_bound(loads: Sequence[float], gamma: int,
                     num_classes: int,
                     tiny_policy: str = TINY_POLICY_LAST_CLASS) -> int:
    """Max of the available lower bounds."""
    return max(capacity_lower_bound(loads),
               weight_lower_bound(loads, gamma, num_classes, tiny_policy))
