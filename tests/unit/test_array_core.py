"""Unit tests for the struct-of-arrays placement core.

Covers the incremental sync contract (dirty-tracker flush ordering,
eligibility flips, the ``-inf`` availability sentinel), the
:meth:`~repro.core.arrays.ArrayCore.batch_screen` edge cases (empty
fleet, single server, an all-ambiguous band, non-finite inputs), the
scalar/batch classification identity, the engine switch helpers, and
the top-partner memoization that keeps ambiguous-band probes cheap.
"""

import numpy as np
import pytest

from repro.algorithms.base import (ServerIndex,
                                   batch_robust_after_placement,
                                   robust_after_placement)
from repro.core import arrays
from repro.core.arrays import (AMBIGUOUS, FEASIBLE, INFEASIBLE,
                               ArrayCore)
from repro.core.placement import PlacementState
from repro.core.tenant import Tenant
from repro.errors import ConfigurationError, PlacementError
from repro.obs import MetricsRegistry


def _placement(gamma=2, servers=4):
    ps = PlacementState(gamma=gamma)
    for _ in range(servers):
        ps.open_server()
    return ps


def _tracked_core(ps, failures=1):
    core = ArrayCore(ps, failures, eligibility=True)
    for sid in ps.server_ids:
        core.track(sid)
    return core


class TestConstruction:
    def test_negative_failures_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrayCore(_placement(), failures=-1)

    def test_switch_helpers_round_trip(self):
        before = arrays.enabled()
        previous = arrays.set_enabled(not before)
        assert previous == before
        assert arrays.enabled() == (not before)
        with arrays.overridden(before):
            assert arrays.enabled() == before
        assert arrays.enabled() == (not before)
        arrays.set_enabled(before)

    def test_growth_past_initial_capacity(self):
        ps = PlacementState(gamma=2)
        core = ArrayCore(ps, failures=1, eligibility=True)
        for _ in range(ArrayCore._GROW + 3):
            ps.open_server()
        core.track(ArrayCore._GROW + 2)
        assert core.size == ArrayCore._GROW + 3
        assert core.is_eligible(ArrayCore._GROW + 2)


class TestIncrementalSync:
    def test_mutations_flush_on_next_vector_query(self):
        ps = _placement()
        core = _tracked_core(ps)
        ps.place_tenant(Tenant(0, 0.4), [0, 1])
        # The mutation is only staged: the tracker holds the dirty ids
        # until a vector query drains them.
        assert 0 in core._tracker._dirty
        loads = core.loads()
        assert loads[0] == ps.server(0).load
        assert loads[1] == ps.server(1).load
        assert loads[0] > 0.0
        assert not core._tracker._dirty
        assert not core._pending

    def test_vectors_match_placement_after_interleaved_mutations(self):
        ps = _placement()
        core = _tracked_core(ps)
        ps.place_tenant(Tenant(0, 0.3), [0, 1])
        ps.place_tenant(Tenant(1, 0.2), [1, 2])
        ps.remove_tenant(0)
        ps.place_tenant(Tenant(2, 0.25), [0, 2])
        core.sync()
        for sid in ps.server_ids:
            server = ps.server(sid)
            assert core.loads()[sid] == server.load
            expected = (server.capacity - server.load
                        - ps.worst_failover_load(sid, core.failures))
            assert core.avails()[sid] == expected

    def test_ineligible_servers_hold_the_sentinel(self):
        ps = _placement()
        core = _tracked_core(ps)
        core.set_eligible(2, False)
        assert core.avails()[2] == -np.inf
        # Mutations of ineligible servers are skipped by sync...
        ps.place_tenant(Tenant(0, 0.5), [2, 3])
        core.sync()
        assert core.avails()[2] == -np.inf
        # ...and rebuilt the moment eligibility is restored.
        core.set_eligible(2, True)
        server = ps.server(2)
        expected = (server.capacity - server.load) \
            - ps.worst_failover_load(2, 1)
        assert core.avails()[2] == expected

    def test_eligibility_flip_is_idempotent(self):
        ps = _placement()
        core = _tracked_core(ps)
        before = core.avails().copy()
        core.set_eligible(1, True)  # already eligible: no refresh
        assert np.array_equal(core.avails(), before)

    def test_scalar_matches_post_sync_vectors(self):
        ps = _placement()
        core = _tracked_core(ps)
        ps.place_tenant(Tenant(0, 0.35), [0, 1])
        # Dirty read (answered from the placement)...
        dirty_answer = core.scalar(0)
        core.sync()
        # ...must equal the refreshed vector read bit for bit.
        assert core.scalar(0) == dirty_answer

    def test_scalar_untracked_raises_for_explicit_core(self):
        ps = _placement(servers=2)
        core = ArrayCore(ps, failures=1, eligibility=True)
        core.track(0)
        ps.open_server()  # server 2, never tracked
        with pytest.raises(PlacementError):
            core.scalar(2)

    def test_scalar_missing_server_raises(self):
        core = _tracked_core(_placement())
        with pytest.raises(PlacementError):
            core.scalar(99)

    def test_replica_counts_and_headrooms_are_derived(self):
        ps = _placement()
        core = _tracked_core(ps)
        ps.place_tenant(Tenant(0, 0.3), [0, 1])
        assert core.replica_counts().tolist() == [1, 1, 0, 0]
        assert core.headrooms()[0] == 1.0 - ps.server(0).load
        assert core.eligibles().all()


class TestBatchScreen:
    def test_empty_fleet(self):
        ps = PlacementState(gamma=2)
        core = ArrayCore(ps, failures=1)
        verdict = core.batch_screen(0.1)
        assert verdict.shape == (0,)
        assert verdict.dtype == np.int8

    def test_single_server(self):
        ps = _placement(servers=1)
        core = _tracked_core(ps)
        assert core.batch_screen(0.1).tolist() == [FEASIBLE]
        assert core.batch_screen(5.0).tolist() == [INFEASIBLE]

    def test_all_ambiguous_band(self):
        # One tenant sharing both servers: each server's worst failover
        # equals the shared replica load, so a replica sized just under
        # headroom - wfl sits between the bounds once a sibling bump is
        # anticipated.
        ps = _placement(servers=2)
        ps.place_tenant(Tenant(0, 0.3), [0, 1])
        core = _tracked_core(ps)
        headroom = 1.0 - ps.server(0).load
        wfl = ps.worst_failover_load(0, 1)
        probe = headroom - wfl - 1e-3  # inside [W, W + probe] band
        verdict = core.batch_screen(probe, n_bumped=1)
        assert verdict.tolist() == [AMBIGUOUS, AMBIGUOUS]

    def test_ineligible_reported_infeasible(self):
        ps = _placement(servers=3)
        core = _tracked_core(ps)
        core.set_eligible(1, False)
        assert core.batch_screen(0.1).tolist() == \
            [FEASIBLE, INFEASIBLE, FEASIBLE]

    def test_zero_failures_screens_on_headroom_alone(self):
        ps = _placement(servers=2)
        ps.place_tenant(Tenant(0, 0.8), [0, 1])
        core = _tracked_core(ps, failures=0)
        headroom = 1.0 - ps.server(0).load
        assert core.batch_screen(headroom / 2).tolist() == \
            [FEASIBLE, FEASIBLE]
        assert core.batch_screen(headroom + 0.1).tolist() == \
            [INFEASIBLE, INFEASIBLE]

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_inputs_rejected(self, bad):
        core = _tracked_core(_placement())
        with pytest.raises(ConfigurationError):
            core.batch_screen(bad)
        with pytest.raises(ConfigurationError):
            core.batch_screen(0.1, extra_reserve=bad)

    def test_negative_bumps_rejected(self):
        core = _tracked_core(_placement())
        with pytest.raises(ConfigurationError):
            core.batch_screen(0.1, n_bumped=-1)

    def test_verdicts_bound_the_scalar_decision(self):
        ps = _placement(servers=4)
        ps.place_tenant(Tenant(0, 0.4), [0, 1])
        ps.place_tenant(Tenant(1, 0.3), [1, 2])
        ps.place_tenant(Tenant(2, 0.2), [2, 3])
        core = _tracked_core(ps)
        for load in (0.05, 0.25, 0.55, 0.9):
            verdict = core.batch_screen(load, n_bumped=1)
            for sid in ps.server_ids:
                with arrays.overridden(False):
                    decision = robust_after_placement(
                        ps, sid, load, (), 1, future_siblings=1)
                if verdict[sid] == FEASIBLE:
                    assert decision
                elif verdict[sid] == INFEASIBLE:
                    assert not decision


class TestBatchRobustAfterPlacement:
    def _scenario(self):
        ps = _placement(servers=5)
        ps.place_tenant(Tenant(0, 0.45), [0, 1])
        ps.place_tenant(Tenant(1, 0.4), [1, 2])
        ps.place_tenant(Tenant(2, 0.3), [3, 4])
        return ps

    def test_matches_scalar_loop_and_counters(self):
        ps = self._scenario()
        with arrays.overridden(True):
            index = ServerIndex(ps, failures=1)
            for sid in ps.server_ids:
                index.track(sid)
            index.candidates(min_avail=0.0)
            batch_obs = MetricsRegistry()
            batched = batch_robust_after_placement(
                ps, ps.server_ids, 0.35, chosen=(0,), failures=1,
                future_siblings=0, obs=batch_obs)
        scalar_obs = MetricsRegistry()
        with arrays.overridden(False):
            scalars = [robust_after_placement(ps, sid, 0.35, (0,), 1,
                                              obs=scalar_obs)
                       for sid in ps.server_ids]
        assert batched == scalars
        assert batch_obs.snapshot() == scalar_obs.snapshot()

    def test_falls_back_without_a_core(self):
        ps = self._scenario()
        with arrays.overridden(False):
            obs = MetricsRegistry()
            decisions = batch_robust_after_placement(
                ps, ps.server_ids, 0.2, failures=1, obs=obs)
        assert len(decisions) == len(ps.server_ids)
        snapshot = obs.snapshot()
        counted = snapshot.get("feasibility.screened",
                               {}).get("value", 0) \
            + snapshot.get("feasibility.exact", {}).get("value", 0)
        assert counted == len(ps.server_ids)


class TestPlacementIntegration:
    def test_index_registers_its_core(self):
        ps = _placement()
        with arrays.overridden(True):
            index = ServerIndex(ps, failures=1)
            assert ps.array_core(1) is index._core

    def test_accessor_gates(self):
        ps = _placement()
        with arrays.overridden(True):
            ServerIndex(ps, failures=1)
            assert ps.array_core(1) is not None
            assert ps.array_core(2) is None  # no index for that budget
            with arrays.overridden(False):
                assert ps.array_core(1) is None
            ps.set_slack_cache(False)
            assert ps.array_core(1) is None  # naive mode stays naive
            ps.set_slack_cache(True)
            assert ps.array_core(1) is not None

    def test_legacy_index_registers_nothing(self):
        ps = _placement()
        with arrays.overridden(False):
            index = ServerIndex(ps, failures=1)
            assert index._core is None
        assert ps.array_core(1) is None

    def test_shadow_audit_gates_the_core(self):
        ps = _placement()
        with arrays.overridden(True):
            ServerIndex(ps, failures=1)
            ps.shadow_audit = True
            try:
                assert ps.array_core(1) is None
            finally:
                ps.shadow_audit = False


class TestTopPartnerMemoization:
    """Satellite of the array core: ambiguous-band probes lean on the
    placement's memoized top-partner sets, so repeated probes between
    mutations must not recompute them."""

    def _shared_scenario(self):
        ps = _placement(servers=4)
        ps.place_tenant(Tenant(0, 0.35), [0, 1])
        ps.place_tenant(Tenant(1, 0.3), [0, 2])
        ps.place_tenant(Tenant(2, 0.25), [0, 3])
        return ps

    def test_repeated_probes_do_not_recompute(self):
        ps = self._shared_scenario()
        # Prime the memo: one ambiguous-band probe per server.
        for sid in ps.server_ids:
            robust_after_placement(ps, sid, 0.3, (1,), 1,
                                   future_siblings=1)
        primed = ps.top_partner_recomputes
        assert primed > 0
        for _ in range(5):
            for sid in ps.server_ids:
                robust_after_placement(ps, sid, 0.3, (1,), 1,
                                       future_siblings=1)
        assert ps.top_partner_recomputes == primed, (
            "repeated probes between mutations recomputed the "
            "top-partner selection")

    def test_mutation_invalidates_only_touched_servers(self):
        ps = self._shared_scenario()
        ps.top_partners(0, 1)
        ps.top_partners(3, 1)
        before = ps.top_partner_recomputes
        ps.place_tenant(Tenant(3, 0.1), [1, 2])  # touches 1, 2 (+0 via
        # shared partnership), leaves 3's memo intact
        ps.top_partners(3, 1)
        assert ps.top_partner_recomputes == before
        ps.top_partners(1, 1)
        assert ps.top_partner_recomputes == before + 1

    def test_disabled_slack_cache_counts_every_call(self):
        ps = self._shared_scenario()
        ps.set_slack_cache(False)
        before = ps.top_partner_recomputes
        ps.top_partners(0, 1)
        ps.top_partners(0, 1)
        assert ps.top_partner_recomputes == before + 2


class TestResolveWorst:
    """The CSR mirror's vectorized exact resolver must be bit-identical
    to the scalar :func:`worst_shared_sum` — same values, not merely
    close — across bumped siblings, future siblings, and interleaved
    mutations that stale the CSR rows."""

    def test_empty_ids_and_zero_failures(self):
        ps = _placement()
        core = _tracked_core(ps, failures=1)
        assert core.resolve_worst([], 0.1).shape == (0,)
        zero = ArrayCore(ps, failures=0, eligibility=True)
        zero.track(0)
        assert zero.resolve_worst([0], 0.1)[0] == 0.0
        zero.close()
        core.close()

    def test_matches_scalar_reference_fuzz(self):
        import random

        from repro.algorithms.base import worst_shared_sum

        rng = random.Random(7)
        for trial in range(40):
            gamma = rng.randint(1, 4)
            ps = PlacementState(gamma=gamma)
            n_servers = rng.randint(gamma + 1, 14)
            for _ in range(n_servers):
                ps.open_server()
            failures = rng.randint(1, 3)
            core = ArrayCore(ps, failures, eligibility=True)
            for sid in ps.server_ids:
                core.track(sid)
            tid = 0
            for _ in range(rng.randint(5, 40)):
                homes = rng.sample(range(n_servers), gamma)
                try:
                    ps.place_tenant(Tenant(tid, rng.uniform(0.001, 0.15)),
                                    homes)
                except Exception:
                    continue
                tid += 1
                if rng.random() < 0.15 and tid > 1:
                    try:
                        ps.remove_tenant(rng.randint(0, tid - 1))
                    except Exception:
                        pass
                if rng.random() < 0.4:
                    load = rng.uniform(0.001, 0.5)
                    k = rng.randint(0, min(gamma - 1, n_servers - 1))
                    chosen = tuple(rng.sample(range(n_servers), k))
                    future = rng.randint(0, 3)
                    ids = [s for s in range(n_servers) if s not in chosen]
                    rng.shuffle(ids)
                    ids = ids[:rng.randint(1, len(ids))]
                    core.sync()
                    got = core.resolve_worst(ids, load, chosen, future)
                    bumps = ({c: load for c in chosen}
                             if chosen else None)
                    extras = [load] * future
                    for i, sid in enumerate(ids):
                        want = worst_shared_sum(ps, sid, failures, bumps,
                                                extras)
                        assert got[i] == want, (
                            f"resolve_worst drifted from scalar: trial "
                            f"{trial} sid {sid}: {got[i]!r} != {want!r}")
            core.close()

    def test_csr_rows_track_removals(self):
        ps = _placement(gamma=2, servers=3)
        core = _tracked_core(ps, failures=1)
        ps.place_tenant(Tenant(0, 0.2), [0, 1])
        ps.place_tenant(Tenant(1, 0.3), [0, 2])
        core.sync()
        got = core.resolve_worst([0], 0.1)
        assert got[0] == ps.worst_failover_load(0, 1)
        ps.remove_tenant(1)
        core.sync()
        got = core.resolve_worst([0], 0.1)
        assert got[0] == ps.worst_failover_load(0, 1)
        assert int(core._pcnt[0]) == 1
        core.close()

    def test_column_growth_preserves_rows(self):
        ps = PlacementState(gamma=2)
        n = ArrayCore._CSR_COLS + 5
        for _ in range(n + 1):
            ps.open_server()
        core = ArrayCore(ps, failures=2, eligibility=True)
        for sid in ps.server_ids:
            core.track(sid)
        # Give server 0 more partners than the initial CSR width.
        for tid in range(n):
            ps.place_tenant(Tenant(tid, 0.01), [0, tid + 1])
        core.sync()
        got = core.resolve_worst([0], 0.05)
        assert got[0] == ps.worst_failover_load(0, 2)
        assert core._pval.shape[1] >= n
        core.close()
