"""Property-based tests for the PS machine and statistics helpers."""

from hypothesis import assume, given, settings, strategies as st

from repro.analysis.stats import (confidence_interval_95, mean, percentile,
                                  relative_difference_percent)
from repro.cluster.engine import Simulator
from repro.cluster.machine import Machine


@given(demands=st.lists(st.floats(min_value=0.1, max_value=5.0),
                        min_size=1, max_size=12),
       cores=st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_all_jobs_complete_and_work_is_conserved(demands, cores):
    """Total busy core-seconds equals total demand; every job ends."""
    sim = Simulator()
    machine = Machine(sim, 0, cores=cores)
    done = []
    for i, demand in enumerate(demands):
        machine.submit(demand, lambda i=i: done.append(i))
    horizon = sum(demands) * len(demands) + 10.0
    sim.run_until(horizon)
    assert sorted(done) == list(range(len(demands)))
    busy = machine.utilization(horizon) * horizon * cores
    assert abs(busy - sum(demands)) < 1e-6 * max(1.0, sum(demands))


@given(demands=st.lists(st.floats(min_value=0.1, max_value=3.0),
                        min_size=2, max_size=8))
@settings(max_examples=50, deadline=None)
def test_completion_order_matches_demand_order(demands):
    """With simultaneous submission and equal sharing, smaller demands
    finish no later than larger ones."""
    sim = Simulator()
    machine = Machine(sim, 0, cores=1)
    finished = {}
    for i, demand in enumerate(demands):
        machine.submit(demand, lambda i=i: finished.setdefault(i, sim.now))
    sim.run_until(sum(demands) * 10 + 10)
    order = sorted(range(len(demands)), key=lambda i: finished[i])
    for earlier, later in zip(order, order[1:]):
        assert demands[earlier] <= demands[later] + 1e-9


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                       min_size=1, max_size=100),
       q=st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=100)
def test_percentile_bounded_by_extremes(values, q):
    p = percentile(values, q)
    assert min(values) - 1e-9 <= p <= max(values) + 1e-9


@given(values=st.lists(st.floats(min_value=-1e3, max_value=1e3),
                       min_size=1, max_size=50))
@settings(max_examples=100)
def test_percentile_monotone_in_q(values):
    qs = [0, 25, 50, 75, 99, 100]
    ps = [percentile(values, q) for q in qs]
    assert all(a <= b + 1e-9 for a, b in zip(ps, ps[1:]))


@given(values=st.lists(st.floats(min_value=-1e3, max_value=1e3),
                       min_size=1, max_size=40))
@settings(max_examples=100)
def test_ci_contains_sample_mean(values):
    ci = confidence_interval_95(values)
    assert ci.low - 1e-9 <= mean(values) <= ci.high + 1e-9


@given(baseline=st.floats(min_value=1.0, max_value=1e5),
       candidate=st.floats(min_value=1.0, max_value=1e5))
@settings(max_examples=100)
def test_relative_difference_sign(baseline, candidate):
    diff = relative_difference_percent(baseline, candidate)
    if baseline > candidate:
        assert diff > 0
    elif baseline < candidate:
        assert diff < 0
    else:
        assert diff == 0
