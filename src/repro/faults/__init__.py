"""Deterministic failpoint framework.

A *failpoint* is a named hook compiled into a code seam that can
actually fail in production — a WAL append, an fsync, a checkpoint
rename, a worker process, a feasibility probe.  Inactive failpoints are
no-ops (one module-level dict truthiness test); activating one arms a
:class:`FailpointPolicy` that decides what happens when execution next
reaches the seam:

``raise``
    Raise :class:`~repro.errors.FaultInjected` — the typed-error path.
``crash``
    Raise :class:`~repro.errors.SimulatedCrash`; crash-aware seams
    (torn WAL tail, partial checkpoint) first tear their on-disk state
    the way a real ``kill -9`` would.
``delay``
    Sleep ``seconds`` and continue (slow disk / stalled worker).
``corrupt``
    At :func:`corrupt` seams, pass the in-flight value through a
    mutator (default mutators per type produce *deterministically*
    corrupted values); a plain :func:`fire` seam treats it as a no-op.

Policies compose: ``after_hits=N`` arms the point on its N-th hit
(crash-after-N), ``max_fires=M`` disarms after M firings,
``probability=p`` fires each hit with probability ``p`` drawn from an
**explicitly seeded** RNG (``seed`` is mandatory when ``p < 1`` — there
is no nondeterministic mode).

Activation
----------
Programmatic, scoped::

    from repro import faults
    with faults.injected("store.wal.fsync", action="raise"):
        ...

or process-wide via the environment::

    REPRO_FAULTS='store.wal.append=raise,par.worker=crash:after_hits=3'

The spec grammar is ``name=action[:key=value]*`` with specs separated
by commas; :func:`parse_specs` parses it, :func:`format_spec` prints
the canonical form (used by chaos schedules and reproduction lines).

Accounting
----------
Every firing increments the registry's per-failpoint counter
(:meth:`FailpointRegistry.fired_counts`) and, when a metrics registry
is attached via :meth:`FailpointRegistry.attach_obs`, the
``faults.<name>`` and ``faults.fired`` obs counters.  The chaos
conformance harness (:mod:`repro.sim.chaos`) cross-checks all three
against its schedule.

Known failpoints live in :data:`CATALOG`; activating an unknown name
is a :class:`~repro.errors.ConfigurationError` (typos must not silently
arm nothing).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, FaultInjected, SimulatedCrash

#: Environment variable holding comma-separated failpoint specs,
#: parsed once at import (same pattern as ``REPRO_OBS``).
FAULTS_ENV_VAR = "REPRO_FAULTS"

ACTIONS = ("raise", "crash", "delay", "corrupt")

#: Every failpoint compiled into the codebase: name -> seam description.
#: The chaos CI smoke asserts each of these fires at least once.
CATALOG: Dict[str, str] = {
    "algo.place": (
        "instrumented place() wrapper, before the _place hook mutates "
        "the placement"),
    "algo.remove": (
        "instrumented remove() wrapper, before the _remove hook"),
    "algo.update_load": (
        "instrumented update_load() wrapper, before the _update_load "
        "hook"),
    "algo.feasibility": (
        "robust_after_placement entry — a feasibility probe "
        "interrupted mid-search (partial placements are rolled back)"),
    "store.wal.append": (
        "WriteAheadLog.append, before any byte of the record is "
        "written — the record is never committed"),
    "store.wal.torn_tail": (
        "WriteAheadLog.append, crash after writing *half* the record "
        "line — leaves the torn tail recovery must repair"),
    "store.wal.fsync": (
        "fsync of an appended record fails after the bytes reached "
        "the OS (record durable, controller cannot confirm it)"),
    "store.wal.read": (
        "WriteAheadLog.records, corrupts one record line before "
        "parsing — surfaces as StoreCorruptionError"),
    "store.checkpoint.write": (
        "save_checkpoint, before the temp file is written"),
    "store.checkpoint.partial": (
        "save_checkpoint, crash after writing the temp file but "
        "before the atomic rename — a half-finished checkpoint"),
    "store.recover.replay": (
        "DurableStore.recover, before replaying the WAL tail onto "
        "the restored checkpoint"),
    "par.worker": (
        "pmap worker body, before running an item (worker death "
        "mid-batch; propagates through the pool)"),
    "par.absorb.drop": (
        "pmap snapshot absorption — one worker's obs snapshot is "
        "dropped instead of merged"),
    "cluster.machine.fail": (
        "ClusterExperiment.run — fail one extra live machine at the "
        "start of the measurement window"),
    "cluster.route.dead": (
        "ReplicaRouter read dispatch — route a read to a failed home "
        "instead of a live one (surfaces as SimulationError)"),
    "array_core.desync": (
        "ArrayCore refresh — corrupt a worst-failover value as it is "
        "written into the struct-of-arrays mirror (a stale vector "
        "read; the default float mutator inflates, keeping the "
        "screen conservative)"),
    "serve.accept": (
        "PlacementServer accept loop, after a connection is accepted "
        "but before a session starts — the connection is dropped, the "
        "server keeps serving"),
    "serve.handler": (
        "PlacementServer request handler, after a frame is parsed but "
        "before admission — raise surfaces as a typed error response; "
        "crash kills the daemon mid-traffic"),
    "serve.checkpoint_timer": (
        "PlacementServer checkpoint timer body, before the checkpoint "
        "job is enqueued — raise skips this round; crash kills the "
        "daemon with the checkpoint un-taken"),
    "fleet.route": (
        "PlacementRouter.route, before a routing decision commits — "
        "the tenant was admitted but no shard has been touched"),
    "fleet.spill": (
        "PlacementRouter spillover, before a refused tenant is "
        "offered to the first sibling shard"),
    "fleet.rebalance": (
        "cross-shard rebalancer, before a migration mutates either "
        "shard — the move is abandoned whole, never half-applied"),
}


def _default_mutator(value):
    """Deterministic corruption for common in-flight value types.

    Strings become a syntactically valid JSON record with an impossible
    sequence number (so a corrupted WAL line is *detected*, never
    silently tolerated as a torn tail); numbers are perturbed, dicts
    lose a key, lists/tuples lose their tail, bytes are bit-flipped.
    """
    if isinstance(value, str):
        return '{"data": {}, "op": "~corrupt~", "seq": -1}'
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return -value - 1
    if isinstance(value, float):
        return value * 2.0 + 1.0
    if isinstance(value, bytes):
        return bytes(b ^ 0xFF for b in value)
    if isinstance(value, dict):
        if not value:
            return {"~corrupt~": True}
        clipped = dict(value)
        clipped.pop(sorted(clipped, key=repr)[0])
        return clipped
    if isinstance(value, (list, tuple)):
        return type(value)(value[: len(value) // 2])
    return None


@dataclass(frozen=True)
class FailpointPolicy:
    """What happens when an armed failpoint is reached.

    ``after_hits`` is 1-based: the default 1 fires on the very first
    hit; ``after_hits=3`` lets two hits pass and fires on the third
    (crash-after-N-hits).  ``max_fires`` disarms the point after that
    many firings (``None`` = stay armed).  ``probability < 1`` requires
    an explicit ``seed``; each *eligible* hit then fires with that
    probability, drawn from a private ``numpy`` generator, so a given
    ``(policy, hit sequence)`` always fires at the same hits.
    """

    action: str = "raise"
    after_hits: int = 1
    max_fires: Optional[int] = 1
    probability: float = 1.0
    seed: Optional[int] = None
    seconds: float = 0.0
    message: str = ""
    #: Optional corruption function for ``corrupt`` seams; defaults to
    #: the type-driven :func:`_default_mutator`.
    mutator: Optional[Callable[[object], object]] = field(
        default=None, compare=False)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ConfigurationError(
                f"unknown failpoint action {self.action!r}; "
                f"known: {list(ACTIONS)}")
        if self.after_hits < 1:
            raise ConfigurationError(
                f"after_hits must be >= 1, got {self.after_hits}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigurationError(
                f"max_fires must be >= 1 or None, got {self.max_fires}")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in (0, 1], got {self.probability!r}")
        if self.probability < 1.0 and self.seed is None:
            raise ConfigurationError(
                "probabilistic failpoints require an explicit seed "
                "(there is no nondeterministic mode)")
        if self.seconds < 0.0:
            raise ConfigurationError(
                f"seconds must be >= 0, got {self.seconds!r}")


class _Activation:
    """Mutable per-activation state: hit/fire counters and the RNG."""

    __slots__ = ("policy", "hits", "fires", "rng")

    def __init__(self, policy: FailpointPolicy) -> None:
        self.policy = policy
        self.hits = 0
        self.fires = 0
        self.rng = (np.random.default_rng(policy.seed)
                    if policy.probability < 1.0 else None)


class FailpointRegistry:
    """Holds activations and cumulative fire counts.

    One process-wide instance lives at :data:`FAILPOINTS`; tests may
    construct private registries, but the seams compiled into the
    library only consult the global one.
    """

    def __init__(self) -> None:
        #: name -> _Activation; *emptiness* of this dict is the
        #: fast-path no-op check every seam performs.
        self._active: Dict[str, _Activation] = {}
        #: Cumulative firings per name (survives disarm/clear-counts
        #: only via :meth:`reset_counts`).
        self._fired: Dict[str, int] = {}
        self._obs = None

    def __repr__(self) -> str:
        return (f"FailpointRegistry(active={self.active_names()}, "
                f"fired={sum(self._fired.values())})")

    # -- activation ----------------------------------------------------
    def activate(self, name: str, policy: Optional[FailpointPolicy] = None,
                 **kwargs) -> None:
        """Arm ``name`` with ``policy`` (or one built from ``kwargs``).

        Re-activating replaces the previous policy and resets its hit
        and fire counters (cumulative counts are unaffected).
        """
        if name not in CATALOG:
            raise ConfigurationError(
                f"unknown failpoint {name!r}; known: {sorted(CATALOG)}")
        if policy is None:
            policy = FailpointPolicy(**kwargs)
        elif kwargs:
            raise ConfigurationError(
                "pass either a policy or keyword fields, not both")
        self._active[name] = _Activation(policy)

    def deactivate(self, name: str) -> None:
        """Disarm ``name`` (no-op if not armed)."""
        self._active.pop(name, None)

    def clear(self) -> None:
        """Disarm every failpoint."""
        self._active.clear()

    def active_names(self) -> List[str]:
        """Currently armed failpoint names, sorted."""
        return sorted(self._active)

    def is_active(self, name: str) -> bool:
        return name in self._active

    def policy(self, name: str) -> Optional[FailpointPolicy]:
        activation = self._active.get(name)
        return activation.policy if activation is not None else None

    @contextmanager
    def injected(self, name: str,
                 policy: Optional[FailpointPolicy] = None,
                 **kwargs) -> Iterator["FailpointRegistry"]:
        """Scoped activation: arm on enter, disarm on exit."""
        self.activate(name, policy, **kwargs)
        try:
            yield self
        finally:
            self.deactivate(name)

    # -- accounting ----------------------------------------------------
    def attach_obs(self, registry) -> None:
        """Mirror firings into ``faults.*`` counters of a
        :class:`~repro.obs.MetricsRegistry` (gated through the global
        obs off-switch, like every other attachment)."""
        from ..obs import active as obs_active
        self._obs = obs_active(registry)

    def fired_counts(self) -> Dict[str, int]:
        """Cumulative firings per failpoint since the last reset."""
        return dict(self._fired)

    def fired(self, name: str) -> int:
        return self._fired.get(name, 0)

    def reset_counts(self) -> None:
        self._fired.clear()

    # -- the seam-side protocol -----------------------------------------
    def _trigger(self, name: str) -> Optional[FailpointPolicy]:
        """Record a hit; return the policy iff the point fires."""
        activation = self._active.get(name)
        if activation is None:
            return None
        policy = activation.policy
        activation.hits += 1
        if activation.hits < policy.after_hits:
            return None
        if activation.rng is not None \
                and activation.rng.random() >= policy.probability:
            return None
        activation.fires += 1
        self._fired[name] = self._fired.get(name, 0) + 1
        if policy.max_fires is not None \
                and activation.fires >= policy.max_fires:
            # Disarm so the seams' emptiness fast path re-engages.
            del self._active[name]
        obs = self._obs
        if obs is not None:
            obs.counter("faults.fired").inc()
            obs.counter(f"faults.{name}").inc()
            obs.emit("fault_fired", failpoint=name, action=policy.action)
        return policy

    def fire(self, name: str) -> None:
        """Hit a plain seam: raise / crash / delay per the policy.

        ``corrupt`` policies are a no-op here — corruption only has
        meaning at :meth:`corrupt` seams.
        """
        policy = self._trigger(name)
        if policy is None:
            return
        if policy.action == "raise":
            raise FaultInjected(
                policy.message or f"failpoint {name} fired",
                failpoint=name)
        if policy.action == "crash":
            raise SimulatedCrash(
                policy.message or f"failpoint {name} simulated a crash",
                failpoint=name)
        if policy.action == "delay":
            time.sleep(policy.seconds)

    def should(self, name: str) -> bool:
        """Hit a seam whose fault behaviour lives in the seam itself
        (tear the tail, drop the snapshot, pick the dead machine).

        Returns whether the point fired; a ``delay`` policy also
        sleeps.  The seam decides what the firing *means*.
        """
        policy = self._trigger(name)
        if policy is None:
            return False
        if policy.action == "delay":
            time.sleep(policy.seconds)
        return True

    def corrupt(self, name: str, value):
        """Hit a value seam: pass ``value`` through the policy's
        mutator when the point fires, else return it unchanged."""
        policy = self._trigger(name)
        if policy is None:
            return value
        if policy.action == "raise":
            raise FaultInjected(
                policy.message or f"failpoint {name} fired",
                failpoint=name)
        if policy.action == "crash":
            raise SimulatedCrash(
                policy.message or f"failpoint {name} simulated a crash",
                failpoint=name)
        if policy.action == "delay":
            time.sleep(policy.seconds)
            return value
        mutator = policy.mutator or _default_mutator
        return mutator(value)


#: The process-wide registry all compiled-in seams consult.
FAILPOINTS = FailpointRegistry()


# ---------------------------------------------------------------------------
# Module-level fast-path helpers (what the seams actually call)
# ---------------------------------------------------------------------------
def active() -> bool:
    """Whether *any* failpoint is armed (the seams' no-op fast path)."""
    return bool(FAILPOINTS._active)


def fire(name: str) -> None:
    if FAILPOINTS._active:
        FAILPOINTS.fire(name)


def should(name: str) -> bool:
    return bool(FAILPOINTS._active) and FAILPOINTS.should(name)


def corrupt(name: str, value):
    if FAILPOINTS._active:
        return FAILPOINTS.corrupt(name, value)
    return value


def injected(name: str, policy: Optional[FailpointPolicy] = None,
             **kwargs):
    """Scoped activation on the global registry (context manager)."""
    return FAILPOINTS.injected(name, policy, **kwargs)


# ---------------------------------------------------------------------------
# Spec grammar:  name=action[:key=value]*  (comma-separated lists)
# ---------------------------------------------------------------------------
_SPEC_KEYS = {
    "after_hits": int, "after": int,
    "max_fires": int, "fires": int,
    "probability": float, "p": float,
    "seed": int,
    "seconds": float,
    "message": str,
}
_KEY_ALIASES = {"after": "after_hits", "fires": "max_fires",
                "p": "probability"}


def parse_spec(text: str) -> Tuple[str, FailpointPolicy]:
    """Parse one ``name=action[:key=value]*`` spec.

    ``max_fires`` defaults to 1 (a spec arms one firing unless it says
    otherwise; ``fires=0`` is rejected by the policy, use an explicit
    large value for unbounded experiments).
    """
    text = text.strip()
    if "=" not in text:
        raise ConfigurationError(
            f"bad failpoint spec {text!r}: expected name=action[:k=v]*")
    name, _, rest = text.partition("=")
    name = name.strip()
    if name not in CATALOG:
        raise ConfigurationError(
            f"unknown failpoint {name!r}; known: {sorted(CATALOG)}")
    parts = rest.split(":")
    action = parts[0].strip()
    fields: Dict[str, object] = {"action": action}
    for part in parts[1:]:
        if "=" not in part:
            raise ConfigurationError(
                f"bad failpoint option {part!r} in spec {text!r}: "
                f"expected key=value")
        key, _, raw = part.partition("=")
        key = key.strip()
        caster = _SPEC_KEYS.get(key)
        if caster is None:
            raise ConfigurationError(
                f"unknown failpoint option {key!r} in spec {text!r}; "
                f"known: {sorted(set(_SPEC_KEYS) - set(_KEY_ALIASES))}")
        try:
            value = caster(raw.strip())
        except ValueError:
            raise ConfigurationError(
                f"failpoint option {key}={raw.strip()!r} in spec "
                f"{text!r} is not a valid {caster.__name__}") from None
        fields[_KEY_ALIASES.get(key, key)] = value
    fields.setdefault("max_fires", 1)
    return name, FailpointPolicy(**fields)


def parse_specs(text: str) -> List[Tuple[str, FailpointPolicy]]:
    """Parse a comma-separated list of specs (the env-var format)."""
    parsed: List[Tuple[str, FailpointPolicy]] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if chunk:
            parsed.append(parse_spec(chunk))
    return parsed


def format_spec(name: str, policy: FailpointPolicy) -> str:
    """Canonical spec string; ``parse_spec`` round-trips it."""
    default = FailpointPolicy(action=policy.action)
    parts = [f"{name}={policy.action}"]
    if policy.after_hits != default.after_hits:
        parts.append(f"after_hits={policy.after_hits}")
    if policy.max_fires != 1:
        parts.append(f"max_fires={policy.max_fires}")
    if policy.probability != default.probability:
        parts.append(f"probability={policy.probability}")
        parts.append(f"seed={policy.seed}")
    if policy.seconds != default.seconds:
        parts.append(f"seconds={policy.seconds}")
    if policy.message:
        parts.append(f"message={policy.message}")
    return ":".join(parts)


def activate_from_env(registry: Optional[FailpointRegistry] = None,
                      environ=None) -> List[str]:
    """Arm failpoints from :data:`FAULTS_ENV_VAR`; returns armed names.

    Called once at import; exposed for tests and long-lived processes
    that mutate their environment.
    """
    registry = registry if registry is not None else FAILPOINTS
    environ = environ if environ is not None else os.environ
    text = environ.get(FAULTS_ENV_VAR, "")
    armed: List[str] = []
    for name, policy in parse_specs(text):
        registry.activate(name, policy)
        armed.append(name)
    return armed


activate_from_env()


__all__ = [
    "ACTIONS", "CATALOG", "FAULTS_ENV_VAR", "FAILPOINTS",
    "FailpointPolicy", "FailpointRegistry",
    "active", "activate_from_env", "corrupt", "fire", "format_spec",
    "injected", "parse_spec", "parse_specs", "should",
]
