"""Unit tests for the soak harness."""

import pytest

from repro.algorithms.rfi import RFI
from repro.core.cubefit import CubeFit
from repro.sim.soak import DEFAULT_MIX, SoakConfig, SoakResult, run_soak
from repro.errors import ConfigurationError


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoakConfig(operations=0)
        with pytest.raises(ConfigurationError):
            SoakConfig(min_load=0.0)
        with pytest.raises(ConfigurationError):
            SoakConfig(mix={"teleport": 1.0})

    def test_custom_mix_accepted(self):
        SoakConfig(mix={"place": 1.0, "remove": 1.0})


class TestRunSoak:
    @pytest.fixture(scope="class")
    def cubefit_result(self):
        return run_soak(lambda: CubeFit(gamma=2, num_classes=10),
                        SoakConfig(operations=300, seed=0))

    def test_no_violations(self, cubefit_result):
        assert cubefit_result.ok, str(cubefit_result)
        assert cubefit_result.violations == 0

    def test_all_operation_kinds_exercised(self, cubefit_result):
        assert set(cubefit_result.counts) == set(DEFAULT_MIX)

    def test_counts_sum_to_operations(self, cubefit_result):
        assert sum(cubefit_result.counts.values()) == \
            cubefit_result.operations == 300

    def test_rfi_soak_ok_at_its_guarantee(self):
        result = run_soak(lambda: RFI(gamma=2),
                          SoakConfig(operations=250, seed=1))
        assert result.ok

    def test_gamma3_soak_ok(self):
        result = run_soak(lambda: CubeFit(gamma=3, num_classes=5),
                          SoakConfig(operations=200, seed=2))
        assert result.ok

    def test_audit_at_end_only(self):
        result = run_soak(lambda: CubeFit(gamma=2, num_classes=5),
                          SoakConfig(operations=120, seed=3,
                                     audit_each=False))
        assert result.ok

    def test_reproducible(self):
        a = run_soak(lambda: RFI(gamma=2),
                     SoakConfig(operations=100, seed=4))
        b = run_soak(lambda: RFI(gamma=2),
                     SoakConfig(operations=100, seed=4))
        assert a.counts == b.counts
        assert a.final_servers == b.final_servers

    def test_str(self, cubefit_result):
        assert "SoakResult" in str(cubefit_result)
        assert "OK" in str(cubefit_result)


class TestGammaOne:
    """gamma=1 (no replication): soak must run, not crash.

    ``rng.integers(1, gamma)`` is an empty range at gamma=1; the
    harness converts ``fail_and_recover`` to a plain placement when
    there is no failure budget to spend.
    """

    def test_gamma1_soak_runs_clean(self):
        from repro.algorithms.naive import RobustBestFit
        result = run_soak(lambda: RobustBestFit(gamma=1),
                          SoakConfig(operations=150, seed=5))
        assert result.ok, str(result)
        assert "fail_and_recover" not in result.counts
        assert sum(result.counts.values()) == 150

    def test_zero_budget_skips_fail_and_recover(self):
        """Even at gamma>=2, a zero failure budget means no failures."""
        from repro.algorithms.naive import RobustBestFit
        result = run_soak(lambda: RobustBestFit(gamma=2, failures=0),
                          SoakConfig(operations=120, seed=6))
        assert result.ok, str(result)
        assert "fail_and_recover" not in result.counts
        assert result.recovered_replicas == 0


class TestGuaranteedFailures:
    def test_defaults(self):
        assert CubeFit(gamma=3, num_classes=5).guaranteed_failures == 2
        assert RFI(gamma=3).guaranteed_failures == 1

    def test_naive_override(self):
        from repro.algorithms.naive import RobustBestFit
        assert RobustBestFit(gamma=3, failures=1).guaranteed_failures == 1
        assert RobustBestFit(gamma=3).guaranteed_failures == 2
