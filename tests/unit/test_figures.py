"""Unit tests for the figure/table harness building blocks.

The full experiments run in benchmarks/; here we exercise the harness
machinery at miniature scale.
"""

import pytest

from repro.core.cubefit import CubeFit
from repro.algorithms.rfi import RFI
from repro.sim.figures import (FilledCluster, Table1Result, fill_cluster,
                               figure5_configurations, table1, theorem2)
from repro.sim.scenarios import ScaleProfile
from repro.workloads.distributions import DiscreteUniformClients
from repro.workloads.loadmodel import DEFAULT_LOAD_MODEL
from repro.errors import ConfigurationError


TINY_SCALE = ScaleProfile(
    name="test", sim_tenants=300, sim_runs=2, cluster_servers=8,
    cluster_warmup=5.0, cluster_measure=10.0, theorem2_max_k=31)


class TestFillCluster:
    def test_respects_server_budget(self):
        filled = fill_cluster(lambda: CubeFit(gamma=2, num_classes=5),
                              DiscreteUniformClients(1, 15),
                              max_servers=8, seed=0)
        used = {h for homes in filled.tenant_homes.values() for h in homes}
        assert len(used) <= 8
        assert filled.num_tenants > 0
        assert filled.total_clients > 0

    def test_rejected_tenants_not_in_assignment(self):
        filled = fill_cluster(lambda: RFI(gamma=2),
                              DiscreteUniformClients(1, 15),
                              max_servers=5, seed=0)
        placement = filled.algorithm.placement
        for tid in filled.tenant_homes:
            assert len(placement.tenant_servers(tid)) == 2

    def test_denser_than_single_overflow_stop(self):
        """Admission control keeps admitting smaller tenants after a
        large one is rejected."""
        dense = fill_cluster(lambda: RFI(gamma=2),
                             DiscreteUniformClients(1, 15),
                             max_servers=6, seed=0, max_rejections=30)
        sparse = fill_cluster(lambda: RFI(gamma=2),
                              DiscreteUniformClients(1, 15),
                              max_servers=6, seed=0, max_rejections=1)
        assert dense.num_tenants >= sparse.num_tenants

    def test_homes_are_gamma_distinct_servers(self):
        filled = fill_cluster(lambda: CubeFit(gamma=3, num_classes=5),
                              DiscreteUniformClients(1, 15),
                              max_servers=12, seed=1)
        for homes in filled.tenant_homes.values():
            assert len(homes) == len(set(homes)) == 3

    def test_invalid_max_servers(self):
        with pytest.raises(ConfigurationError):
            fill_cluster(lambda: RFI(gamma=2),
                         DiscreteUniformClients(1, 15), max_servers=0)


class TestFigure5Configurations:
    def test_three_bars(self):
        configs = figure5_configurations()
        assert set(configs) == {"CubeFit 2 replicas", "CubeFit 3 replicas",
                                "RFI 2 replicas"}
        cf2 = configs["CubeFit 2 replicas"]()
        assert cf2.gamma == 2
        assert cf2.config.num_classes == 5  # K=5 in the system experiments
        rfi = configs["RFI 2 replicas"]()
        assert rfi.mu == 0.85


class TestTable1:
    def test_miniature_run(self):
        result = table1(scale=TINY_SCALE)
        assert isinstance(result, Table1Result)
        rows = result.rows()
        assert [r.distribution for r in rows] == ["Uniform", "Zipfian"]
        for row in rows:
            assert row.rfi_servers > row.cubefit_servers * 0.5
            assert row.yearly_savings_usd == pytest.approx(
                row.servers_saved * 0.822 * 8760)
            # Extrapolation scales by 50k/300
            assert row.rfi_servers_50k == pytest.approx(
                row.rfi_servers * 50000 / 300)
        assert "Table I" in str(result)


class TestTheorem2:
    def test_sweep_rows(self):
        result = theorem2(gammas=(2,), class_counts=[21, 31])
        ratios = {r.num_classes: r.ratio for r in result.rows()}
        assert ratios[21] == pytest.approx(5 / 3, abs=1e-9)
        assert result.ratio_at(2, 31) <= ratios[21]
        assert "Theorem 2" in str(result)

    def test_undefined_k_skipped(self):
        result = theorem2(gammas=(3,), class_counts=[10, 31])
        assert all(r.num_classes != 10 for r in result.rows())
