"""Simple replica-aware packing baselines used for ablation.

These algorithms are *robust-by-check* variants of the classic online
bin-packing heuristics: each placement is admitted only if the packing
stays robust against ``failures`` simultaneous server failures under the
exact shared-load accounting (the same check RFI and CUBEFIT's first
stage use), but the *selection rule* is the classic one:

* :class:`RobustFirstFit` — lowest-id feasible server;
* :class:`RobustNextFit` — only the most recently used servers are
  considered; otherwise open new ones;
* :class:`RobustBestFit` — fullest feasible server (RFI without the
  interleaving threshold).

They bound how much of CUBEFIT's advantage comes from the cube structure
versus merely checking robustness.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..core.tenant import Replica, Tenant
from ..errors import ConfigurationError
from .base import (OnlinePlacementAlgorithm, ServerIndex, register,
                   robust_after_placement)


class _CheckedBaseline(OnlinePlacementAlgorithm):
    """Shared scaffolding: place replicas one by one with a robustness
    check; open a new server when no feasible candidate exists."""

    #: Subclasses that never run fullest-first candidate queries (and so
    #: never amortize an array core's sync cost) set this to keep the
    #: index on the legacy scalar engine — see ``ServerIndex``.
    _probe_only = False

    def __init__(self, gamma: int = 2, failures: Optional[int] = None,
                 capacity: float = 1.0) -> None:
        super().__init__(gamma=gamma, capacity=capacity)
        if failures is None:
            failures = gamma - 1
        if failures < 0:
            raise ConfigurationError(
                f"failures must be non-negative, got {failures}")
        self.failures = failures
        self._index = ServerIndex(self.placement, failures=failures,
                                  probe_only=self._probe_only)

    @property
    def guaranteed_failures(self) -> int:
        return self.failures

    def _place(self, tenant: Tenant) -> Tuple[int, ...]:
        chosen: List[int] = []
        for replica in tenant.replicas(self.gamma):
            target = self._select(replica, chosen)
            if target is None:
                target = self._open_server()
            self.placement.place(replica, target)
            chosen.append(target)
        self._after_tenant(chosen)
        return tuple(chosen)

    def _open_server(self) -> int:
        server = self.placement.open_server()
        self._index.track(server.server_id)
        return server.server_id

    def _feasible(self, sid: int, replica: Replica,
                  chosen: List[int]) -> bool:
        # Anticipate unplaced sibling replicas: they may land on fresh
        # servers, whose shared-load bump no later check would guard.
        future = self.gamma - len(chosen) - 1
        return robust_after_placement(self.placement, sid, replica.load,
                                      chosen, failures=self.failures,
                                      future_siblings=future,
                                      obs=self._obs)

    def _select(self, replica: Replica,
                chosen: List[int]) -> Optional[int]:
        raise NotImplementedError

    def _adopted(self, placement) -> None:
        # The only internal state is the candidate index, which is a
        # pure function of the placement: rebuild it over the adopted
        # state with every existing server eligible.
        self._index = ServerIndex(placement, failures=self.failures,
                                  probe_only=self._probe_only)
        for sid in placement.server_ids:
            self._index.track(sid)

    def _after_tenant(self, chosen: List[int]) -> None:
        """Hook for subclasses needing to track recency (Next Fit)."""

    def describe(self) -> dict:
        info = super().describe()
        info["failures"] = self.failures
        return info


@register
class RobustBestFit(_CheckedBaseline):
    """Fullest feasible server per replica; no interleaving threshold."""

    name = "bestfit"

    def _select(self, replica: Replica,
                chosen: List[int]) -> Optional[int]:
        return self._index.select(
            replica.load, chosen, min_avail=replica.load,
            exclude=chosen,
            future_siblings=self.gamma - len(chosen) - 1,
            obs=self._obs)


@register
class RobustFirstFit(_CheckedBaseline):
    """Lowest-id feasible server per replica."""

    name = "firstfit"

    # First Fit's scans are id-ordered, not fullest-first: its
    # candidates_by_id query skips the ordering work the array core
    # amortizes, so the core only taxed it (0.93x in the PR 6 bench) —
    # keep the legacy engine.
    _probe_only = True

    def _select(self, replica: Replica,
                chosen: List[int]) -> Optional[int]:
        candidates = self._index.candidates_by_id(min_avail=replica.load,
                                                  exclude=chosen)
        for sid in candidates:
            if self._feasible(sid, replica, chosen):
                return sid
        return None


@register
class RobustNextFit(_CheckedBaseline):
    """Keeps a short window of recently used servers; replicas go to the
    first feasible one, else a new server (classic Next Fit generalized
    to replicated tenants).

    The window holds ``window`` server ids (default ``2 * gamma``) in
    most-recently-used order.
    """

    name = "nextfit"

    # Next Fit never issues a candidate query at all — it probes its
    # recency window directly — so the array core's scalar-read path was
    # pure overhead (0.96x in the PR 6 bench): keep the legacy engine.
    _probe_only = True

    def __init__(self, gamma: int = 2, failures: Optional[int] = None,
                 capacity: float = 1.0, window: Optional[int] = None) -> None:
        super().__init__(gamma=gamma, failures=failures, capacity=capacity)
        self.window = window if window is not None else 2 * gamma
        if self.window < gamma:
            raise ConfigurationError(
                f"window must be >= gamma, got {self.window}")
        self._recent: Deque[int] = deque(maxlen=self.window)

    def _select(self, replica: Replica,
                chosen: List[int]) -> Optional[int]:
        for sid in self._recent:
            if sid in chosen:
                continue
            if self._feasible(sid, replica, chosen):
                return sid
        return None

    def _after_tenant(self, chosen: List[int]) -> None:
        for sid in chosen:
            if sid in self._recent:
                self._recent.remove(sid)
            self._recent.appendleft(sid)
