"""Oracle-anchored differential properties.

Three layers of trust, each checked against the one below:

* ``brute_force_optimum`` — independent exhaustive enumeration —
  must agree exactly with ``branch_and_bound_optimum`` on tiny
  instances, under *both* placement engines (``REPRO_ARRAY_CORE``
  flips the seed incumbent's index engine; the optimum must not care).
* The oracle's packings must pass the float robustness audits — both
  the worst-case ``audit`` and the exhaustive ``brute_force_audit`` —
  proving the exact rational model and the float audit accept the same
  packings.
* Every heuristic is sandwiched: ``certified_lower_bound <= oracle LB
  <= OPT <= heuristic servers``, *at the heuristic's own guaranteed
  failure budget* — RFI reserves for one failure regardless of gamma,
  so pinning it against the ``gamma - 1`` oracle would be comparing
  solutions of different problems (and RFI would win).

Loads are drawn on a coarse two-decimal grid in ``[0.05, 0.95]`` — the
same regime the simulator's distributions produce — so the search stays
milliseconds-fast while still exercising tight packings.
"""

from hypothesis import given, settings, strategies as st

from repro.algorithms.base import make_algorithm
from repro.analysis.optimum import (SearchBudget, assignment_to_placement,
                                    branch_and_bound_optimum,
                                    brute_force_optimum,
                                    certified_lower_bound)
from repro.core import arrays
from repro.core.tenant import Tenant
from repro.core.validation import audit, brute_force_audit

GRID = st.integers(5, 95).map(lambda v: v / 100)

#: Heuristics the sandwich property pins against the oracle.
HEURISTICS = ("cubefit", "rfi", "firstfit", "bestfit", "nextfit")


def _tiny_instance(data):
    """(loads, gamma) kept inside the brute-force-friendly regime.

    Six mid-load tenants at gamma 3 have millions of canonical
    prefixes — the enumeration is exhaustive by design — so gamma 3
    stays at five tenants.
    """
    gamma = data.draw(st.integers(1, 3), label="gamma")
    max_n = 5 if gamma == 3 else 6
    loads = data.draw(st.lists(GRID, min_size=1, max_size=max_n),
                      label="loads")
    return loads, gamma


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_brute_force_matches_branch_and_bound(data):
    loads, gamma = _tiny_instance(data)
    engine = data.draw(st.booleans(), label="array_core")
    with arrays.overridden(engine):
        brute = brute_force_optimum(loads, gamma)
        bnb = branch_and_bound_optimum(loads, gamma)
    assert brute.certified and bnb.certified
    assert brute.upper_bound == bnb.upper_bound, (
        f"brute force found {brute.upper_bound} servers, "
        f"branch-and-bound {bnb.upper_bound} for {loads} at "
        f"gamma={gamma}")
    for result in (brute, bnb):
        placement = assignment_to_placement(loads, result.assignment,
                                            gamma)
        assert placement.num_servers == result.upper_bound
        assert audit(placement, failures=gamma - 1).ok
        assert brute_force_audit(placement, failures=gamma - 1).ok


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_oracle_sandwiches_every_heuristic(data):
    gamma = data.draw(st.integers(2, 3), label="gamma")
    loads = data.draw(st.lists(GRID, min_size=1, max_size=10),
                      label="loads")
    tenants = [Tenant(tenant_id=i, load=load)
               for i, load in enumerate(loads)]
    oracles = {}
    for name in HEURISTICS:
        algo = make_algorithm(name, gamma)
        algo.consolidate(tenants)
        f = algo.guaranteed_failures
        if f not in oracles:
            result = branch_and_bound_optimum(
                loads, gamma, failures=f,
                budget=SearchBudget(max_nodes=20_000))
            assert certified_lower_bound(loads, gamma, f) \
                <= result.lower_bound
            assert result.lower_bound <= result.upper_bound
            placement = assignment_to_placement(loads,
                                                result.assignment, gamma)
            assert placement.num_servers == result.upper_bound
            assert audit(placement, failures=f).ok
            oracles[f] = result
        assert algo.placement.num_servers >= oracles[f].lower_bound, (
            f"{name} used {algo.placement.num_servers} servers, below "
            f"the certified lower bound {oracles[f].lower_bound} for "
            f"{loads} at gamma={gamma}, failures={f}")


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_exhausted_budget_still_certifies(data):
    loads = data.draw(st.lists(GRID, min_size=12, max_size=16),
                      label="loads")
    starved = branch_and_bound_optimum(
        loads, 2, budget=SearchBudget(max_nodes=3))
    assert starved.lower_bound <= starved.upper_bound
    assert certified_lower_bound(loads, 2) <= starved.lower_bound
    # The interval's packing is real and robust even when the search
    # was cut off immediately.
    placement = assignment_to_placement(loads, starved.assignment, 2)
    assert placement.num_servers == starved.upper_bound
    assert audit(placement, failures=1).ok
    if starved.exhausted:
        # A later, bigger-budget solve can only tighten the interval.
        better = branch_and_bound_optimum(
            loads, 2, budget=SearchBudget(max_nodes=50_000))
        assert starved.lower_bound <= better.lower_bound
        assert better.upper_bound <= starved.upper_bound
