"""Shared data store model (Figure 4 of the paper).

Each server runs a single data system shared by all tenants it hosts
("shared data system multi-tenant model").  The aspect that matters to
the experiments is cache warm-up: the paper runs the workload for five
minutes so "the database system [can] cache all tenants' data in
memory" before measuring.  We model that with a per-(machine, tenant)
access counter: the first ``warm_after`` queries of a tenant on a
machine pay a cold-read multiplier on their service demand; afterwards
data is memory-resident and queries run at full speed.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import SimulationError

#: Demand multiplier while a tenant's data is not yet cached.
DEFAULT_COLD_PENALTY = 2.5

#: Queries after which a tenant's data counts as fully cached.
DEFAULT_WARM_AFTER = 5


class DataStore:
    """Per-machine shared store tracking tenant cache warmth."""

    def __init__(self, cold_penalty: float = DEFAULT_COLD_PENALTY,
                 warm_after: int = DEFAULT_WARM_AFTER) -> None:
        if cold_penalty < 1.0:
            raise SimulationError(
                f"cold_penalty must be >= 1, got {cold_penalty}")
        if warm_after < 0:
            raise SimulationError(
                f"warm_after must be >= 0, got {warm_after}")
        self.cold_penalty = cold_penalty
        self.warm_after = warm_after
        self._accesses: Dict[Tuple[int, int], int] = {}

    def demand_multiplier(self, machine_id: int, tenant_id: int) -> float:
        """Multiplier for the next query of ``tenant_id`` on ``machine_id``
        (and record the access)."""
        key = (machine_id, tenant_id)
        count = self._accesses.get(key, 0)
        self._accesses[key] = count + 1
        if count >= self.warm_after:
            return 1.0
        return self.cold_penalty

    def is_warm(self, machine_id: int, tenant_id: int) -> bool:
        return self._accesses.get((machine_id, tenant_id), 0) \
            >= self.warm_after

    def evict_machine(self, machine_id: int) -> None:
        """Forget warmth for a machine (e.g. after failure/restart)."""
        for key in [k for k in self._accesses if k[0] == machine_id]:
            del self._accesses[key]
