"""Property tests for the incremental slack index.

The index memoizes each server's worst-case failover load and
invalidates only the servers a mutation affects.  The property: under
*any* interleaving of ``place``, ``unplace``, ``place_tenant`` and
``remove_tenant``, every cached value equals a from-scratch
recomputation from the raw replica sets.  Shadow-audit mode is enabled
throughout, so every read is additionally cross-checked inside the
placement itself and any divergence raises.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.placement import PlacementState
from repro.core.tenant import Tenant
from repro.errors import CapacityError, PlacementError, ShadowAuditError

MAX_SERVERS = 8


def assert_index_matches_naive(ps):
    """Every cached slack quantity equals naive recomputation."""
    budgets = sorted({1, ps.gamma - 1, ps.gamma})
    for sid in ps.server_ids:
        for f in budgets:
            cached = ps.worst_failover_load(sid, f)
            naive = ps.naive_worst_failover_load(sid, f)
            assert cached == pytest.approx(naive, abs=1e-9), (
                f"server {sid} failures={f}: cached {cached} "
                f"vs naive {naive}")
        assert ps.slack(sid) == pytest.approx(ps.naive_slack(sid),
                                              abs=1e-9)


@given(gamma=st.integers(2, 4), data=st.data())
@settings(max_examples=40, deadline=None)
def test_cached_slack_matches_naive_under_interleavings(gamma, data):
    ps = PlacementState(gamma=gamma, shadow_audit=True)
    for _ in range(gamma + 1):
        ps.open_server()
    next_tid = 0
    n_ops = data.draw(st.integers(min_value=5, max_value=30),
                      label="n_ops")
    for step in range(n_ops):
        op = data.draw(st.sampled_from(
            ["place_tenant", "remove_tenant", "place", "unplace",
             "open_server"]), label=f"op[{step}]")
        if op == "open_server" and ps.num_servers < MAX_SERVERS:
            ps.open_server()
        elif op == "place_tenant":
            load = data.draw(st.floats(min_value=0.01, max_value=0.9),
                             label="load")
            perm = data.draw(st.permutations(ps.server_ids),
                             label="targets")
            try:
                ps.place_tenant(Tenant(next_tid, load), perm[:gamma])
            except CapacityError:
                continue
            next_tid += 1
        elif op == "place":
            # Place a *single* replica of a fresh tenant (partially
            # placed tenants are the hard case for sibling
            # invalidation as later siblings join one by one).
            load = data.draw(st.floats(min_value=0.01, max_value=0.9),
                             label="load")
            tenant = Tenant(next_tid, load)
            replicas = tenant.replicas(gamma)
            count = data.draw(st.integers(1, gamma), label="count")
            perm = data.draw(st.permutations(ps.server_ids),
                             label="targets")
            try:
                for replica, sid in zip(replicas[:count], perm):
                    ps.place(replica, sid)
            except CapacityError:
                pass
            next_tid += 1
        elif op == "remove_tenant" and ps.tenant_ids:
            victim = data.draw(st.sampled_from(ps.tenant_ids),
                               label="victim")
            ps.remove_tenant(victim)
        elif op == "unplace" and ps.tenant_ids:
            tid = data.draw(st.sampled_from(ps.tenant_ids),
                            label="tenant")
            homes = ps.tenant_servers(tid)
            index = data.draw(st.sampled_from(sorted(homes)),
                              label="replica")
            ps.unplace((tid, index), homes[index])
        assert_index_matches_naive(ps)


@given(gamma=st.integers(2, 4), data=st.data())
@settings(max_examples=25, deadline=None)
def test_dirty_tracker_covers_every_affected_server(gamma, data):
    """Draining the tracker and re-checking only those servers is
    enough: servers never reported dirty keep their previous slack."""
    ps = PlacementState(gamma=gamma)
    for _ in range(gamma + 2):
        ps.open_server()
    tracker = ps.dirty_tracker()
    tracker.drain()
    known = {sid: ps.slack(sid) for sid in ps.server_ids}
    next_tid = 0
    for step in range(data.draw(st.integers(3, 15), label="n_ops")):
        op = data.draw(st.sampled_from(["place_tenant", "remove_tenant"]),
                       label=f"op[{step}]")
        if op == "place_tenant":
            load = data.draw(st.floats(min_value=0.01, max_value=0.6),
                             label="load")
            perm = data.draw(st.permutations(ps.server_ids),
                             label="targets")
            try:
                ps.place_tenant(Tenant(next_tid, load), perm[:gamma])
            except CapacityError:
                continue
            next_tid += 1
        elif ps.tenant_ids:
            victim = data.draw(st.sampled_from(ps.tenant_ids),
                               label="victim")
            ps.remove_tenant(victim)
        for sid in tracker.drain():
            known[sid] = ps.slack(sid)
        # If invalidation missed a server, its stale entry in `known`
        # would now disagree with ground truth.
        for sid in ps.server_ids:
            assert known[sid] == pytest.approx(ps.naive_slack(sid),
                                               abs=1e-9), (
                f"server {sid} stale after op {step}: tracker never "
                f"reported it dirty")


class TestShadowAuditFalsifiability:
    """The shadow audit must actually catch a corrupted index."""

    def test_corrupted_shared_index_raises(self):
        ps = PlacementState(gamma=2, shadow_audit=True)
        for _ in range(3):
            ps.open_server()
        ps.place_tenant(Tenant(0, 0.6), [0, 1])
        ps.worst_failover_load(0)  # consistent: no divergence
        ps._shared[0][1] += 0.25  # simulate a missed invalidation
        ps._wfl_cache.pop(0, None)
        with pytest.raises(ShadowAuditError):
            ps.worst_failover_load(0)

    def test_corrupted_cache_entry_raises(self):
        ps = PlacementState(gamma=2, shadow_audit=True)
        for _ in range(3):
            ps.open_server()
        ps.place_tenant(Tenant(0, 0.6), [0, 1])
        ps.worst_failover_load(0)
        ps._wfl_cache[0][1] = 0.999  # stale value survives a mutation
        with pytest.raises(ShadowAuditError):
            ps.worst_failover_load(0)

    def test_unplace_rollback_keeps_index_consistent(self):
        ps = PlacementState(gamma=3, shadow_audit=True)
        for _ in range(4):
            ps.open_server()
        ps.place_tenant(Tenant(0, 0.9), [0, 1, 2])
        with pytest.raises(PlacementError):
            # Duplicate target triggers the atomic rollback path.
            ps.place_tenant(Tenant(1, 0.3), [0, 1, 1])
        assert_index_matches_naive(ps)
