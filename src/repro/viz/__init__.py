"""Dependency-free SVG rendering of the paper's figures."""

from .svg import Document, Element, rect, line, polyline, circle, text, \
    group
from .palette import (SURFACE, TEXT_PRIMARY, TEXT_SECONDARY, TEXT_MUTED,
                      GRID, AXIS, SERIES, STATUS_SERIOUS, STATUS_GOOD,
                      series_color)
from .charts import (BarSeries, LineSeries, Threshold, grouped_bar_chart,
                     line_chart)
from .figures import (render_figure5, render_figure6, render_theorem2,
                      render_scaling, render_sensitivity, render_churn,
                      render_all)

__all__ = [
    "Document", "Element", "rect", "line", "polyline", "circle", "text",
    "group", "SURFACE", "TEXT_PRIMARY", "TEXT_SECONDARY", "TEXT_MUTED",
    "GRID", "AXIS", "SERIES", "STATUS_SERIOUS", "STATUS_GOOD",
    "series_color", "BarSeries", "LineSeries", "Threshold",
    "grouped_bar_chart", "line_chart", "render_figure5",
    "render_figure6", "render_theorem2", "render_scaling",
    "render_sensitivity", "render_churn", "render_all",
]
