"""Unit tests for repro.core.placement (shared-load accounting)."""

import pytest

from repro.core.placement import PlacementState
from repro.core.tenant import Tenant, Replica
from repro.errors import ConfigurationError, PlacementError


def fresh(gamma=2, servers=0):
    ps = PlacementState(gamma=gamma)
    for _ in range(servers):
        ps.open_server()
    return ps


class TestConstruction:
    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            PlacementState(gamma=0)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            PlacementState(gamma=2, capacity=0.0)

    def test_server_ids_sequential(self):
        ps = fresh(servers=3)
        assert ps.server_ids == [0, 1, 2]
        assert ps.num_servers == 3


class TestPlaceUnplace:
    def test_place_tenant_updates_shared(self):
        ps = fresh(gamma=2, servers=2)
        ps.place_tenant(Tenant(0, 0.6), [0, 1])
        assert ps.shared_load(0, 1) == pytest.approx(0.3)
        assert ps.shared_load(1, 0) == pytest.approx(0.3)
        assert ps.server(0).load == pytest.approx(0.3)

    def test_shared_accumulates_over_tenants(self):
        ps = fresh(gamma=2, servers=2)
        ps.place_tenant(Tenant(0, 0.4), [0, 1])
        ps.place_tenant(Tenant(1, 0.2), [0, 1])
        assert ps.shared_load(0, 1) == pytest.approx(0.3)

    def test_unplace_restores_shared(self):
        ps = fresh(gamma=2, servers=2)
        ps.place_tenant(Tenant(0, 0.6), [0, 1])
        ps.remove_tenant(0)
        assert ps.shared_load(0, 1) == 0.0
        assert ps.server(0).load == pytest.approx(0.0)
        assert ps.num_tenants == 0

    def test_place_requires_distinct_servers(self):
        ps = fresh(gamma=2, servers=2)
        with pytest.raises(PlacementError):
            ps.place_tenant(Tenant(0, 0.5), [0, 0])

    def test_place_requires_gamma_servers(self):
        ps = fresh(gamma=3, servers=3)
        with pytest.raises(PlacementError):
            ps.place_tenant(Tenant(0, 0.5), [0, 1])

    def test_atomic_rollback_on_failure(self):
        from repro.errors import CapacityError
        ps = fresh(gamma=2, servers=3)
        ps.place_tenant(Tenant(0, 0.9), [0, 1])   # 0.45 on each
        ps.place_tenant(Tenant(1, 0.9), [1, 2])   # server 1 now at 0.90
        # Tenant 2's first replica (0.5) fits on server 0 (free 0.55) but
        # the second cannot fit on server 1 (free 0.10): the whole
        # placement must roll back, leaving server 0 untouched.
        with pytest.raises(CapacityError):
            ps.place_tenant(Tenant(2, 1.0), [0, 1])
        assert ps.tenant_load(2) == 0.0
        assert ps.server(0).load == pytest.approx(0.45)
        assert ps.shared_load(0, 1) == pytest.approx(0.45)

    def test_duplicate_replica_placement_rejected(self):
        ps = fresh(gamma=2, servers=2)
        ps.place(Replica(0, 0, 0.2), 0)
        with pytest.raises(PlacementError):
            ps.place(Replica(0, 0, 0.2), 1)

    def test_unplace_unknown_tenant(self):
        ps = fresh(gamma=2, servers=1)
        with pytest.raises(PlacementError):
            ps.remove_tenant(42)


class TestQueries:
    def test_tenant_servers_mapping(self):
        ps = fresh(gamma=3, servers=3)
        ps.place_tenant(Tenant(5, 0.3), [2, 0, 1])
        assert ps.tenant_servers(5) == {0: 2, 1: 0, 2: 1}

    def test_worst_failover_is_top_k_shared(self):
        ps = fresh(gamma=3, servers=5)
        # Tenant a on (0,1,2); tenant b on (0,3,4): server 0 shares 0.1
        # with each of 1,2 (a) and 0.2 with each of 3,4 (b).
        ps.place_tenant(Tenant(0, 0.3), [0, 1, 2])
        ps.place_tenant(Tenant(1, 0.6), [0, 3, 4])
        # gamma-1 = 2 worst partners of server 0: 3 and 4 (0.2 each)
        assert ps.worst_failover_load(0) == pytest.approx(0.4)
        assert ps.worst_failover_load(0, failures=1) == pytest.approx(0.2)
        assert ps.worst_failover_load(0, failures=0) == 0.0

    def test_slack_and_is_robust(self):
        ps = fresh(gamma=2, servers=2)
        ps.place_tenant(Tenant(0, 0.8), [0, 1])
        # load 0.4, worst failover 0.4 -> slack 0.2
        assert ps.slack(0) == pytest.approx(0.2)
        assert ps.is_robust(0)

    def test_failover_specific_set_conservative(self):
        ps = fresh(gamma=3, servers=4)
        ps.place_tenant(Tenant(0, 0.6), [0, 1, 2])
        assert ps.failover_load(0, [1]) == pytest.approx(0.2)
        assert ps.failover_load(0, [1, 2]) == pytest.approx(0.4)
        assert ps.failover_load(0, [3]) == 0.0

    def test_exact_failover_splits_between_survivors(self):
        ps = fresh(gamma=3, servers=4)
        ps.place_tenant(Tenant(0, 0.6), [0, 1, 2])
        # one failure: tenant re-shares over 2 survivors: 0.3 each,
        # extra on server 0 = 0.3 - 0.2 = 0.1 (< conservative 0.2)
        assert ps.exact_failover_load(0, [1]) == pytest.approx(0.1)
        # both partners fail: server 0 takes everything: extra 0.4
        assert ps.exact_failover_load(0, [1, 2]) == pytest.approx(0.4)

    def test_exact_never_exceeds_conservative(self):
        ps = fresh(gamma=3, servers=5)
        ps.place_tenant(Tenant(0, 0.3), [0, 1, 2])
        ps.place_tenant(Tenant(1, 0.6), [0, 3, 4])
        for failed in ([1], [3], [1, 3], [2, 4], [3, 4]):
            assert ps.exact_failover_load(0, failed) <= \
                ps.failover_load(0, failed) + 1e-12

    def test_utilization_counts_only_nonempty(self):
        ps = fresh(gamma=2, servers=3)
        ps.place_tenant(Tenant(0, 0.8), [0, 1])
        assert ps.utilization() == pytest.approx(0.4)

    def test_total_load(self):
        ps = fresh(gamma=2, servers=2)
        ps.place_tenant(Tenant(0, 0.5), [0, 1])
        assert ps.total_load() == pytest.approx(0.5)

    def test_snapshot(self):
        ps = fresh(gamma=2, servers=2)
        ps.place_tenant(Tenant(3, 0.5), [0, 1])
        snap = ps.snapshot()
        assert snap[0] == [(3, 0)]
        assert snap[1] == [(3, 1)]

    def test_num_nonempty_servers(self):
        ps = fresh(gamma=2, servers=4)
        ps.place_tenant(Tenant(0, 0.5), [0, 2])
        assert ps.num_nonempty_servers == 2
        assert ps.num_servers == 4


class TestSlackIndex:
    """Incremental worst-failover cache and the dirty-tracker API."""

    def test_cache_hit_returns_same_value(self):
        ps = fresh(gamma=2, servers=3)
        ps.place_tenant(Tenant(0, 0.6), [0, 1])
        first = ps.worst_failover_load(0)
        assert ps.worst_failover_load(0) == first
        assert ps._wfl_cache[0][1] == first

    def test_mutation_invalidates_target_and_siblings(self):
        ps = fresh(gamma=2, servers=3)
        ps.place_tenant(Tenant(0, 0.6), [0, 1])
        assert ps.worst_failover_load(1) == pytest.approx(0.3)
        # A bigger shared partner must displace the cached top-1 value
        # on server 1 (a sibling of the mutated server 2).
        ps.place_tenant(Tenant(1, 0.8), [1, 2])
        after = ps.worst_failover_load(1)
        assert after == pytest.approx(0.4)
        assert after == pytest.approx(ps.naive_worst_failover_load(1))

    def test_dirty_tracker_reports_affected_servers(self):
        ps = fresh(gamma=2, servers=4)
        tracker = ps.dirty_tracker()
        assert tracker.drain() == {0, 1, 2, 3}
        ps.place_tenant(Tenant(0, 0.6), [0, 2])
        assert tracker.drain() == {0, 2}
        ps.place_tenant(Tenant(1, 0.4), [2, 3])
        ps.remove_tenant(0)
        assert tracker.drain() == {0, 2, 3}
        assert tracker.drain() == set()

    def test_tracker_peek_and_mark(self):
        ps = fresh(gamma=2, servers=2)
        tracker = ps.dirty_tracker()
        tracker.drain()
        tracker.mark([1])
        assert tracker.peek() == {1}
        assert tracker.drain() == {1}

    def test_closed_tracker_stops_accumulating(self):
        ps = fresh(gamma=2, servers=2)
        tracker = ps.dirty_tracker()
        tracker.drain()
        tracker.close()
        ps.place_tenant(Tenant(0, 0.4), [0, 1])
        assert tracker.peek() == set()

    def test_open_server_marks_new_server_dirty(self):
        ps = fresh(gamma=2, servers=0)
        tracker = ps.dirty_tracker()
        server = ps.open_server()
        assert server.server_id in tracker.drain()

    def test_cache_disabled_still_correct(self):
        ps = PlacementState(gamma=2, slack_cache=False)
        for _ in range(3):
            ps.open_server()
        ps.place_tenant(Tenant(0, 0.6), [0, 1])
        assert not ps.slack_cache_enabled
        assert ps._wfl_cache == {}
        assert ps.worst_failover_load(0) == pytest.approx(0.3)

    def test_set_slack_cache_toggles_and_clears(self):
        ps = fresh(gamma=2, servers=2)
        ps.place_tenant(Tenant(0, 0.6), [0, 1])
        ps.worst_failover_load(0)
        assert ps._wfl_cache
        ps.set_slack_cache(False)
        assert ps._wfl_cache == {}
        ps.set_slack_cache(True)
        assert ps.worst_failover_load(0) == pytest.approx(0.3)

    def test_naive_shared_partners_matches_index(self):
        ps = fresh(gamma=3, servers=5)
        ps.place_tenant(Tenant(0, 0.3), [0, 1, 2])
        ps.place_tenant(Tenant(1, 0.6), [0, 3, 4])
        for sid in ps.server_ids:
            naive = ps.naive_shared_partners(sid)
            assert naive == pytest.approx(ps.shared_partners(sid))

    def test_shadow_audit_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHADOW_AUDIT", "1")
        assert PlacementState(gamma=2).shadow_audit
        monkeypatch.setenv("REPRO_SHADOW_AUDIT", "0")
        assert not PlacementState(gamma=2).shadow_audit
        monkeypatch.delenv("REPRO_SHADOW_AUDIT")
        assert not PlacementState(gamma=2).shadow_audit
        assert PlacementState(gamma=2, shadow_audit=True).shadow_audit
