"""Unit tests for sequence generation."""

import numpy as np
import pytest

from repro.workloads.distributions import UniformLoad, DiscreteUniformClients
from repro.workloads.loadmodel import LinearLoadModel
from repro.workloads.sequences import (clients_to_sequence,
                                       generate_client_counts,
                                       generate_sequence,
                                       stream_tenants)
from repro.errors import ConfigurationError


class TestGenerateSequence:
    def test_reproducible_with_seed(self):
        dist = UniformLoad(0.5)
        a = generate_sequence(dist, 50, seed=7)
        b = generate_sequence(dist, 50, seed=7)
        assert a.loads == b.loads

    def test_different_seeds_differ(self):
        dist = UniformLoad(0.5)
        a = generate_sequence(dist, 50, seed=7)
        b = generate_sequence(dist, 50, seed=8)
        assert a.loads != b.loads

    def test_metadata(self):
        seq = generate_sequence(UniformLoad(0.5), 10, seed=1)
        assert seq.seed == 1
        assert seq.description == "uniform(0,0.5]"
        assert seq.metadata["n"] == 10

    def test_start_id(self):
        seq = generate_sequence(UniformLoad(0.5), 3, seed=1, start_id=100)
        assert [t.tenant_id for t in seq] == [100, 101, 102]

    def test_negative_n_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_sequence(UniformLoad(0.5), -1)


class TestClientCounts:
    def test_generate_counts(self):
        counts = generate_client_counts(DiscreteUniformClients(1, 15), 100,
                                        seed=3)
        assert len(counts) == 100
        assert counts.min() >= 1

    def test_clients_to_sequence(self):
        model = LinearLoadModel(delta=0.02, beta=0.01)
        counts = np.array([5, 10])
        seq = clients_to_sequence(counts, model, description="test")
        assert seq.metadata["clients"] == [5, 10]
        assert seq[0].load == pytest.approx(0.11)
        assert seq[1].load == pytest.approx(0.21)


class TestStreamTenants:
    def test_chunked_stream_equals_materialized_sequence(self):
        # The streaming-ingestion contract: numpy Generator
        # distributions consume the bit stream per element, so chunked
        # draws reproduce the one-shot sequence value-for-value — even
        # at a chunk length that does not divide n.
        dist = UniformLoad(0.6)
        chunked = list(stream_tenants(dist, 1000, seed=7, chunk=333))
        assert chunked == generate_sequence(dist, 1000, seed=7).tenants

    def test_start_id_offsets_ids_only(self):
        dist = UniformLoad(0.5)
        base = list(stream_tenants(dist, 5, seed=1))
        offset = list(stream_tenants(dist, 5, seed=1, start_id=100))
        assert [t.tenant_id for t in offset] == [100, 101, 102, 103, 104]
        assert [t.load for t in offset] == [t.load for t in base]

    def test_zero_is_empty(self):
        assert list(stream_tenants(UniformLoad(0.5), 0)) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            list(stream_tenants(UniformLoad(0.5), -1))
        with pytest.raises(ConfigurationError):
            list(stream_tenants(UniformLoad(0.5), 10, chunk=0))
