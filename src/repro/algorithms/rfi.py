"""RFI: the baseline from the RTP system (Schaffner et al., SIGMOD 2013).

Reconstructed from the paper's Section V description:

    "RFI first searches for the server that would have the least load
    left over after a tenant is placed on it, including having enough
    reserved capacity for additional load from any single failed server
    (overload capacity) and a mu value that governs how much of the first
    server's total capacity to use for interleaving.  If no such server
    is found, a new server is provisioned and the replica is placed
    there.  For the second replica, the algorithm repeats the process but
    selects a different server machine."

Concretely, per replica (in replica order):

* candidate servers are those not already hosting a replica of the
  tenant;
* feasibility is **single-failure robustness** with exact shared-load
  accounting: after the placement, the candidate and every sibling
  server must keep ``load + max_shared <= capacity``;
* the *first* replica may only fill a server up to ``mu`` of its
  capacity (interleaving headroom for other tenants' secondaries);
* among feasible servers, Best Fit: least leftover capacity, i.e. the
  fullest feasible server;
* otherwise a new server is opened.

RFI reserves for only **one** failure — the reason it violates SLAs under
two simultaneous failures in the paper's Figure 5.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.tenant import Replica, Tenant
from ..errors import ConfigurationError
from .base import OnlinePlacementAlgorithm, ServerIndex, register

#: Interleaving threshold recommended by the RTP paper and used in the
#: CUBEFIT paper's experiments.
DEFAULT_MU = 0.85


@register
class RFI(OnlinePlacementAlgorithm):
    """Robust best-Fit with Interleaving, tolerant to a single failure."""

    name = "rfi"

    def __init__(self, gamma: int = 2, mu: float = DEFAULT_MU,
                 capacity: float = 1.0) -> None:
        if gamma < 2:
            raise ConfigurationError(
                f"RFI's single-failure reserve requires gamma >= 2, "
                f"got {gamma}")
        super().__init__(gamma=gamma, capacity=capacity)
        if not (0.0 < mu <= 1.0):
            raise ConfigurationError(
                f"mu must be in (0, 1], got {mu}")
        self.mu = mu
        # RFI's reserve budget is one failure, regardless of gamma.
        self._index = ServerIndex(self.placement, failures=1)

    @property
    def guaranteed_failures(self) -> int:
        return 1

    def _place(self, tenant: Tenant) -> Tuple[int, ...]:
        chosen: List[int] = []
        for replica in tenant.replicas(self.gamma):
            target = self._find_server(replica, chosen,
                                       is_primary=not chosen)
            if target is None:
                target = self._open_server()
            self.placement.place(replica, target)
            chosen.append(target)
        return tuple(chosen)

    def _open_server(self) -> int:
        server = self.placement.open_server()
        self._index.track(server.server_id)
        return server.server_id

    def _adopted(self, placement) -> None:
        # RFI's only internal state is its candidate index (one-failure
        # reserve); rebuild it over the adopted placement.
        self._index = ServerIndex(placement, failures=1)
        for sid in placement.server_ids:
            self._index.track(sid)

    def _find_server(self, replica: Replica, chosen: List[int],
                     is_primary: bool) -> Optional[int]:
        """Fullest feasible server for ``replica`` (Best Fit), or None."""
        max_level = (self.mu * self.placement.capacity - replica.load
                     if is_primary else None)
        return self._index.select(
            replica.load, chosen, min_avail=replica.load,
            max_level=max_level, exclude=chosen,
            future_siblings=self.gamma - len(chosen) - 1,
            obs=self._obs)

    def describe(self) -> dict:
        info = super().describe()
        info["mu"] = self.mu
        return info
