"""Whole-shard chaos drill: crash a shard mid-traffic, recover, verify.

:func:`run_fleet_chaos` drives a live :class:`~repro.fleet.fleet.
PlacementFleet` with a seeded place/remove/resize stream, periodically
rebalances, and at a configured operation **crashes a whole shard**
(kill -9 semantics: the controller is abandoned with no shutdown).
Traffic continues while the shard is down — new tenants route around
it, operations on its tenants surface as typed
:class:`~repro.errors.ShardDownError` — and after a configured
downtime the shard recovers from its own WAL + checkpoint.

The drill then asserts the fleet's whole-shard conformance contract:

* **Replica-for-replica recovery.**  Every placement the crashed
  shard acked before the kill is back on exactly the servers it was
  acked on (the same differential the single-controller crash drills
  run, scoped to the victim shard).
* **Router reconciliation.**  The router's estimate for the victim is
  rebuilt from the recovered truth, and any migration torn by the
  crash is repaired deterministically.
* **Typed errors only.**  Every error the stream observes is a
  :class:`~repro.errors.ReproError` subclass — never a hang, never an
  untyped exception.
* **Audit-clean finish.**  Every shard passes the robustness audit at
  the end, and the per-shard stores checkpoint cleanly.

Failpoints (``fleet.route``, ``fleet.spill``, ``fleet.rebalance``)
armed via :func:`repro.faults.injected` or ``REPRO_FAULTS`` fire
inside the drill and surface typed; the report counts them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .. import faults
from ..core.tenant import Tenant
from ..errors import (ConfigurationError, FaultInjected, ReproError,
                      ShardDownError, ShardSaturatedError)
from ..obs import active
from .fleet import PlacementFleet

PathLike = Union[str, Path]


@dataclass(frozen=True)
class FleetChaosConfig:
    """Parameters of one whole-shard chaos drill."""

    operations: int = 300
    shards: int = 3
    policy: str = "least-loaded"
    gamma: int = 2
    seed: int = 0
    #: Operation index at which the victim shard is killed
    #: (default: half the stream).
    crash_at: Optional[int] = None
    #: Victim shard (default: the busiest shard at crash time,
    #: ties to the lowest id — deterministic).
    crash_shard: Optional[int] = None
    #: Operations the victim stays down (default: an eighth of the
    #: stream, at least 1).
    downtime: Optional[int] = None
    #: Run the cross-shard rebalancer every this many operations
    #: (0 disables).
    rebalance_every: int = 64
    max_load: float = 0.5
    max_servers_per_shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.operations < 4:
            raise ConfigurationError(
                f"operations must be >= 4, got {self.operations}")
        if self.shards < 2:
            raise ConfigurationError(
                f"the drill needs >= 2 shards, got {self.shards}")
        crash_at = self.resolved_crash_at
        if not (0 < crash_at < self.operations):
            raise ConfigurationError(
                f"crash_at must be in (0, {self.operations}), got "
                f"{crash_at}")
        if crash_at + self.resolved_downtime >= self.operations:
            raise ConfigurationError(
                "the victim would never recover: crash_at + downtime "
                "must be < operations")

    @property
    def resolved_crash_at(self) -> int:
        return (self.operations // 2 if self.crash_at is None
                else self.crash_at)

    @property
    def resolved_downtime(self) -> int:
        return (max(1, self.operations // 8) if self.downtime is None
                else self.downtime)


@dataclass
class FleetChaosReport:
    """Everything one drill run observed."""

    config: FleetChaosConfig
    store_dir: str
    counts: Dict[str, int] = field(default_factory=dict)
    #: Typed errors by exception class name.
    typed_errors: Dict[str, int] = field(default_factory=dict)
    migrations: int = 0
    crash_shard: int = -1
    #: Placements acked by the victim before the kill.
    acked_before_crash: int = 0
    #: Replica-for-replica divergences found at recovery (must be []).
    divergences: List[str] = field(default_factory=list)
    #: Torn-migration repairs applied at recovery.
    reconciled: List[object] = field(default_factory=list)
    audits: Dict[int, bool] = field(default_factory=dict)
    fired: Dict[str, int] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def repro_line(self) -> str:
        cfg = self.config
        return (
            "PYTHONPATH=src python -c \"from repro.fleet.chaos import "
            "FleetChaosConfig, run_fleet_chaos; print(run_fleet_chaos("
            f"'STORE_DIR', FleetChaosConfig(operations={cfg.operations}"
            f", shards={cfg.shards}, policy='{cfg.policy}', "
            f"gamma={cfg.gamma}, seed={cfg.seed})))\"")

    def __str__(self) -> str:
        ops = ", ".join(f"{k}={v}"
                        for k, v in sorted(self.counts.items()))
        typed = sum(self.typed_errors.values())
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"FleetChaosReport({verdict}: {ops}; shard "
            f"{self.crash_shard} crashed with "
            f"{self.acked_before_crash} acked placements, "
            f"{len(self.divergences)} divergence(s), "
            f"{self.migrations} migration(s), {typed} typed error(s), "
            f"audits {sum(self.audits.values())}/{len(self.audits)} "
            f"clean, {self.elapsed:.2f}s)")


def _count(table: Dict[str, int], key: str) -> None:
    table[key] = table.get(key, 0) + 1


def run_fleet_chaos(store_dir: PathLike,
                    config: Optional[FleetChaosConfig] = None,
                    obs=None) -> FleetChaosReport:
    """Run the whole-shard chaos drill; see the module docstring."""
    cfg = config if config is not None else FleetChaosConfig()
    gated = active(obs)
    rng = np.random.default_rng(cfg.seed)
    report = FleetChaosReport(config=cfg, store_dir=str(store_dir))
    fired_before = dict(faults.FAILPOINTS.fired_counts())
    started = time.perf_counter()

    fleet = PlacementFleet(
        Path(store_dir), shards=cfg.shards, gamma=cfg.gamma,
        policy=cfg.policy, seed=cfg.seed,
        max_servers_per_shard=cfg.max_servers_per_shard, obs=gated)
    crash_at = cfg.resolved_crash_at
    recover_at = crash_at + cfg.resolved_downtime
    alive: Dict[int, float] = {}
    next_id = 0
    victim: Optional[int] = None
    acked_victim: Dict[int, List[int]] = {}

    def typed(err: ReproError) -> None:
        _count(report.typed_errors, type(err).__name__)

    try:
        for op_index in range(cfg.operations):
            if op_index == crash_at:
                if cfg.crash_shard is not None:
                    victim = cfg.crash_shard
                else:
                    victim = min(
                        range(cfg.shards),
                        key=lambda s: (
                            -fleet.shards[s].placement.num_tenants, s))
                placement = fleet.shards[victim].placement
                for tid in placement.tenant_ids:
                    by_index = placement.tenant_servers(tid)
                    acked_victim[tid] = [by_index[i]
                                         for i in sorted(by_index)]
                report.crash_shard = victim
                report.acked_before_crash = len(acked_victim)
                fleet.crash_shard(victim)
                _count(report.counts, "crash")
            elif op_index == recover_at and victim is not None:
                controller = fleet.recover_shard(victim)
                placement = controller.placement
                if placement.num_tenants != len(acked_victim):
                    report.divergences.append(
                        f"recovered {placement.num_tenants} tenants, "
                        f"acked {len(acked_victim)}")
                for tid, servers in acked_victim.items():
                    by_index = placement.tenant_servers(tid)
                    got = [by_index[i] for i in sorted(by_index)]
                    if got != servers:
                        report.divergences.append(
                            f"tenant {tid}: acked {servers}, "
                            f"recovered {got}")
                report.reconciled = fleet.reconcile()
                _count(report.counts, "recover")

            draw = rng.random()
            try:
                if (cfg.rebalance_every
                        and op_index
                        and op_index % cfg.rebalance_every == 0):
                    moves = fleet.rebalance()
                    report.migrations += len(moves)
                    _count(report.counts, "rebalance")
                elif draw < 0.55 or not alive:
                    load = round(float(
                        rng.uniform(0.02, cfg.max_load)), 6)
                    fleet.place(Tenant(next_id, load))
                    alive[next_id] = load
                    next_id += 1
                    _count(report.counts, "place")
                elif draw < 0.80:
                    tid = sorted(alive)[int(
                        rng.integers(len(alive)))]
                    fleet.remove(tid)
                    del alive[tid]
                    _count(report.counts, "remove")
                else:
                    tid = sorted(alive)[int(
                        rng.integers(len(alive)))]
                    load = round(float(
                        rng.uniform(0.02, cfg.max_load)), 6)
                    fleet.update_load(tid, load)
                    alive[tid] = load
                    _count(report.counts, "resize")
            except ShardDownError as err:
                typed(err)
                _count(report.counts, "refused_down")
            except ShardSaturatedError as err:
                typed(err)
                _count(report.counts, "refused_saturated")
            except FaultInjected as err:
                typed(err)
                _count(report.counts, "fault")

            # Audit every live shard after every operation (down
            # shards are skipped) — the same "audit after every op"
            # discipline the single-controller chaos soak uses; small
            # drills keep it affordable.
            for shard_id, audit_report in fleet.audit_all().items():
                if not audit_report.ok:
                    report.failures.append(
                        f"op {op_index}: shard {shard_id} audit "
                        f"violated")

        if victim is not None and fleet.shards[victim] is None:
            report.failures.append("victim shard never recovered")
        for shard_id, audit_report in fleet.audit_all().items():
            report.audits[shard_id] = audit_report.ok
            if not audit_report.ok:
                report.failures.append(
                    f"final audit violated on shard {shard_id}")
        if report.divergences:
            report.failures.append(
                f"{len(report.divergences)} replica-for-replica "
                f"divergence(s) at recovery")
        fleet.checkpoint_all()
    finally:
        fleet.close()

    fired_after = faults.FAILPOINTS.fired_counts()
    report.fired = {
        name: count - fired_before.get(name, 0)
        for name, count in fired_after.items()
        if count - fired_before.get(name, 0) > 0}
    report.elapsed = time.perf_counter() - started
    return report
