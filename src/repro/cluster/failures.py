"""Failure planning: the paper's "worst overload case".

Section V-B: "To cause f server failures, we select f servers that
result in the distribution of the highest number of clients to a single
server (resulting in the highest possible load on a server)."

When servers in a set ``F`` fail, a tenant with ``k`` of its ``gamma``
homes in ``F`` re-shares its clients evenly over its ``gamma - k``
surviving homes.  The *overload metric* of ``F`` is the maximum
post-failure client count on any surviving server; the planner picks the
``F`` maximizing it — exhaustively for small ``f`` (the paper uses 1 and
2), greedily beyond.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Largest f for which all subsets are enumerated (beyond: greedy).
EXHAUSTIVE_LIMIT = 2


@dataclass(frozen=True)
class FailurePlan:
    """Chosen failure set and its projected effect."""

    failed: Tuple[int, ...]
    #: Max post-failure client count on a single surviving server.
    projected_max_clients: float
    #: The surviving server attaining the max.
    hottest_server: Optional[int] = None


def project_client_counts(tenant_homes: Dict[int, Sequence[int]],
                          tenant_clients: Dict[int, int],
                          failed: Iterable[int]) -> Dict[int, float]:
    """Expected client count per surviving server after ``failed`` fail.

    A tenant's clients are spread evenly over alive replicas; tenants
    with no surviving replica contribute nothing (they are unavailable,
    which the SLA evaluation accounts for separately).
    """
    failed_set = set(failed)
    counts: Dict[int, float] = {}
    for tenant_id, homes in tenant_homes.items():
        alive = [h for h in homes if h not in failed_set]
        if not alive:
            continue
        share = tenant_clients.get(tenant_id, 0) / len(alive)
        for home in alive:
            counts[home] = counts.get(home, 0.0) + share
    return counts


def _max_count(counts: Dict[int, float]) -> Tuple[float, Optional[int]]:
    if not counts:
        return 0.0, None
    hottest = max(counts, key=counts.get)
    return counts[hottest], hottest


def worst_overload_failures(tenant_homes: Dict[int, Sequence[int]],
                            tenant_clients: Dict[int, int],
                            f: int,
                            servers: Optional[Sequence[int]] = None,
                            exhaustive_limit: int = EXHAUSTIVE_LIMIT
                            ) -> FailurePlan:
    """Pick the ``f`` failures that maximize single-server client load.

    ``servers`` restricts the candidate failure set (defaults to every
    server hosting at least one replica).  Exhaustive enumeration for
    ``f <= exhaustive_limit``; greedy extension beyond (each step adds
    the single failure that maximizes the metric).
    """
    if f < 0:
        raise ConfigurationError(f"f must be non-negative, got {f}")
    if servers is None:
        candidates = sorted({h for homes in tenant_homes.values()
                             for h in homes})
    else:
        candidates = sorted(servers)
    if f > len(candidates):
        raise ConfigurationError(
            f"cannot fail {f} of {len(candidates)} servers")
    if f == 0:
        value, hottest = _max_count(
            project_client_counts(tenant_homes, tenant_clients, ()))
        return FailurePlan(failed=(), projected_max_clients=value,
                           hottest_server=hottest)
    if f <= exhaustive_limit:
        return _exhaustive(tenant_homes, tenant_clients, candidates, f)
    return _greedy(tenant_homes, tenant_clients, candidates, f)


def _evaluate(tenant_homes: Dict[int, Sequence[int]],
              tenant_clients: Dict[int, int],
              failed: Tuple[int, ...]) -> Tuple[float, Optional[int]]:
    counts = project_client_counts(tenant_homes, tenant_clients, failed)
    for fid in failed:
        counts.pop(fid, None)
    return _max_count(counts)


def _exhaustive(tenant_homes: Dict[int, Sequence[int]],
                tenant_clients: Dict[int, int],
                candidates: List[int], f: int) -> FailurePlan:
    best: Optional[FailurePlan] = None
    for failed in itertools.combinations(candidates, f):
        value, hottest = _evaluate(tenant_homes, tenant_clients, failed)
        if best is None or value > best.projected_max_clients:
            best = FailurePlan(failed=failed, projected_max_clients=value,
                               hottest_server=hottest)
    assert best is not None  # f >= 1 and candidates non-empty
    return best


def plan_replacement_homes(tenant_homes: Dict[int, Sequence[int]],
                           tenant_clients: Dict[int, int],
                           failed: Iterable[int],
                           candidates: Sequence[int]
                           ) -> Dict[int, List[int]]:
    """Choose new homes for replicas lost to ``failed`` servers.

    Greedy least-loaded: each lost replica is re-homed on the candidate
    server with the smallest projected client count that does not
    already host the tenant and has not failed.  Returns
    ``tenant_id -> replacement server ids`` (one per lost replica);
    tenants with no replica on a failed server are absent.

    Raises
    ------
    ConfigurationError
        If a tenant cannot be re-homed (every candidate already hosts
        it or has failed).
    """
    failed_set = set(failed)
    healthy = [c for c in sorted(set(candidates)) if c not in failed_set]
    counts = project_client_counts(tenant_homes, tenant_clients,
                                   failed_set)
    for server in healthy:
        counts.setdefault(server, 0.0)
    replacements: Dict[int, List[int]] = {}
    for tenant_id in sorted(tenant_homes):
        homes = list(tenant_homes[tenant_id])
        lost = [h for h in homes if h in failed_set]
        if not lost:
            continue
        share = tenant_clients.get(tenant_id, 0) / max(len(homes), 1)
        taken = set(homes)
        for _ in lost:
            options = [c for c in healthy if c not in taken]
            if not options:
                raise ConfigurationError(
                    f"tenant {tenant_id}: no healthy server available "
                    f"for re-replication")
            target = min(options, key=lambda c: (counts[c], c))
            replacements.setdefault(tenant_id, []).append(target)
            counts[target] = counts.get(target, 0.0) + share
            taken.add(target)
    return replacements


def _greedy(tenant_homes: Dict[int, Sequence[int]],
            tenant_clients: Dict[int, int],
            candidates: List[int], f: int) -> FailurePlan:
    failed: List[int] = []
    best_value = 0.0
    hottest: Optional[int] = None
    for _ in range(f):
        step_best: Optional[Tuple[float, int, Optional[int]]] = None
        for cand in candidates:
            if cand in failed:
                continue
            value, hot = _evaluate(tenant_homes, tenant_clients,
                                   tuple(failed + [cand]))
            if step_best is None or value > step_best[0]:
                step_best = (value, cand, hot)
        assert step_best is not None
        best_value, chosen, hottest = step_best
        failed.append(chosen)
    return FailurePlan(failed=tuple(failed),
                       projected_max_clients=best_value,
                       hottest_server=hottest)
