"""Long-running placement service.

``repro serve`` turns the durable controller into a daemon: a
unix-domain socket speaking a JSONL request/response protocol
(:mod:`repro.serve.protocol`), a bounded admission queue with explicit
backpressure, timer-driven WAL checkpointing, graceful SIGTERM
shutdown (drain → checkpoint → close) and SIGKILL survival via the
store's checkpoint + tail recovery (:mod:`repro.serve.server`).
:mod:`repro.serve.client` is the matching blocking client;
:mod:`repro.serve.drill` runs kill/restart drills against a real
daemon process and audits the recovered state.
"""

from .client import ServeClient, wait_until_ready
from .protocol import MAX_FRAME_BYTES, VERBS
from .server import CRASH_EXIT_CODE, PlacementServer, ServeConfig

__all__ = [
    "CRASH_EXIT_CODE", "MAX_FRAME_BYTES", "PlacementServer",
    "ServeClient", "ServeConfig", "VERBS", "wait_until_ready",
]
