"""Tenant and replica value objects.

A *tenant* is a client application with an associated **load**: the
fraction of one server's capacity the tenant needs to meet its SLA
(Section II of the paper).  Loads are normalized to ``(0, 1]`` and every
server has unit capacity.

Upon arrival a tenant of load ``x`` is split into ``gamma`` *replicas*,
each of load ``x / gamma``, that must be placed on ``gamma`` distinct
servers.  The analytic (read-mostly) workload of the tenant is shared
evenly between its replicas, which is why replica load is an equal split
of the tenant load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..errors import ConfigurationError

#: Absolute tolerance used throughout the packing core when comparing
#: floating-point loads against capacities and class boundaries.
LOAD_EPS = 1e-9


@dataclass(frozen=True)
class Tenant:
    """A tenant identified by ``tenant_id`` with normalized ``load``.

    Parameters
    ----------
    tenant_id:
        Unique non-negative identifier.  The placement core treats ids as
        opaque; generators hand them out sequentially.
    load:
        Total load in ``(0, 1]``, i.e. the minimum amount of in-memory
        server compute resource the tenant needs to meet its SLA.
    """

    tenant_id: int
    load: float

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise ConfigurationError(
                f"tenant_id must be non-negative, got {self.tenant_id}")
        if not (0.0 < self.load <= 1.0 + LOAD_EPS):
            raise ConfigurationError(
                f"tenant load must be in (0, 1], got {self.load!r}")

    def replica_load(self, gamma: int) -> float:
        """Load of each of the tenant's ``gamma`` replicas."""
        return self.load / gamma

    def replicas(self, gamma: int) -> tuple["Replica", ...]:
        """Materialize the ``gamma`` replicas of this tenant."""
        share = self.replica_load(gamma)
        return tuple(
            Replica(tenant_id=self.tenant_id, index=j, load=share)
            for j in range(gamma)
        )


@dataclass(frozen=True)
class Replica:
    """One of the ``gamma`` replicas of a tenant.

    ``index`` is the replica's position ``0 .. gamma-1`` within its
    tenant; the CUBEFIT cube machinery places replica ``j`` in cube
    (group) ``j``.
    """

    tenant_id: int
    index: int
    load: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError(
                f"replica index must be non-negative, got {self.index}")
        if self.load <= 0.0:
            raise ConfigurationError(
                f"replica load must be positive, got {self.load!r}")

    @property
    def key(self) -> tuple[int, int]:
        """Stable ``(tenant_id, index)`` identity of the replica."""
        return (self.tenant_id, self.index)


@dataclass
class TenantSequence:
    """An ordered, online sequence of tenants.

    The consolidation problem is online: algorithms see tenants one at a
    time, in arrival order, with no knowledge of future arrivals.  This
    wrapper carries the arrival order plus provenance metadata (which
    generator produced it, with which seed) so experiment outputs are
    reproducible.
    """

    tenants: Sequence[Tenant]
    description: str = ""
    seed: int | None = None
    metadata: dict = field(default_factory=dict)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self.tenants)

    def __len__(self) -> int:
        return len(self.tenants)

    def __getitem__(self, i: int) -> Tenant:
        return self.tenants[i]

    @property
    def total_load(self) -> float:
        """Sum of tenant loads — a trivial lower bound on servers needed."""
        return sum(t.load for t in self.tenants)

    @property
    def loads(self) -> list[float]:
        """The raw load values, in arrival order."""
        return [t.load for t in self.tenants]


def make_tenants(loads: Sequence[float], start_id: int = 0) -> list[Tenant]:
    """Build a list of :class:`Tenant` from raw loads.

    Convenience used pervasively by tests and examples::

        >>> [t.load for t in make_tenants([0.6, 0.3])]
        [0.6, 0.3]
    """
    return [Tenant(tenant_id=start_id + i, load=load)
            for i, load in enumerate(loads)]
