"""Tenant-sequence generation with reproducible seeding."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.tenant import Tenant, TenantSequence
from ..errors import ConfigurationError
from .distributions import ClientCountDistribution, LoadDistribution


def generate_sequence(distribution: LoadDistribution, n: int,
                      seed: Optional[int] = None,
                      start_id: int = 0) -> TenantSequence:
    """Draw an online sequence of ``n`` tenants from ``distribution``.

    The same ``(distribution, n, seed)`` triple always yields the same
    sequence, which is what makes paired algorithm comparisons (Figure 6)
    meaningful: both algorithms consume identical arrivals.
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    rng = np.random.default_rng(seed)
    loads = distribution.sample(rng, n)
    tenants = [Tenant(tenant_id=start_id + i, load=float(load))
               for i, load in enumerate(loads)]
    return TenantSequence(tenants=tenants,
                          description=distribution.name, seed=seed,
                          metadata={"n": n})


def generate_client_counts(distribution: ClientCountDistribution, n: int,
                           seed: Optional[int] = None) -> np.ndarray:
    """Draw ``n`` per-tenant client counts (cluster experiments)."""
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    rng = np.random.default_rng(seed)
    return distribution.sample(rng, n)


def clients_to_sequence(counts: np.ndarray, model,
                        description: str = "",
                        seed: Optional[int] = None,
                        start_id: int = 0) -> TenantSequence:
    """Turn client counts into tenants via a linear load model.

    Each tenant's client count is kept in the sequence metadata so the
    cluster simulator can later attach that many closed-loop clients.
    """
    tenants = []
    for i, clients in enumerate(counts):
        load = min(max(model.load(int(clients)), 1e-6), 1.0)
        tenants.append(Tenant(tenant_id=start_id + i, load=float(load)))
    return TenantSequence(
        tenants=tenants, description=description, seed=seed,
        metadata={"clients": [int(c) for c in counts]})
