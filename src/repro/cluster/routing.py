"""Replica-aware query routing with failover.

Implements the paper's execution model:

* a tenant's analytic (read) workload is shared between its ``gamma``
  replicas — we round-robin reads per tenant over *alive* replicas;
* update queries execute against **all** alive replicas for consistency
  (Section IV); their latency is the slowest replica's completion;
* when a server fails, in-flight queries on it are re-issued against the
  tenant's surviving replicas, and subsequent queries route only to
  survivors ("clients of tenants hosted on it execute their queries on
  the remaining tenant replicas").

The router is the single owner of in-flight bookkeeping: machines know
nothing about tenants, clients know nothing about machines.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .. import faults
from ..errors import SimulationError
from ..workloads.tpch import QueryExecution
from .datastore import DataStore
from .engine import Simulator
from .machine import Machine

CompletionCallback = Callable[[Optional[float], int], None]


class _InFlightQuery:
    """Context of one logical query (possibly fanned out to replicas)."""

    __slots__ = ("router", "tenant_id", "query", "on_complete", "issued_at",
                 "outstanding", "finished", "last_server")

    def __init__(self, router: "ReplicaRouter", tenant_id: int,
                 query: QueryExecution, on_complete: CompletionCallback,
                 issued_at: float) -> None:
        self.router = router
        self.tenant_id = tenant_id
        self.query = query
        self.on_complete = on_complete
        self.issued_at = issued_at
        self.outstanding = 0
        self.finished = False
        self.last_server = -1

    def part_done(self, server_id: int) -> None:
        self.outstanding -= 1
        self.last_server = server_id
        if self.outstanding == 0 and not self.finished:
            self.finished = True
            latency = self.router.sim.now - self.issued_at
            self.on_complete(latency, server_id)

    def part_lost(self, was_read: bool) -> None:
        """A replica failed mid-query."""
        self.outstanding -= 1
        if self.finished:
            return
        if was_read:
            # Re-execute the read on a surviving replica.
            self.router._dispatch_read(self)
        elif self.outstanding == 0:
            # Update: surviving parts already completed (or none exist).
            alive = self.router.alive_homes(self.tenant_id)
            self.finished = True
            if alive:
                self.on_complete(self.router.sim.now - self.issued_at,
                                 self.last_server)
            else:
                self.on_complete(None, -1)


class ReplicaRouter:
    """Routes tenant queries to replica machines."""

    def __init__(self, sim: Simulator, machines: Dict[int, Machine],
                 tenant_homes: Dict[int, Sequence[int]],
                 datastore: Optional[DataStore] = None) -> None:
        self.sim = sim
        self.machines = machines
        self.datastore = datastore if datastore is not None else DataStore()
        self._homes: Dict[int, List[int]] = {}
        for tenant_id, homes in tenant_homes.items():
            home_list = list(homes)
            if not home_list:
                raise SimulationError(
                    f"tenant {tenant_id} has no replica homes")
            for mid in home_list:
                if mid not in machines:
                    raise SimulationError(
                        f"tenant {tenant_id} placed on unknown machine "
                        f"{mid}")
            self._homes[tenant_id] = home_list
        #: Per-tenant round-robin cursor for read routing.
        self._cursor: Dict[int, int] = {t: 0 for t in self._homes}
        #: machine id -> {job id -> (context, was_read)}
        self._inflight: Dict[int, Dict[int, tuple]] = \
            {mid: {} for mid in machines}
        #: Reads re-issued because their machine failed mid-flight.
        self.reissued = 0
        #: Queries that found no surviving replica.
        self.unavailable = 0

    # ------------------------------------------------------------------
    def alive_homes(self, tenant_id: int) -> List[int]:
        return [mid for mid in self._homes[tenant_id]
                if not self.machines[mid].failed]

    def tenant_homes(self, tenant_id: int) -> List[int]:
        return list(self._homes[tenant_id])

    def execute(self, tenant_id: int, query: QueryExecution,
                on_complete: CompletionCallback) -> None:
        """Run ``query`` for ``tenant_id``.

        ``on_complete(latency)`` fires when the query finishes; latency is
        None when no surviving replica could serve it.
        """
        if tenant_id not in self._homes:
            raise SimulationError(f"unknown tenant {tenant_id}")
        ctx = _InFlightQuery(self, tenant_id, query, on_complete,
                             issued_at=self.sim.now)
        if query.is_update:
            self._dispatch_update(ctx)
        else:
            self._dispatch_read(ctx)

    # ------------------------------------------------------------------
    def _submit(self, ctx: _InFlightQuery, machine_id: int,
                was_read: bool) -> None:
        machine = self.machines[machine_id]
        demand = ctx.query.demand * self.datastore.demand_multiplier(
            machine_id, ctx.tenant_id)
        ctx.outstanding += 1

        def on_machine_complete(mid: int = machine_id) -> None:
            jobs = self._inflight[mid]
            jobs.pop(job_id, None)
            ctx.part_done(mid)

        job_id = machine.submit(demand, on_machine_complete)
        self._inflight[machine_id][job_id] = (ctx, was_read)

    def _dispatch_read(self, ctx: _InFlightQuery) -> None:
        alive = self.alive_homes(ctx.tenant_id)
        if not alive:
            self.unavailable += 1
            ctx.finished = True
            ctx.on_complete(None, -1)
            return
        if faults.active() and faults.should("cluster.route.dead"):
            # A stale routing table points at a failed home: the
            # machine rejects the submission with a SimulationError.
            dead = [mid for mid in self._homes[ctx.tenant_id]
                    if self.machines[mid].failed]
            if dead:
                self._submit(ctx, dead[0], was_read=True)
                return
        cursor = self._cursor[ctx.tenant_id]
        target = alive[cursor % len(alive)]
        self._cursor[ctx.tenant_id] = (cursor + 1) % max(len(alive), 1)
        self._submit(ctx, target, was_read=True)

    def _dispatch_update(self, ctx: _InFlightQuery) -> None:
        alive = self.alive_homes(ctx.tenant_id)
        if not alive:
            self.unavailable += 1
            ctx.finished = True
            ctx.on_complete(None, -1)
            return
        for mid in alive:
            self._submit(ctx, mid, was_read=False)

    # ------------------------------------------------------------------
    # Re-replication (recovery)
    # ------------------------------------------------------------------
    def add_home(self, tenant_id: int, machine_id: int) -> None:
        """Register a new replica home for ``tenant_id``.

        Used by recovery: the tenant's data is copied to ``machine_id``
        and subsequent reads round-robin over the enlarged alive set.
        The data store treats the machine as cold for this tenant until
        warmed, so re-replication has a realistic warm-up cost.
        """
        if tenant_id not in self._homes:
            raise SimulationError(f"unknown tenant {tenant_id}")
        machine = self.machines.get(machine_id)
        if machine is None:
            raise SimulationError(f"unknown machine {machine_id}")
        if machine.failed:
            raise SimulationError(
                f"cannot re-replicate onto failed machine {machine_id}")
        if machine_id in self._homes[tenant_id]:
            raise SimulationError(
                f"machine {machine_id} already hosts tenant {tenant_id}")
        self._homes[tenant_id].append(machine_id)

    def remove_home(self, tenant_id: int, machine_id: int) -> None:
        """Deregister a replica home (e.g. a permanently failed one)."""
        if tenant_id not in self._homes:
            raise SimulationError(f"unknown tenant {tenant_id}")
        homes = self._homes[tenant_id]
        if machine_id not in homes:
            raise SimulationError(
                f"machine {machine_id} does not host tenant {tenant_id}")
        if len(homes) <= 1:
            raise SimulationError(
                f"tenant {tenant_id} would be left with no homes")
        homes.remove(machine_id)

    # ------------------------------------------------------------------
    def fail_machine(self, machine_id: int) -> int:
        """Fail a machine; re-issue its in-flight reads elsewhere.

        Returns the number of queries that were in flight on the machine.
        """
        machine = self.machines[machine_id]
        if machine.failed:
            return 0
        machine.fail()  # aborts jobs; callbacks are dropped here on purpose
        inflight = self._inflight[machine_id]
        victims = list(inflight.values())
        inflight.clear()
        for ctx, was_read in victims:
            if was_read:
                self.reissued += 1
            ctx.part_lost(was_read)
        return len(victims)

    def total_inflight(self) -> int:
        """Number of *logical* queries currently in flight.

        An update fans out to every alive replica and a failed read is
        re-issued against a survivor; all those machine-level parts
        share one context and must count as one query, or the
        conservation ledger ``completed + dropped + inflight == issued``
        over-counts every fanned-out or re-issued query still in
        flight.
        """
        contexts = {id(ctx)
                    for jobs in self._inflight.values()
                    for ctx, _was_read in jobs.values()}
        return len(contexts)
