"""Unit tests for in-simulation re-replication (router + experiment)."""

import pytest

from repro.cluster.datastore import DataStore
from repro.cluster.engine import Simulator
from repro.cluster.experiment import ClusterConfig, ClusterExperiment
from repro.cluster.failures import plan_replacement_homes
from repro.cluster.machine import Machine
from repro.cluster.routing import ReplicaRouter
from repro.errors import ConfigurationError, SimulationError


def build_router(homes, machines_n=4):
    sim = Simulator()
    machines = {m: Machine(sim, m, cores=4) for m in range(machines_n)}
    router = ReplicaRouter(sim, machines, homes,
                           DataStore(warm_after=0))
    return sim, machines, router


class TestRouterHomes:
    def test_add_home_extends_routing(self):
        sim, machines, router = build_router({0: [0, 1]})
        router.add_home(0, 2)
        assert router.tenant_homes(0) == [0, 1, 2]
        assert 2 in router.alive_homes(0)

    def test_add_home_validations(self):
        sim, machines, router = build_router({0: [0, 1]})
        with pytest.raises(SimulationError):
            router.add_home(9, 2)          # unknown tenant
        with pytest.raises(SimulationError):
            router.add_home(0, 99)         # unknown machine
        with pytest.raises(SimulationError):
            router.add_home(0, 1)          # already a home
        router.fail_machine(2)
        with pytest.raises(SimulationError):
            router.add_home(0, 2)          # failed machine

    def test_remove_home(self):
        sim, machines, router = build_router({0: [0, 1, 2]})
        router.remove_home(0, 1)
        assert router.tenant_homes(0) == [0, 2]

    def test_remove_home_validations(self):
        sim, machines, router = build_router({0: [0, 1]})
        with pytest.raises(SimulationError):
            router.remove_home(0, 3)       # not a home
        router.remove_home(0, 1)
        with pytest.raises(SimulationError):
            router.remove_home(0, 0)       # last home


class TestPlanReplacementHomes:
    HOMES = {0: [0, 1], 1: [1, 2], 2: [2, 3]}
    CLIENTS = {0: 10, 1: 10, 2: 10}

    def test_only_affected_tenants_planned(self):
        plan = plan_replacement_homes(self.HOMES, self.CLIENTS,
                                      failed=[1], candidates=range(5))
        assert set(plan) == {0, 1}
        for tenant_id, targets in plan.items():
            assert len(targets) == 1
            assert targets[0] not in (1,)
            assert targets[0] not in self.HOMES[tenant_id]

    def test_prefers_least_loaded(self):
        plan = plan_replacement_homes(self.HOMES, self.CLIENTS,
                                      failed=[1], candidates=range(5))
        # Server 4 is empty; it should absorb at least one replica.
        targets = [t for targets in plan.values() for t in targets]
        assert 4 in targets

    def test_no_healthy_candidate_raises(self):
        with pytest.raises(ConfigurationError):
            plan_replacement_homes({0: [0, 1]}, {0: 5}, failed=[1],
                                   candidates=[0, 1])

    def test_double_failure_two_replacements(self):
        plan = plan_replacement_homes({0: [0, 1]}, {0: 6},
                                      failed=[0, 1],
                                      candidates=range(4))
        assert sorted(plan[0]) == [2, 3]


class TestExperimentRecovery:
    def scenario(self, recovery_delay):
        homes = {0: [0, 1], 1: [0, 2], 2: [1, 2], 3: [2, 3], 4: [3, 0]}
        clients = {t: 8 for t in homes}
        cfg = ClusterConfig(warmup=10.0, measure=25.0, seed=0,
                            recovery_delay=recovery_delay)
        return ClusterExperiment(homes, clients, cfg)

    def test_recovery_reduces_drops_under_double_failure(self):
        # Fail both homes of tenant 0: without recovery it stays
        # unavailable for the whole window.
        without = self.scenario(None).run(fail_servers=[0, 1])
        with_rec = self.scenario(2.0).run(fail_servers=[0, 1])
        assert with_rec.recovered_replicas > 0
        assert with_rec.dropped < without.dropped

    def test_recovered_tenants_complete_queries(self):
        result = self.scenario(2.0).run(fail_servers=[0, 1])
        assert result.completed > 0

    def test_no_recovery_without_failures(self):
        result = self.scenario(2.0).run()
        assert result.recovered_replicas == 0