"""Shared fixtures for the benchmark suite.

Every benchmark runs at the scale profile selected by the
``REPRO_FULL_SCALE`` environment variable (see
:mod:`repro.sim.scenarios`); the default profile keeps the whole suite
in the minutes range while preserving every experiment's shape.
"""

import pytest

from repro.sim.scenarios import current_scale


@pytest.fixture(scope="session")
def scale():
    """Active scale profile, echoed into the bench report."""
    profile = current_scale()
    print(f"\n[benchmarks running at scale profile: {profile.name}]")
    return profile
