"""Unit tests for the OPT lower bounds."""

import numpy as np
import pytest

from repro.algorithms.lower_bound import (best_lower_bound,
                                          capacity_lower_bound,
                                          weight_lower_bound)
from repro.core.cubefit import CubeFit
from repro.core.tenant import make_tenants


class TestCapacityBound:
    def test_simple_sum(self):
        assert capacity_lower_bound([0.5, 0.6]) == 2

    def test_exact_integer_total(self):
        assert capacity_lower_bound([0.5, 0.5]) == 1

    def test_empty(self):
        assert capacity_lower_bound([]) == 0


class TestWeightBound:
    def test_empty(self):
        assert weight_lower_bound([], 2, 10) == 0

    def test_beats_capacity_on_large_replicas(self):
        """Tenants of load 1 (replicas 1/2, weight 1 each, W = 2n);
        with r < 2 the weight bound exceeds the capacity bound n."""
        loads = [1.0] * 30
        cap = capacity_lower_bound(loads)
        weight = weight_lower_bound(loads, 2, 91)
        assert weight > cap

    def test_cubefit_respects_bound(self):
        rng = np.random.default_rng(61)
        loads = list(rng.uniform(0.01, 1.0, 150))
        algo = CubeFit(gamma=2, num_classes=10)
        algo.consolidate(make_tenants(loads))
        lb = best_lower_bound(loads, 2, 10)
        assert algo.placement.num_servers >= lb

    def test_best_lower_bound_is_max(self):
        loads = [1.0] * 30
        assert best_lower_bound(loads, 2, 91) == max(
            capacity_lower_bound(loads),
            weight_lower_bound(loads, 2, 91))


class TestNearOptimality:
    def test_cubefit_near_optimal_large_n(self):
        """The paper's claim: near-optimal allocation when the number of
        tenants is large.  CubeFit must come within its competitive
        ratio of the weight lower bound."""
        rng = np.random.default_rng(67)
        loads = list(rng.uniform(0.01, 0.4, 2000))
        algo = CubeFit(gamma=2, num_classes=10)
        algo.consolidate(make_tenants(loads))
        lb = best_lower_bound(loads, 2, 10)
        # Theorem 2's ratio for K=10 (last-class weights) is < 1.8.
        assert algo.placement.num_servers <= 1.8 * lb + 50
