"""Tenant churn simulation: arrivals and departures over time.

The paper's model is arrival-only; real multi-tenant fleets also lose
tenants.  This harness drives a placement algorithm with a birth-death
workload — Poisson arrivals, exponential tenant lifetimes — and samples
fleet statistics over time, exposing how well each algorithm's freed
space is reclaimed (CUBEFIT's first stage and the checked baselines
reuse departure holes through their normal candidate search).

The simulation is event-driven in *logical* time: what matters to the
placement question is the interleaving of arrivals and departures, not
query-level dynamics (that is :mod:`repro.cluster`'s job).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..algorithms.base import OnlinePlacementAlgorithm
from ..analysis.report import Table
from ..core.tenant import Tenant
from ..core.validation import audit
from ..errors import ConfigurationError
from ..workloads.distributions import LoadDistribution


@dataclass(frozen=True)
class ChurnConfig:
    """Birth-death workload parameters.

    ``arrival_rate`` tenants arrive per unit time; each lives for an
    exponential time with mean ``mean_lifetime``.  In steady state the
    expected population is ``arrival_rate * mean_lifetime``.
    """

    arrival_rate: float = 10.0
    mean_lifetime: float = 50.0
    horizon: float = 200.0
    sample_every: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0 or self.mean_lifetime <= 0:
            raise ConfigurationError(
                "arrival_rate and mean_lifetime must be positive")
        if self.horizon <= 0 or self.sample_every <= 0:
            raise ConfigurationError(
                "horizon and sample_every must be positive")

    @property
    def expected_population(self) -> float:
        return self.arrival_rate * self.mean_lifetime


@dataclass
class ChurnSample:
    """Fleet state at one sample instant."""

    time: float
    tenants: int
    servers_nonempty: int
    servers_opened_total: int
    utilization: float


@dataclass
class ChurnResult:
    """Timeline of one churn run."""

    algorithm: str
    config: ChurnConfig
    samples: List[ChurnSample] = field(default_factory=list)
    arrivals: int = 0
    departures: int = 0
    final_robust: bool = True
    #: Metrics snapshot of the run (None when not instrumented).
    metrics: Optional[Dict[str, object]] = None

    def steady_state(self, skip_fraction: float = 0.5
                     ) -> List[ChurnSample]:
        """Samples after the warm-up portion of the horizon."""
        cut = self.config.horizon * skip_fraction
        return [s for s in self.samples if s.time >= cut]

    @property
    def mean_steady_servers(self) -> float:
        steady = self.steady_state()
        if not steady:
            return 0.0
        return sum(s.servers_nonempty for s in steady) / len(steady)

    @property
    def mean_steady_utilization(self) -> float:
        steady = self.steady_state()
        if not steady:
            return 0.0
        return sum(s.utilization for s in steady) / len(steady)

    def to_table(self) -> Table:
        table = Table(
            title=f"Churn timeline — {self.algorithm} "
                  f"(rate {self.config.arrival_rate}/t, "
                  f"mean life {self.config.mean_lifetime}t)",
            columns=["time", "tenants", "servers", "opened_total",
                     "utilization"])
        for s in self.samples:
            table.add_row(round(s.time, 1), s.tenants, s.servers_nonempty,
                          s.servers_opened_total, round(s.utilization, 3))
        return table


class _ChurnState:
    """Workload-side state of a churn run (survives controller crashes).

    The event heap, tenant-id counter, alive set, and sampling cursor
    belong to the *workload*, not the controller: when
    :func:`run_churn_with_crash` kills the controller mid-run, this
    state carries the stream across the restart exactly as a real
    tenant population would keep arriving and departing while the
    placement controller reboots.
    """

    __slots__ = ("events", "seq", "next_tenant_id", "next_sample",
                 "alive", "applied")

    def __init__(self, cfg: ChurnConfig, rng) -> None:
        # Event heap: (time, seq, kind, tenant_id); seq breaks ties FIFO.
        self.events: List[tuple] = []
        self.seq = 0
        next_arrival = float(rng.exponential(1.0 / cfg.arrival_rate))
        heapq.heappush(self.events, (next_arrival, 0, "arrive", None))
        self.next_tenant_id = 0
        self.next_sample = cfg.sample_every
        self.alive: Dict[int, float] = {}
        #: Events applied so far (arrivals + effective departures).
        self.applied = 0


def _take_sample(at: float, algorithm: OnlinePlacementAlgorithm,
                 result: ChurnResult, gated) -> None:
    sample = _sample(at, algorithm)
    result.samples.append(sample)
    if gated is not None:
        gated.gauge("churn.tenants").set(sample.tenants)
        gated.gauge("churn.servers").set(sample.servers_nonempty)
        gated.gauge("churn.utilization").set(sample.utilization)


def _drive_churn(algorithm: OnlinePlacementAlgorithm,
                 state: _ChurnState, cfg: ChurnConfig,
                 distribution: LoadDistribution, rng,
                 result: ChurnResult, gated,
                 checkpoint_every: Optional[int] = None,
                 stop_after: Optional[int] = None) -> bool:
    """Apply events until the horizon; True when the stream finished.

    ``stop_after`` stops once that many events have been *applied in
    total* (across drivers — ``state.applied`` persists), leaving the
    remaining events on the heap; used to cut the run at a crash point.
    """
    store = algorithm.store
    while state.events:
        if stop_after is not None and state.applied >= stop_after:
            return False
        time, _seq, kind, tenant_id = heapq.heappop(state.events)
        if time > cfg.horizon:
            break
        # Flush all samples due at or before this event's timestamp
        # BEFORE applying the event: a sample at exactly `time` sees
        # the state strictly before the event (see docstring).
        while state.next_sample <= time:
            _take_sample(state.next_sample, algorithm, result, gated)
            state.next_sample += cfg.sample_every
        if kind == "arrive":
            load = float(distribution.sample(rng, 1)[0])
            tenant = Tenant(state.next_tenant_id, load)
            algorithm.place(tenant)
            state.alive[state.next_tenant_id] = load
            result.arrivals += 1
            state.applied += 1
            lifetime = float(rng.exponential(cfg.mean_lifetime))
            state.seq += 1
            heapq.heappush(state.events,
                           (time + lifetime, state.seq, "depart",
                            state.next_tenant_id))
            state.next_tenant_id += 1
            state.seq += 1
            gap = float(rng.exponential(1.0 / cfg.arrival_rate))
            heapq.heappush(state.events,
                           (time + gap, state.seq, "arrive", None))
        else:
            if tenant_id in state.alive:
                algorithm.remove(tenant_id)
                del state.alive[tenant_id]
                result.departures += 1
                state.applied += 1
        if store is not None and checkpoint_every \
                and state.applied % checkpoint_every == 0:
            store.checkpoint(algorithm.placement)
            store.compact()
    return True


def _finish_churn(algorithm: OnlinePlacementAlgorithm,
                  state: _ChurnState, cfg: ChurnConfig,
                  result: ChurnResult, gated) -> None:
    while state.next_sample <= cfg.horizon:
        _take_sample(state.next_sample, algorithm, result, gated)
        state.next_sample += cfg.sample_every
    result.final_robust = audit(algorithm.placement).ok
    if gated is not None:
        result.metrics = gated.snapshot()


def run_churn(factory: Callable[[], OnlinePlacementAlgorithm],
              distribution: LoadDistribution,
              config: Optional[ChurnConfig] = None,
              rng=None, obs=None, store=None,
              checkpoint_every: Optional[int] = None) -> ChurnResult:
    """Drive one algorithm through a birth-death tenant workload.

    **Sampling tie-break.** A sample scheduled at time ``t`` reflects
    the fleet state *strictly before* any event at time ``t``: due
    samples are flushed before each event is applied, so an arrival or
    departure landing exactly on a sample instant is *not* visible in
    that sample (it shows up in the next one).  This half-open
    convention (samples cover ``[previous event, t)``) keeps timelines
    deterministic when event and sample times coincide.

    ``rng`` overrides the seeded generator (any object with the
    ``numpy.random.Generator`` ``exponential``/``integers`` surface) —
    useful for scripted, deterministic tests.  ``obs`` (a
    :class:`~repro.obs.MetricsRegistry`) instruments the run: fleet
    gauges track each sample and the final snapshot lands in
    ``ChurnResult.metrics``.  ``store`` (a
    :class:`~repro.store.DurableStore`) logs every arrival/departure to
    the write-ahead log and checkpoints (then compacts) every
    ``checkpoint_every`` applied events, making the run restartable.
    """
    cfg = config if config is not None else ChurnConfig()
    if rng is None:
        rng = np.random.default_rng(cfg.seed)
    algorithm = factory()
    from ..obs import active
    gated = active(obs)
    if gated is not None:
        algorithm.attach_obs(gated)
    if store is not None:
        if gated is not None:
            store.attach_obs(gated)
        algorithm.attach_store(store)
    result = ChurnResult(algorithm=algorithm.name, config=cfg)
    state = _ChurnState(cfg, rng)
    _drive_churn(algorithm, state, cfg, distribution, rng, result,
                 gated, checkpoint_every=checkpoint_every)
    _finish_churn(algorithm, state, cfg, result, gated)
    return result


def run_churn_seeds(factory: Callable[[], OnlinePlacementAlgorithm],
                    distribution: LoadDistribution,
                    seeds: Sequence[int],
                    config: Optional[ChurnConfig] = None,
                    jobs: int = 1,
                    obs=None) -> List[ChurnResult]:
    """Run one churn timeline per seed, optionally on a worker pool.

    Each seed runs ``run_churn`` with ``replace(config, seed=seed)``;
    results come back in seed order and are bit-identical at any
    ``jobs``.  Per-run metrics recorded against ``obs`` are merged in
    seed order via :func:`repro.par.pmap`.  Durable stores are not
    supported here — a store serializes one run's WAL, not a fan-out.
    """
    from ..par import pmap
    if not seeds:
        raise ConfigurationError("no seeds to run")
    cfg = config if config is not None else ChurnConfig()

    def one_seed(seed: int, run_obs) -> ChurnResult:
        return run_churn(factory, distribution,
                         config=replace(cfg, seed=int(seed)),
                         obs=run_obs)

    return pmap(one_seed, seeds, jobs=jobs, obs=obs)


def run_churn_with_crash(factory: Callable[[],
                                           OnlinePlacementAlgorithm],
                         distribution: LoadDistribution,
                         store_dir,
                         config: Optional[ChurnConfig] = None,
                         crash_after_events: Optional[int] = None,
                         checkpoint_every: Optional[int] = None,
                         resume_factory: Optional[
                             Callable[[], OnlinePlacementAlgorithm]]
                         = None,
                         obs=None, segment_records: int = 64):
    """Churn run with a simulated controller crash and recovery.

    Applies ``crash_after_events`` arrivals/departures (default: half
    the expected event count over the horizon), kills the controller
    with no shutdown, recovers the placement from checkpoint + WAL
    tail under ``store_dir``, verifies it is replica-for-replica
    identical to the pre-crash state and audit-clean, then resumes the
    surviving event stream on the recovered state.  The tenant
    population is workload state and survives the crash — exactly the
    situation a restarted controller faces.

    Returns a :class:`~repro.sim.soak.CrashRecoveryReport` whose
    ``result`` is the full run's :class:`ChurnResult`.
    """
    from ..algorithms.naive import RobustBestFit
    from ..store import DurableStore, diff_placements, recover
    from .soak import CrashRecoveryReport
    cfg = config if config is not None else ChurnConfig()
    if crash_after_events is None:
        crash_after_events = max(
            1, int(cfg.arrival_rate * cfg.horizon) // 2)
    if crash_after_events < 1:
        raise ConfigurationError(
            f"crash_after_events must be >= 1, got {crash_after_events}")
    rng = np.random.default_rng(cfg.seed)
    algorithm = factory()
    from ..obs import active
    gated = active(obs)
    if gated is not None:
        algorithm.attach_obs(gated)
    store = DurableStore(store_dir, segment_records=segment_records,
                         obs=gated)
    algorithm.attach_store(store)
    result = ChurnResult(algorithm=algorithm.name, config=cfg)
    state = _ChurnState(cfg, rng)
    finished = _drive_churn(algorithm, state, cfg, distribution, rng,
                            result, gated,
                            checkpoint_every=checkpoint_every,
                            stop_after=crash_after_events)

    # Simulated crash: no close(), no final checkpoint — only what the
    # WAL committed survives.
    pre_crash = algorithm.placement
    recovered = recover(store_dir, obs=gated)
    # Tags are checkpoint-durable only (see docs/durability.md);
    # replica assignments, loads, and server inventory must be exact.
    diffs = diff_placements(pre_crash, recovered.placement,
                            compare_tags=False)
    if sorted(state.alive) != recovered.placement.tenant_ids:
        diffs = diffs + [
            f"alive tenant set diverged: workload has "
            f"{len(state.alive)} tenants, recovered placement has "
            f"{len(recovered.placement.tenant_ids)}"]
    budget = algorithm.guaranteed_failures
    if resume_factory is None:
        gamma = recovered.gamma
        capacity = recovered.capacity

        def resume_factory():
            return RobustBestFit(gamma=gamma, failures=budget,
                                 capacity=capacity)

    resume = resume_factory()
    if gated is not None:
        resume.attach_obs(gated)
    resume.adopt(recovered.placement)
    reopened = DurableStore(store_dir, segment_records=segment_records,
                            obs=gated)
    resume.attach_store(reopened)
    if not finished:
        _drive_churn(resume, state, cfg, distribution, rng, result,
                     gated, checkpoint_every=checkpoint_every)
    _finish_churn(resume, state, cfg, result, gated)
    reopened.close()
    return CrashRecoveryReport(
        result=result, crash_after=crash_after_events,
        records_replayed=recovered.records_replayed,
        checkpoint_seq=recovered.checkpoint_seq,
        diffs=diffs, audit_ok=recovered.audit.ok,
        min_slack=recovered.audit.min_slack)


def _sample(time: float,
            algorithm: OnlinePlacementAlgorithm) -> ChurnSample:
    placement = algorithm.placement
    return ChurnSample(
        time=time,
        tenants=placement.num_tenants,
        servers_nonempty=placement.num_nonempty_servers,
        servers_opened_total=placement.num_servers,
        utilization=placement.utilization(),
    )
