"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from invariant
violations detected at run time.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A parameter is outside its documented domain.

    Examples: a replication factor below 2, a class count below 1, a
    tenant load outside ``(0, 1]``.
    """


class PlacementError(ReproError):
    """A placement operation could not be carried out.

    Raised, for example, when a replica is placed twice on the same
    server, when a rollback references a replica that is not present, or
    when an algorithm produces an assignment that does not respect the
    "gamma distinct servers per tenant" rule.
    """


class CapacityError(PlacementError):
    """Placing a replica would exceed a server's unit capacity."""


class RobustnessViolation(ReproError):
    """A packing failed the failure-tolerance audit.

    The audit checks the paper's condition: for every server ``S`` and
    every set ``S*`` of at most ``gamma - 1`` other servers,
    ``|S| + sum(|S ∩ T| for T in S*) <= 1``.
    """

    def __init__(self, message: str, server_id: int | None = None,
                 failed_set: tuple[int, ...] | None = None,
                 overload: float | None = None) -> None:
        super().__init__(message)
        #: Server that would be overloaded, if known.
        self.server_id = server_id
        #: The failure set that triggers the overload, if known.
        self.failed_set = failed_set
        #: Load in excess of capacity, if known.
        self.overload = overload


class ShadowAuditError(ReproError):
    """The incremental slack index diverged from naive recomputation.

    Raised only in shadow-audit mode (``REPRO_SHADOW_AUDIT=1`` or
    ``PlacementState(shadow_audit=True)``), where every cached
    worst-case failover load is cross-checked against a from-scratch
    recomputation of the shared-load sets.  A divergence means the
    incremental invalidation missed a server and the cache can no
    longer be trusted.
    """

    def __init__(self, message: str, server_id: int | None = None,
                 cached: float | None = None,
                 recomputed: float | None = None) -> None:
        super().__init__(message)
        #: Server whose cached value diverged.
        self.server_id = server_id
        #: The value the cache was about to serve.
        self.cached = cached
        #: The value naive recomputation produced.
        self.recomputed = recomputed


class StoreError(ReproError):
    """A durable-store operation (WAL append, checkpoint, recovery)
    could not be carried out."""


class StoreCorruptionError(StoreError):
    """The on-disk WAL or checkpoint contents are not trustworthy.

    Raised when a WAL segment contains an unparseable record *before*
    the final line (a torn final line is the expected artifact of a
    crash and is tolerated), when sequence numbers have gaps or run
    backwards, or when replaying a record contradicts the placement it
    is applied to (e.g. an ``open_server`` record whose id does not
    match the next id the placement would assign).
    """


class FaultInjected(ReproError):
    """A failpoint fired with a ``raise`` policy.

    Carries the failpoint's registered name so harnesses (and the chaos
    conformance checks) can attribute the error to the exact seam that
    produced it.  Injected faults are *typed* errors by construction:
    catching :class:`ReproError` is always sufficient to contain them.
    """

    def __init__(self, message: str, failpoint: str = "") -> None:
        super().__init__(message)
        #: Registered name of the failpoint that fired.
        self.failpoint = failpoint


class SimulatedCrash(FaultInjected):
    """A failpoint simulated a process crash (kill -9 semantics).

    Unlike a plain :class:`FaultInjected`, the seam that raises this may
    deliberately leave *torn* on-disk state behind (a half-written WAL
    line, an un-renamed checkpoint temp file) — exactly what a real
    crash leaves.  Harnesses treat it as controller death: recover from
    the durable store and resume, rather than handling it in place.
    """


class ProtocolError(ReproError):
    """A serve-protocol frame could not be honoured.

    Raised (and returned as a typed error payload) by the placement
    service for malformed JSONL frames, unknown verbs, oversized
    payloads, and requests arriving after shutdown began.  The
    connection survives: a protocol error condemns the frame, never the
    session.
    """


class BackpressureError(ReproError):
    """The service's bounded admission queue rejected a request.

    Carries the server's ``retry_after`` hint (seconds); clients should
    back off at least that long before resubmitting.  This is the
    explicit-backpressure contract of ``repro serve`` — a full queue is
    a typed rejection, never a hang or a dropped connection.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        #: Seconds the client should wait before retrying.
        self.retry_after = retry_after


class ShardSaturatedError(PlacementError):
    """A fleet shard refused a placement that would exceed its budget.

    Raised by a :class:`~repro.fleet.shard.ShardController` with a
    ``max_servers`` cap when admitting the tenant would have to open
    servers beyond the cap.  The router treats it as the spillover
    signal: the tenant is offered to sibling shards in deterministic
    order before the fleet as a whole reports saturation.
    """

    def __init__(self, message: str, shard_id: int = -1) -> None:
        super().__init__(message)
        #: Shard that refused the placement.
        self.shard_id = shard_id


class ShardDownError(ReproError):
    """An operation needs a fleet shard that is currently crashed.

    New placements route around a down shard, but an operation on a
    tenant *homed* on it (remove, resize) cannot proceed until the
    shard recovers from its WAL + checkpoint.  Typed by construction:
    whole-shard failure surfaces as this error, never as a hang.
    """

    def __init__(self, message: str, shard_id: int = -1) -> None:
        super().__init__(message)
        #: Shard that is down.
        self.shard_id = shard_id


class SimulationError(ReproError):
    """The discrete-event cluster simulation reached an invalid state."""


class CalibrationError(ReproError):
    """Load-model calibration could not find a separating line."""
