"""Unit tests for self-contained placement checkpoints."""

import json

import pytest

from repro.core.placement import PlacementState
from repro.core.tenant import Replica, Tenant
from repro.errors import ConfigurationError, StoreCorruptionError
from repro.store.snapshot import (CHECKPOINT_VERSION, diff_placements,
                                  load_checkpoint, save_checkpoint)


def _standard_placement(gamma=2, capacity=1.0):
    placement = PlacementState(gamma=gamma, capacity=capacity)
    for _ in range(3):
        placement.open_server()
    placement.place_tenant(Tenant(0, 0.4), [0, 1])
    placement.place_tenant(Tenant(1, 0.3), [1, 2])
    placement.place_tenant(Tenant(2, 0.1 + 0.2), [0, 2])
    return placement


def _fanout_placement():
    """Unequal per-replica loads placed by hand — the shape a companion
    trace cannot describe, which v2 checkpoints must carry themselves."""
    placement = PlacementState(gamma=3, capacity=2.0)
    for _ in range(4):
        placement.open_server()
    placement.place(Replica(7, 0, 0.5), 0)
    placement.place(Replica(7, 1, 0.25), 1)
    placement.place(Replica(7, 2, 0.125), 3)
    placement.place(Replica(9, 0, 0.1 + 0.2), 2)
    placement.place(Replica(9, 1, 0.3), 0)
    placement.place(Replica(9, 2, 0.05), 1)
    return placement


class TestRoundTrip:
    def test_restore_matches_original(self, tmp_path):
        placement = _standard_placement()
        path = tmp_path / "checkpoint.json"
        save_checkpoint(placement, path, wal_applied=12,
                        algorithm="bestfit")
        checkpoint = load_checkpoint(path)
        assert checkpoint.wal_applied == 12
        assert checkpoint.algorithm == "bestfit"
        assert diff_placements(placement, checkpoint.restore()) == []

    def test_fanout_unequal_replica_loads_roundtrip(self, tmp_path):
        placement = _fanout_placement()
        path = tmp_path / "checkpoint.json"
        save_checkpoint(placement, path)
        restored = load_checkpoint(path).restore()
        assert diff_placements(placement, restored) == []
        # Per-replica loads survive JSON bit-for-bit.
        server = restored.server(2)
        assert server.replicas[(9, 0)].load == 0.1 + 0.2

    def test_empty_servers_and_next_id_roundtrip(self, tmp_path):
        placement = _standard_placement()
        placement.open_server()  # trailing empty server
        placement.remove_tenant(1)
        save_checkpoint(placement, tmp_path / "c.json")
        restored = load_checkpoint(tmp_path / "c.json").restore()
        assert diff_placements(placement, restored) == []
        assert restored._next_server_id == placement._next_server_id

    def test_tags_roundtrip(self, tmp_path):
        placement = _standard_placement()
        placement.server(1).tags["cube"] = 0
        placement.server(1).tags["mature"] = True
        save_checkpoint(placement, tmp_path / "c.json")
        restored = load_checkpoint(tmp_path / "c.json").restore()
        assert restored.server(1).tags == {"cube": 0, "mature": True}
        assert diff_placements(placement, restored) == []


class TestDiffPlacements:
    def test_reports_load_difference(self):
        a = _standard_placement()
        b = _standard_placement()
        b.remove_tenant(2)
        b.place_tenant(Tenant(2, 0.31), [0, 2])
        diffs = diff_placements(a, b)
        assert diffs and any("load" in d for d in diffs)

    def test_reports_assignment_difference(self):
        a = _standard_placement()
        b = _standard_placement()
        b.remove_tenant(2)
        b.place_tenant(Tenant(2, 0.1 + 0.2), [1, 2])
        assert diff_placements(a, b)

    def test_compare_tags_flag(self):
        a = _standard_placement()
        b = _standard_placement()
        b.server(0).tags["mature"] = False
        assert diff_placements(a, b)
        assert diff_placements(a, b, compare_tags=False) == []

    def test_gamma_mismatch_reported(self):
        a = _standard_placement(gamma=2)
        b = PlacementState(gamma=3)
        assert any("gamma" in d for d in diff_placements(a, b))


class TestMalformedCheckpoints:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_checkpoint(tmp_path / "absent.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{ nope")
        with pytest.raises(ConfigurationError):
            load_checkpoint(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"format": "something-else",
                                    "version": CHECKPOINT_VERSION}))
        with pytest.raises(ConfigurationError):
            load_checkpoint(path)

    def test_unsupported_version(self, tmp_path):
        save_checkpoint(_standard_placement(), tmp_path / "c.json")
        payload = json.loads((tmp_path / "c.json").read_text())
        payload["version"] = CHECKPOINT_VERSION + 1
        (tmp_path / "c.json").write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_checkpoint(tmp_path / "c.json")

    def test_server_id_beyond_next_id_is_corruption(self, tmp_path):
        save_checkpoint(_standard_placement(), tmp_path / "c.json")
        payload = json.loads((tmp_path / "c.json").read_text())
        payload["next_server_id"] = 1
        (tmp_path / "c.json").write_text(json.dumps(payload))
        checkpoint = load_checkpoint(tmp_path / "c.json")
        with pytest.raises(StoreCorruptionError):
            checkpoint.restore()

    def test_malformed_servers_payload(self, tmp_path):
        save_checkpoint(_standard_placement(), tmp_path / "c.json")
        payload = json.loads((tmp_path / "c.json").read_text())
        payload["servers"][0]["replicas"] = [["oops"]]
        (tmp_path / "c.json").write_text(json.dumps(payload))
        with pytest.raises(StoreCorruptionError):
            load_checkpoint(tmp_path / "c.json")

    def test_no_leftover_tmp_file(self, tmp_path):
        save_checkpoint(_standard_placement(), tmp_path / "c.json")
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name != "c.json"]
        assert leftovers == []
