"""Optimality-gap harness: heuristics vs the exact offline oracle.

The paper's "near-optimal" claim for CUBEFIT is argued against the
loose ``W/r`` weight bound.  With
:func:`repro.analysis.optimum.branch_and_bound_optimum` we can measure
the *real* gap on seeded small-to-medium workloads: consolidate each
sequence with every heuristic, solve the same instance exactly (or to a
certified ``[LB, UB]`` interval when the node budget runs out), and
report ``servers / LB`` per (workload, algorithm).

When the solve is certified the ratio is the true optimality gap; when
the budget is exhausted it is an upper bound on the gap (the
heuristic's count divided by a certified lower bound), never a silent
wrong answer — :class:`GapRow` carries the ``certified`` flag and the
interval so tables say which one they are printing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import make_algorithm
from ..analysis.optimum import OptimumResult, SearchBudget, \
    branch_and_bound_optimum
from ..analysis.report import Table
from ..errors import ConfigurationError
from ..par import pmap
from ..workloads.distributions import LoadDistribution
from ..workloads.sequences import generate_sequence

#: The heuristics the gap tables compare by default: the paper's two
#: contributions plus the strongest classic baseline.
DEFAULT_GAP_ALGORITHMS: Tuple[str, ...] = ("cubefit", "rfi", "firstfit")


@dataclass
class GapRow:
    """One workload instance: certified optimum interval + heuristics."""

    distribution: str
    seed: int
    tenants: int
    failures: int
    lower_bound: int
    upper_bound: int
    certified: bool
    nodes: int
    #: algorithm name -> servers used on this instance.
    servers: Dict[str, int] = field(default_factory=dict)

    @property
    def optimum_label(self) -> str:
        """``"4"`` when certified, ``"[4, 6]"`` when budget-exhausted."""
        if self.certified:
            return str(self.upper_bound)
        return f"[{self.lower_bound}, {self.upper_bound}]"

    def gap(self, algorithm: str) -> float:
        """``servers / LB``: the exact gap when certified, else an
        upper bound on it."""
        return self.servers[algorithm] / self.lower_bound


@dataclass
class GapReport:
    """Per-workload gap tables for a set of heuristics."""

    gamma: int
    #: Failure budget the oracle solved for: the weakest guarantee among
    #: the compared algorithms (see :func:`run_opt_gap`).
    failures: int
    tenants: int
    runs: int
    seed: int
    algorithms: Tuple[str, ...]
    max_nodes: Optional[int] = None
    rows: List[GapRow] = field(default_factory=list)

    @property
    def certified_rows(self) -> int:
        return sum(1 for row in self.rows if row.certified)

    def mean_gap(self, algorithm: str) -> float:
        if not self.rows:
            raise ConfigurationError("gap report has no rows")
        return sum(row.gap(algorithm) for row in self.rows) \
            / len(self.rows)

    def worst_gap(self, algorithm: str) -> float:
        if not self.rows:
            raise ConfigurationError("gap report has no rows")
        return max(row.gap(algorithm) for row in self.rows)

    @property
    def repro_line(self) -> str:
        """CLI invocation reproducing this exact report."""
        line = (f"repro opt-gap --tenants {self.tenants} "
                f"--runs {self.runs} --gamma {self.gamma} "
                f"--seed {self.seed}")
        if self.max_nodes is not None:
            line += f" --budget {self.max_nodes}"
        return line

    def to_table(self) -> Table:
        columns = ["distribution", "seed", "optimum"]
        for name in self.algorithms:
            columns.extend([name, f"{name} gap"])
        table = Table(
            title=f"optimality gap vs exact oracle "
                  f"({self.tenants} tenants, gamma={self.gamma}, "
                  f"failures={self.failures}, "
                  f"{self.certified_rows}/{len(self.rows)} certified)",
            columns=columns)
        for row in self.rows:
            cells = [row.distribution, row.seed, row.optimum_label]
            for name in self.algorithms:
                cells.extend([row.servers[name],
                              round(row.gap(name), 3)])
            table.add_row(*cells)
        return table

    def __str__(self) -> str:
        return (f"{self.to_table().to_text()}\n"
                f"reproduce: {self.repro_line}")


def run_opt_gap(distributions: Sequence[LoadDistribution],
                algorithms: Sequence[str] = DEFAULT_GAP_ALGORITHMS,
                n_tenants: int = 8,
                runs: int = 3,
                gamma: int = 2,
                seed: int = 0,
                budget: Optional[SearchBudget] = None,
                jobs: int = 1,
                obs=None) -> GapReport:
    """Measure every heuristic's gap to the oracle per workload.

    One :class:`GapRow` per (distribution, run): the run's sequence is
    consolidated by each heuristic and solved exactly by the oracle
    (under ``budget``).  Runs are independent — run ``r`` uses seed
    ``seed + r`` — and parallelize over a :func:`repro.par.pmap` pool,
    bit-identical at any ``jobs``.

    The oracle's failure budget is the *weakest* guarantee among the
    compared algorithms (RFI reserves for one failure regardless of
    gamma; CUBEFIT and the checked baselines cover ``gamma - 1``).
    Every heuristic's packing is robust at that budget, so its count is
    a feasible solution of the oracle's problem and the sandwich
    ``LB <= OPT <= servers`` holds for every row — comparing a
    1-failure packing against a ``gamma - 1``-failure optimum would let
    the heuristic "beat" the oracle.
    """
    if not distributions:
        raise ConfigurationError("no distributions to measure")
    if not algorithms:
        raise ConfigurationError("no algorithms to measure")
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    failures = min(make_algorithm(name, gamma).guaranteed_failures
                   for name in algorithms)
    report = GapReport(gamma=gamma, failures=failures, tenants=n_tenants,
                       runs=runs, seed=seed, algorithms=tuple(algorithms),
                       max_nodes=budget.max_nodes if budget else None)
    instances = [(dist, seed + r) for dist in distributions
                 for r in range(runs)]

    def measure(instance, point_obs) -> GapRow:
        dist, run_seed = instance
        sequence = generate_sequence(dist, n_tenants, seed=run_seed)
        loads = [tenant.load for tenant in sequence]
        result: OptimumResult = branch_and_bound_optimum(
            loads, gamma, failures=failures, budget=budget)
        row = GapRow(distribution=dist.name, seed=run_seed,
                     tenants=n_tenants, failures=failures,
                     lower_bound=result.lower_bound,
                     upper_bound=result.upper_bound,
                     certified=result.certified,
                     nodes=result.nodes)
        for name in algorithms:
            algo = make_algorithm(name, gamma)
            if point_obs is not None:
                algo.attach_obs(point_obs)
            algo.consolidate(sequence)
            row.servers[name] = algo.placement.num_servers
        return row

    report.rows.extend(pmap(measure, instances, jobs=jobs, obs=obs))
    return report
