"""Unit tests for worst-overload failure planning."""

import itertools

import pytest

from repro.cluster.failures import (FailurePlan, project_client_counts,
                                    worst_overload_failures)
from repro.errors import ConfigurationError


HOMES = {
    0: [0, 1],   # 10 clients
    1: [0, 2],   # 20 clients
    2: [1, 2],   # 30 clients
    3: [3, 4],   # 40 clients
}
CLIENTS = {0: 10, 1: 20, 2: 30, 3: 40}


class TestProjection:
    def test_baseline_split(self):
        counts = project_client_counts(HOMES, CLIENTS, ())
        assert counts[0] == pytest.approx(15.0)   # 5 + 10
        assert counts[1] == pytest.approx(20.0)   # 5 + 15
        assert counts[2] == pytest.approx(25.0)   # 10 + 15
        assert counts[3] == pytest.approx(20.0)

    def test_single_failure_redirects(self):
        counts = project_client_counts(HOMES, CLIENTS, (0,))
        # tenants 0 and 1 now fully on servers 1 and 2 respectively
        assert counts[1] == pytest.approx(10 + 15)
        assert counts[2] == pytest.approx(20 + 15)

    def test_dead_tenants_contribute_nothing(self):
        counts = project_client_counts(HOMES, CLIENTS, (3, 4))
        assert 3 not in counts and 4 not in counts
        # tenant 3 is gone entirely
        total = sum(counts.values())
        assert total == pytest.approx(10 + 20 + 30)


class TestWorstSelection:
    def test_zero_failures(self):
        plan = worst_overload_failures(HOMES, CLIENTS, 0)
        assert plan.failed == ()
        assert plan.projected_max_clients == pytest.approx(25.0)

    def test_single_failure_exhaustive(self):
        plan = worst_overload_failures(HOMES, CLIENTS, 1)
        # Check optimality against manual enumeration.
        best = 0.0
        for failed in [(s,) for s in range(5)]:
            counts = project_client_counts(HOMES, CLIENTS, failed)
            for fid in failed:
                counts.pop(fid, None)
            best = max(best, max(counts.values()))
        assert plan.projected_max_clients == pytest.approx(best)

    def test_two_failures_exhaustive_optimal(self):
        plan = worst_overload_failures(HOMES, CLIENTS, 2)
        best = 0.0
        for failed in itertools.combinations(range(5), 2):
            counts = project_client_counts(HOMES, CLIENTS, failed)
            for fid in failed:
                counts.pop(fid, None)
            if counts:
                best = max(best, max(counts.values()))
        assert plan.projected_max_clients == pytest.approx(best)

    def test_greedy_beyond_limit(self):
        plan = worst_overload_failures(HOMES, CLIENTS, 3,
                                       exhaustive_limit=2)
        assert len(plan.failed) == 3
        assert plan.projected_max_clients > 0

    def test_greedy_first_step_matches_exhaustive_single(self):
        exhaustive = worst_overload_failures(HOMES, CLIENTS, 1)
        greedy = worst_overload_failures(HOMES, CLIENTS, 1,
                                         exhaustive_limit=0)
        assert greedy.projected_max_clients == \
            pytest.approx(exhaustive.projected_max_clients)

    def test_restricted_candidates(self):
        plan = worst_overload_failures(HOMES, CLIENTS, 1, servers=[3])
        assert plan.failed == (3,)

    def test_invalid_f(self):
        with pytest.raises(ConfigurationError):
            worst_overload_failures(HOMES, CLIENTS, -1)
        with pytest.raises(ConfigurationError):
            worst_overload_failures(HOMES, CLIENTS, 10)

    def test_hottest_server_reported(self):
        plan = worst_overload_failures(HOMES, CLIENTS, 1)
        assert plan.hottest_server not in plan.failed
