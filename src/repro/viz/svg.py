"""Minimal SVG document builder.

No plotting dependency ships in this environment, so chart rendering is
built on a tiny, dependency-free SVG element tree: enough primitives
(rect, line, polyline, circle, text, group, title) for the bar and line
charts the experiment figures need, with correct XML escaping and
deterministic attribute ordering (stable output diffs).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError

Number = Union[int, float]
PathLike = Union[str, Path]


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _fmt(value: Number) -> str:
    """Compact numeric formatting: drop trailing zeros."""
    if isinstance(value, int):
        return str(value)
    text = f"{value:.2f}".rstrip("0").rstrip(".")
    return text if text else "0"


class Element:
    """One SVG element with attributes, children, and optional text."""

    def __init__(self, tag: str, text: Optional[str] = None,
                 **attrs) -> None:
        self.tag = tag
        self.text = text
        self.attrs: Dict[str, str] = {}
        for key, value in attrs.items():
            self.set(key, value)
        self.children: List["Element"] = []

    def set(self, key: str, value) -> "Element":
        # Pythonic snake_case / reserved-word-safe names to SVG names.
        name = key.rstrip("_").replace("_", "-")
        if isinstance(value, (int, float)):
            self.attrs[name] = _fmt(value)
        else:
            self.attrs[name] = str(value)
        return self

    def add(self, child: "Element") -> "Element":
        """Append a child; returns the *child* for chaining."""
        self.children.append(child)
        return child

    def title(self, text: str) -> "Element":
        """Attach a native SVG tooltip."""
        self.children.insert(0, Element("title", text=text))
        return self

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        attrs = "".join(f' {k}="{_escape(v)}"'
                        for k, v in self.attrs.items())
        if not self.children and self.text is None:
            return f"{pad}<{self.tag}{attrs}/>"
        parts = [f"{pad}<{self.tag}{attrs}>"]
        if self.text is not None:
            if self.children:
                parts.append("  " * (indent + 1) + _escape(self.text))
            else:
                return (f"{pad}<{self.tag}{attrs}>{_escape(self.text)}"
                        f"</{self.tag}>")
        for child in self.children:
            parts.append(child.render(indent + 1))
        parts.append(f"{pad}</{self.tag}>")
        return "\n".join(parts)


class Document(Element):
    """Root ``<svg>`` element with width/height and a surface fill."""

    def __init__(self, width: Number, height: Number,
                 background: Optional[str] = None) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError(
                f"SVG dimensions must be positive, got {width}x{height}")
        super().__init__("svg", xmlns="http://www.w3.org/2000/svg",
                         width=width, height=height,
                         viewBox=f"0 0 {_fmt(width)} {_fmt(height)}")
        self.width = float(width)
        self.height = float(height)
        if background is not None:
            self.add(Element("rect", x=0, y=0, width=width, height=height,
                             fill=background))

    def to_string(self) -> str:
        header = '<?xml version="1.0" encoding="UTF-8"?>'
        return header + "\n" + self.render() + "\n"

    def save(self, path: PathLike) -> Path:
        out = Path(path)
        out.write_text(self.to_string())
        return out


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------
def rect(x: Number, y: Number, width: Number, height: Number,
         fill: str, rx: Number = 0, **attrs) -> Element:
    el = Element("rect", x=x, y=y, width=width, height=height, fill=fill,
                 **attrs)
    if rx:
        el.set("rx", rx)
    return el


def line(x1: Number, y1: Number, x2: Number, y2: Number, stroke: str,
         width: Number = 1, dash: Optional[str] = None,
         **attrs) -> Element:
    el = Element("line", x1=x1, y1=y1, x2=x2, y2=y2, stroke=stroke,
                 stroke_width=width, **attrs)
    if dash:
        el.set("stroke_dasharray", dash)
    return el


def polyline(points: Sequence[Tuple[Number, Number]], stroke: str,
             width: Number = 2, **attrs) -> Element:
    if len(points) < 2:
        raise ConfigurationError("polyline needs at least two points")
    joined = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
    return Element("polyline", points=joined, fill="none", stroke=stroke,
                   stroke_width=width, stroke_linejoin="round",
                   stroke_linecap="round", **attrs)


def circle(cx: Number, cy: Number, r: Number, fill: str,
           **attrs) -> Element:
    return Element("circle", cx=cx, cy=cy, r=r, fill=fill, **attrs)


def text(x: Number, y: Number, content: str, size: Number = 12,
         fill: str = "#0b0b0b", anchor: str = "start",
         weight: str = "normal", **attrs) -> Element:
    return Element(
        "text", text=content, x=x, y=y, font_size=size, fill=fill,
        text_anchor=anchor, font_weight=weight,
        font_family="system-ui, -apple-system, 'Segoe UI', sans-serif",
        **attrs)


def group(**attrs) -> Element:
    return Element("g", **attrs)
