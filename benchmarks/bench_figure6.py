"""Benchmark E2 — Figure 6: % server savings of CUBEFIT over RFI.

Regenerates the paper's Figure 6: the relative difference
``(RFI - CUBEFIT) / CUBEFIT * 100%`` in mean servers used, over
independent runs, for uniform load distributions with max load
0.2 .. 1.0 and zipfian client distributions (exponents 2, 3, 4)
normalized by C = 52.  Whiskers are 95% confidence intervals.

Expected shape (paper, Section V-C): CUBEFIT saves servers on the
small-tenant populations — "the gains amount to about 30% fewer
machines" — and the advantage grows as tenants get smaller ("When
smaller tenants increase ... CUBEFIT [performs] increasingly better
over RFI").
"""

import pytest

from repro.sim.figures import figure6


@pytest.fixture(scope="module")
def figure6_result(scale):
    return figure6(scale=scale, base_seed=0)


def test_figure6_benchmark(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure6(scale=scale, base_seed=0), rounds=1, iterations=1)
    print()
    print(result)


class TestFigure6Shape:
    def test_about_30_percent_on_smallest_uniform(self, figure6_result):
        row = next(r for r in figure6_result.rows()
                   if r.distribution == "uniform(0,0.2]")
        assert 20.0 <= row.savings_percent <= 45.0

    def test_savings_grow_as_tenants_shrink(self, figure6_result):
        """Across the uniform family, smaller max load => larger savings."""
        uniform = [r for r in figure6_result.rows()
                   if r.distribution.startswith("uniform")]
        savings = [r.savings_percent for r in uniform]  # 0.2 .. 1.0
        assert savings[0] > savings[-1]
        # overall monotone trend (allow small local noise)
        assert savings[0] >= savings[2] >= savings[4] - 1.0

    def test_zipfian_populations_save_servers(self, figure6_result):
        for row in figure6_result.rows():
            if row.distribution.startswith("zipf"):
                assert row.savings_percent > 5.0

    def test_never_pathologically_worse(self, figure6_result):
        for row in figure6_result.rows():
            assert row.savings_percent > -5.0

    def test_confidence_intervals_reported(self, figure6_result):
        for row in figure6_result.rows():
            assert row.ci.n == figure6_result.runs
            assert row.ci.half_width >= 0.0
