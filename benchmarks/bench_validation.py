"""Benchmark E5 — robustness audit throughput and the cluster engine.

The audit (Theorem 1's condition over every server) runs after each
experiment; this bench keeps it honest on large packings, and also
measures the discrete-event engine's raw event throughput, which gates
Figure 5's wall time.
"""

import pytest

from repro.core.cubefit import CubeFit
from repro.core.validation import audit
from repro.cluster.engine import Simulator
from repro.cluster.machine import Machine
from repro.workloads.distributions import UniformLoad
from repro.workloads.sequences import generate_sequence


@pytest.fixture(scope="module")
def big_placement():
    seq = generate_sequence(UniformLoad(0.5), 10_000, seed=0)
    algo = CubeFit(gamma=2, num_classes=10)
    algo.consolidate(seq)
    return algo.placement


def test_audit_speed(benchmark, big_placement):
    report = benchmark(audit, big_placement)
    assert report.ok
    benchmark.extra_info["servers"] = big_placement.num_servers


def test_engine_event_throughput(benchmark):
    """Closed loop of 64 jobs cycling through a PS machine."""

    def run():
        sim = Simulator()
        machine = Machine(sim, 0, cores=12)

        def resubmit():
            if sim.now < 100.0:
                machine.submit(0.5, resubmit)

        for _ in range(64):
            machine.submit(0.5, resubmit)
        sim.run_until(100.0)
        return sim.events_dispatched

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_second"] = round(
        events / max(benchmark.stats["mean"], 1e-9))
