"""Kill-and-resume differential tests.

The acceptance bar for the durable store: killing the controller after
any prefix of operations and recovering from checkpoint + WAL tail must
yield a state identical to the uninterrupted run at the same point
(snapshot, per-replica loads, server count) and pass the full gamma-1
robustness audit — then the run continues and still finishes clean.
"""

import pytest

from repro.core.cubefit import CubeFit
from repro.algorithms.naive import RobustBestFit
from repro.algorithms.rfi import RFI
from repro.obs import MetricsRegistry
from repro.sim.churn import ChurnConfig, run_churn_with_crash
from repro.sim.soak import SoakConfig, run_soak_with_crash
from repro.store import DurableStore, diff_placements, recover
from repro.workloads.distributions import UniformLoad

SOAK = SoakConfig(operations=90, seed=11)


class TestSoakCrash:
    @pytest.mark.parametrize("gamma", [1, 2, 3])
    def test_bestfit_crash_midway(self, tmp_path, gamma):
        report = run_soak_with_crash(
            lambda: RobustBestFit(gamma=gamma),
            tmp_path / "st", config=SOAK, crash_after=45,
            checkpoint_every=20)
        assert report.diffs == []
        assert report.audit_ok
        assert report.ok and report.result.ok

    @pytest.mark.parametrize("crash_after", [1, 13, 44, 89])
    def test_any_crash_point_recovers_identically(self, tmp_path,
                                                  crash_after):
        report = run_soak_with_crash(
            lambda: RobustBestFit(gamma=2),
            tmp_path / "st", config=SOAK, crash_after=crash_after,
            checkpoint_every=20)
        assert report.ok and report.result.ok
        assert report.crash_after == crash_after

    def test_cubefit_crash_resumes_on_bestfit(self, tmp_path):
        report = run_soak_with_crash(
            lambda: CubeFit(gamma=3),
            tmp_path / "st", config=SOAK, crash_after=50,
            checkpoint_every=15)
        assert report.ok and report.result.ok

    def test_rfi_crash_resumes_on_rfi(self, tmp_path):
        report = run_soak_with_crash(
            lambda: RFI(gamma=2),
            tmp_path / "st", config=SOAK, crash_after=40,
            checkpoint_every=25,
            resume_factory=lambda: RFI(gamma=2))
        assert report.ok and report.result.ok

    def test_crash_without_any_checkpoint(self, tmp_path):
        # Pure WAL replay from an empty initial state.
        report = run_soak_with_crash(
            lambda: RobustBestFit(gamma=2),
            tmp_path / "st", config=SOAK, crash_after=30,
            checkpoint_every=None)
        assert report.ok and report.result.ok
        assert report.checkpoint_seq == 0
        assert report.records_replayed > 0

    def test_tail_replay_is_bounded_by_checkpoint(self, tmp_path):
        obs = MetricsRegistry()
        report = run_soak_with_crash(
            lambda: RobustBestFit(gamma=2),
            tmp_path / "st", config=SOAK, crash_after=45,
            checkpoint_every=20, obs=obs)
        assert report.ok
        # Crash at op 45, checkpoints every 20 ops: the tail covers at
        # most 20 soak operations (each <= 2 WAL records + opens).
        assert 0 < report.records_replayed < 90
        snap = obs.snapshot()
        assert snap["store.recover.records_replayed"]["value"] == \
            report.records_replayed

    def test_compaction_after_crash_changes_nothing(self, tmp_path):
        report = run_soak_with_crash(
            lambda: RobustBestFit(gamma=2),
            tmp_path / "st", config=SOAK, crash_after=45,
            checkpoint_every=20, segment_records=16)
        assert report.ok
        before = recover(tmp_path / "st")
        store = DurableStore(tmp_path / "st")
        store.checkpoint(before.placement)
        assert store.compact()
        store.close()
        after = recover(tmp_path / "st")
        assert diff_placements(before.placement, after.placement) == []


class TestChurnCrash:
    @pytest.mark.parametrize("gamma", [1, 2, 3])
    def test_churn_crash_midway(self, tmp_path, gamma):
        config = ChurnConfig(arrival_rate=5.0, mean_lifetime=8.0,
                             horizon=20.0, sample_every=5.0, seed=3)
        report = run_churn_with_crash(
            lambda: RobustBestFit(gamma=gamma), UniformLoad(0.5),
            tmp_path / "st", config=config, crash_after_events=30,
            checkpoint_every=12)
        assert report.diffs == []
        assert report.audit_ok
        assert report.ok
        assert report.result.final_robust
        assert report.result.arrivals > 0

    def test_churn_crash_near_end_of_stream(self, tmp_path):
        config = ChurnConfig(arrival_rate=4.0, mean_lifetime=6.0,
                             horizon=10.0, sample_every=5.0, seed=5)
        report = run_churn_with_crash(
            lambda: RobustBestFit(gamma=2), UniformLoad(0.4),
            tmp_path / "st", config=config,
            crash_after_events=10**6,  # past the stream: crash at end
            checkpoint_every=10)
        assert report.ok
        assert report.result.final_robust
