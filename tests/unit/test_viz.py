"""Unit tests for the SVG rendering layer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.stats import ConfidenceInterval
from repro.sim.figures import (Figure5Result, Figure5Row, Figure6Result,
                               Figure6Row, Theorem2Result, Theorem2Row)
from repro.viz import (BarSeries, Document, LineSeries, Threshold,
                       grouped_bar_chart, line_chart, render_all,
                       render_figure5, render_figure6, render_theorem2,
                       series_color)
from repro.viz import palette
from repro.errors import ConfigurationError

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(doc: Document) -> ET.Element:
    text = doc.to_string()
    return ET.fromstring(text.split("\n", 1)[1])


def tags(root: ET.Element, tag: str):
    return root.findall(f".//{SVG_NS}{tag}")


class TestSvgPrimitives:
    def test_document_escapes_text(self):
        from repro.viz.svg import text
        doc = Document(100, 100)
        doc.add(text(0, 0, 'a < b & "c"'))
        root = parse(doc)
        assert tags(root, "text")[0].text == 'a < b & "c"'

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            Document(0, 100)

    def test_title_tooltips(self):
        from repro.viz.svg import rect
        doc = Document(100, 100)
        doc.add(rect(0, 0, 10, 10, fill="#000").title("hello"))
        root = parse(doc)
        assert tags(root, "title")[0].text == "hello"

    def test_save(self, tmp_path):
        doc = Document(10, 10)
        path = doc.save(tmp_path / "x.svg")
        assert path.read_text().startswith("<?xml")


class TestPalette:
    def test_fixed_order_slots(self):
        assert series_color(0) == palette.SERIES[0]
        assert series_color(1) == palette.SERIES[1]

    def test_no_generated_hues(self):
        with pytest.raises(ConfigurationError):
            series_color(len(palette.SERIES))

    def test_status_color_not_a_series_slot(self):
        assert palette.STATUS_SERIOUS not in palette.SERIES


class TestBarChart:
    def chart(self, n_series=2):
        series = [BarSeries(name=f"s{i}", values=[1.0 + i, 2.0 + i],
                            errors=[0.1, 0.2])
                  for i in range(n_series)]
        return grouped_bar_chart("demo", ["g1", "g2"], series,
                                 y_label="y",
                                 threshold=Threshold(2.5, "SLA"))

    def test_bar_count(self):
        root = parse(self.chart())
        # Bars live inside the marks <g>; legend swatches do not.
        marks = root.findall(f"{SVG_NS}g")[0]
        bars = [r for r in marks.findall(f"{SVG_NS}rect")
                if r.get("fill") in palette.SERIES]
        assert len(bars) == 4  # 2 series x 2 groups

    def test_series_colors_fixed_order(self):
        root = parse(self.chart())
        fills = [r.get("fill") for r in tags(root, "rect")
                 if r.get("fill") in palette.SERIES]
        assert set(fills) == {palette.SERIES[0], palette.SERIES[1]}

    def test_threshold_line_uses_status_color(self):
        root = parse(self.chart())
        status_lines = [l for l in tags(root, "line")
                        if l.get("stroke") == palette.STATUS_SERIOUS]
        assert len(status_lines) == 1

    def test_legend_present_for_two_series(self):
        root = parse(self.chart(n_series=2))
        labels = [t.text for t in tags(root, "text")]
        assert "s0" in labels and "s1" in labels

    def test_no_legend_for_single_series(self):
        series = [BarSeries(name="only", values=[1.0])]
        doc = grouped_bar_chart("demo", ["g"], series, y_label="y")
        root = parse(doc)
        swatches = [r for r in tags(root, "rect")
                    if r.get("width") == "12"]
        assert not swatches

    def test_text_uses_ink_tokens_not_series_colors(self):
        root = parse(self.chart())
        for t in tags(root, "text"):
            assert t.get("fill") not in palette.SERIES

    def test_thin_marks(self):
        """Bars are capped in width (no slab-sized marks)."""
        series = [BarSeries(name="s", values=[5.0])]
        doc = grouped_bar_chart("demo", ["wide group"], series,
                                y_label="y", width=900)
        root = parse(doc)
        bars = [r for r in tags(root, "rect")
                if r.get("fill") in palette.SERIES]
        assert float(bars[0].get("width")) <= 56.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            grouped_bar_chart("t", ["g"], [], y_label="y")
        with pytest.raises(ConfigurationError):
            grouped_bar_chart("t", ["g"], [BarSeries("s", [1.0, 2.0])],
                              y_label="y")


class TestLineChart:
    def chart(self):
        series = [LineSeries("a", [(1, 1.0), (2, 2.0), (3, 1.5)]),
                  LineSeries("b", [(1, 2.0), (2, 1.0), (3, 2.5)])]
        return line_chart("demo", series, x_label="x", y_label="y")

    def test_polylines_and_markers(self):
        root = parse(self.chart())
        assert len(tags(root, "polyline")) == 2
        assert len(tags(root, "circle")) == 6

    def test_markers_have_surface_ring(self):
        root = parse(self.chart())
        for dot in tags(root, "circle"):
            assert dot.get("stroke") == palette.SURFACE
            assert float(dot.get("r")) >= 4

    def test_direct_end_labels(self):
        root = parse(self.chart())
        labels = [t.text for t in tags(root, "text")]
        assert "a" in labels and "b" in labels

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart("t", [], x_label="x", y_label="y")


class TestFigureRenderers:
    def figure5_result(self):
        rows = []
        for dist in ("uniform", "zipfian"):
            for conf in ("CubeFit 2 replicas", "CubeFit 3 replicas",
                         "RFI 2 replicas"):
                for f in (1, 2):
                    rows.append(Figure5Row(
                        distribution=dist, configuration=conf,
                        failures=f, p99=4.0 + f * 0.5,
                        meets_sla=f == 1, dropped=0, tenants=50))
        return Figure5Result(sla_seconds=5.0, rows_=rows)

    def test_render_figure5(self):
        doc = render_figure5(self.figure5_result())
        root = parse(doc)
        marks = root.findall(f"{SVG_NS}g")[0]
        bars = [r for r in marks.findall(f"{SVG_NS}rect")
                if r.get("fill") in palette.SERIES]
        assert len(bars) == 12  # 3 configs x 4 groups
        status = [l for l in tags(root, "line")
                  if l.get("stroke") == palette.STATUS_SERIOUS]
        assert status

    def test_render_figure6(self):
        result = Figure6Result(tenants=100, runs=3, rows_=[
            Figure6Row("uniform(0,0.2]", 30.0,
                       ConfidenceInterval(30.0, 1.0, 3), 700, 540)])
        root = parse(render_figure6(result))
        assert tags(root, "rect")

    def test_render_theorem2(self):
        result = Theorem2Result(rows_=[
            Theorem2Row(2, 21, 1.67, 4), Theorem2Row(2, 31, 1.63, 5),
            Theorem2Row(3, 21, 2.5, 4), Theorem2Row(3, 31, 2.0, 5)])
        root = parse(render_theorem2(result))
        assert len(tags(root, "polyline")) == 2

    def test_render_all(self, tmp_path):
        paths = render_all(figure5_result=self.figure5_result(),
                           directory=tmp_path)
        assert [p.name for p in paths] == ["figure5.svg"]
        assert paths[0].exists()

    def test_empty_results_rejected(self):
        with pytest.raises(ConfigurationError):
            render_figure5(Figure5Result(sla_seconds=5.0))


class TestNegativeBars:
    def test_negative_values_render_below_baseline(self):
        series = [BarSeries(name="savings", values=[30.0, -7.0])]
        doc = grouped_bar_chart("neg", ["big", "small"], series,
                                y_label="savings (%)")
        root = parse(doc)
        marks = root.findall(f"{SVG_NS}g")[0]
        bars = [r for r in marks.findall(f"{SVG_NS}rect")
                if r.get("fill") in palette.SERIES]
        assert len(bars) == 2
        tops = [float(b.get("y")) for b in bars]
        heights = [float(b.get("height")) for b in bars]
        # The negative bar starts at the zero baseline, which is the
        # positive bar's bottom edge.
        baseline = tops[0] + heights[0]
        assert tops[1] == pytest.approx(baseline, abs=0.01)
        assert heights[1] > 1.0

    def test_negative_label_below_bar(self):
        series = [BarSeries(name="s", values=[-5.0])]
        doc = grouped_bar_chart("neg", ["g"], series, y_label="y")
        root = parse(doc)
        labels = [t for t in tags(root, "text") if t.text == "-5"]
        assert labels
