"""Synthetic TPC-H-like analytics workload.

The paper drives its cluster with the 22 TPC-H queries scaled to 95%
reads / 5% updates over ~100 MB per tenant.  We cannot ship TPC-H or
PostgreSQL, so this module provides the closest synthetic equivalent the
experiments need: 22 query templates with heterogeneous service demands
(heavy scans vs. point-ish lookups), lognormal per-execution variability,
and the same read/update mix.  Clients iterate through the query set in
order, exactly like the paper's client threads.

Service demands are expressed in *core-seconds* on the reference machine
(one demand unit = one second of one core).  The absolute values are
calibrated so that ~52 concurrent clients saturate a 12-core server at a
5-second 99th-percentile latency — the paper's empirically derived
operating point — but nothing in the placement algorithms depends on the
absolute scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ConfigurationError

#: Fraction of update queries in the scaled workload (Section V-A).
UPDATE_FRACTION = 0.05

#: Lognormal sigma of per-execution service-demand noise.
DEMAND_SIGMA = 0.35


@dataclass(frozen=True)
class QueryTemplate:
    """One query class: a name, a mean service demand, and whether it is
    an update (updates execute against *all* replicas for consistency)."""

    name: str
    mean_demand: float
    is_update: bool = False

    def __post_init__(self) -> None:
        if self.mean_demand <= 0:
            raise ConfigurationError(
                f"{self.name}: mean_demand must be positive, "
                f"got {self.mean_demand}")


#: Relative weights of the 22 TPC-H queries (heavier = longer running on
#: a ~100 MB scale).  The ordering of heavy hitters (Q1, Q9, Q18, Q21)
#: and light queries (Q2, Q6, Q14) follows commonly reported TPC-H
#: execution profiles.
_TPCH_RELATIVE = {
    "Q1": 2.6, "Q2": 0.4, "Q3": 1.1, "Q4": 0.8, "Q5": 1.3, "Q6": 0.5,
    "Q7": 1.2, "Q8": 1.0, "Q9": 2.2, "Q10": 1.1, "Q11": 0.5, "Q12": 0.8,
    "Q13": 1.5, "Q14": 0.6, "Q15": 0.7, "Q16": 0.9, "Q17": 1.4,
    "Q18": 2.4, "Q19": 0.9, "Q20": 1.2, "Q21": 2.0, "Q22": 0.6,
}

#: Mean demand of the update (refresh-like) statement.
_UPDATE_RELATIVE = 0.3

#: Scale factor turning relative weights into core-seconds.  With think
#: time 0.3 s and the per-tenant maintenance overhead this makes ~52
#: closed-loop clients the 5 s p99 operating point of a 12-core machine
#: (verified end-to-end by repro.cluster.calibration: the fitted
#: boundary gives delta ≈ 0.019, beta ≈ 0.009, C ≈ 52-53).
DEMAND_SCALE = 0.42


def read_templates(scale: float = DEMAND_SCALE) -> List[QueryTemplate]:
    """The 22 read-only templates."""
    mean_rel = sum(_TPCH_RELATIVE.values()) / len(_TPCH_RELATIVE)
    return [QueryTemplate(name=name, mean_demand=scale * rel / mean_rel)
            for name, rel in _TPCH_RELATIVE.items()]


def update_template(scale: float = DEMAND_SCALE) -> QueryTemplate:
    """The update statement (executed against every replica)."""
    mean_rel = sum(_TPCH_RELATIVE.values()) / len(_TPCH_RELATIVE)
    return QueryTemplate(name="RF", is_update=True,
                         mean_demand=scale * _UPDATE_RELATIVE / mean_rel)


class QueryStream:
    """Per-client query issue order: iterate the 22 reads in sequence,
    replacing a slot with an update with probability
    :data:`UPDATE_FRACTION` (the 95/5 mix)."""

    def __init__(self, rng: np.random.Generator,
                 scale: float = DEMAND_SCALE,
                 update_fraction: float = UPDATE_FRACTION,
                 demand_sigma: float = DEMAND_SIGMA) -> None:
        if not (0.0 <= update_fraction < 1.0):
            raise ConfigurationError(
                f"update_fraction must be in [0, 1), got {update_fraction}")
        if demand_sigma < 0:
            raise ConfigurationError(
                f"demand_sigma must be non-negative, got {demand_sigma}")
        self._rng = rng
        self._reads = read_templates(scale)
        self._update = update_template(scale)
        self._update_fraction = update_fraction
        self._sigma = demand_sigma
        # Start each client at a random point of the cycle so co-located
        # clients do not issue the same heavy query in lockstep.
        self._cursor = int(rng.integers(0, len(self._reads)))
        # lognormal(mu, sigma) has mean exp(mu + sigma^2/2); correct mu so
        # the configured mean demand is preserved.
        self._mu_offset = -0.5 * demand_sigma * demand_sigma

    def next_query(self) -> "QueryExecution":
        """Template plus a concrete sampled service demand."""
        if self._rng.random() < self._update_fraction:
            template = self._update
        else:
            template = self._reads[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._reads)
        if self._sigma > 0:
            noise = math.exp(self._mu_offset
                             + self._sigma * self._rng.standard_normal())
        else:
            noise = 1.0
        return QueryExecution(template=template,
                              demand=template.mean_demand * noise)


@dataclass(frozen=True)
class QueryExecution:
    """A single query instance with its sampled demand (core-seconds)."""

    template: QueryTemplate
    demand: float

    @property
    def is_update(self) -> bool:
        return self.template.is_update


def mean_read_demand(scale: float = DEMAND_SCALE) -> float:
    """Average service demand of the read mix (for analytic estimates)."""
    reads = read_templates(scale)
    return sum(t.mean_demand for t in reads) / len(reads)
