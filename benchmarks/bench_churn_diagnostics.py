"""Benchmarks: churn throughput and packing diagnostics.

* Churn: a birth-death tenant workload through CubeFit (with slot
  recycling) and RFI — measures placement throughput under dynamic
  tenancy and reports steady-state fleet sizes.
* Diagnostics: the `explain` decomposition quantifies the paper's
  mechanism claim — "CUBEFIT's superior performance is due to having an
  upper bound on the load that can be shared between servers" — as a
  smaller reserve fraction than RFI's.
"""

import pytest

from repro.algorithms.rfi import RFI
from repro.analysis.diagnostics import explain
from repro.core.cubefit import CubeFit
from repro.sim.churn import ChurnConfig, run_churn
from repro.workloads.distributions import UniformLoad
from repro.workloads.sequences import generate_sequence

CHURN = ChurnConfig(arrival_rate=10.0, mean_lifetime=40.0,
                    horizon=200.0, sample_every=25.0, seed=0)


@pytest.mark.parametrize("name,factory", [
    ("cubefit", lambda: CubeFit(gamma=2, num_classes=10)),
    ("rfi", lambda: RFI(gamma=2)),
])
def test_churn_throughput(benchmark, name, factory):
    result = benchmark.pedantic(
        lambda: run_churn(factory, UniformLoad(0.4), CHURN),
        rounds=1, iterations=1)
    assert result.final_robust
    benchmark.extra_info["steady_servers"] = round(
        result.mean_steady_servers, 1)
    benchmark.extra_info["arrivals"] = result.arrivals
    benchmark.extra_info["departures"] = result.departures


def test_explain_decomposition(benchmark):
    seq = generate_sequence(UniformLoad(0.5), 3_000, seed=0)
    cube = CubeFit(gamma=2, num_classes=10)
    cube.consolidate(seq)
    rfi = RFI(gamma=2)
    rfi.consolidate(seq)

    def run():
        return explain(cube.placement), explain(rfi.placement,
                                                failures=1)

    cube_report, rfi_report = benchmark.pedantic(run, rounds=3,
                                                 iterations=1)
    benchmark.extra_info["cubefit_reserve_pct"] = round(
        cube_report.fraction("reserve") * 100, 1)
    benchmark.extra_info["rfi_reserve_pct"] = round(
        rfi_report.fraction("reserve") * 100, 1)
    # The paper's mechanism: CubeFit caps inter-server shared load.
    assert cube_report.fraction("reserve") < \
        rfi_report.fraction("reserve")


@pytest.mark.parametrize("name,factory", [
    ("cubefit", lambda: CubeFit(gamma=2, num_classes=10)),
    ("rfi", lambda: RFI(gamma=2)),
])
def test_soak_throughput(benchmark, name, factory):
    """Mixed-operation soak (place/remove/resize/fail+recover/repack)
    with a full robustness audit after every operation."""
    from repro.sim.soak import SoakConfig, run_soak

    config = SoakConfig(operations=600, seed=0)
    result = benchmark.pedantic(lambda: run_soak(factory, config),
                                rounds=1, iterations=1)
    assert result.ok, str(result)
    benchmark.extra_info["ops"] = dict(result.counts)
    benchmark.extra_info["ops_per_second"] = round(
        result.operations / max(benchmark.stats["mean"], 1e-9))
