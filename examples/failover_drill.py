#!/usr/bin/env python
"""Failover drill: fail servers in a simulated cluster, watch the SLA.

Run with::

    python examples/failover_drill.py

Fills a simulated analytics cluster with tenants using CUBEFIT (gamma=2
and gamma=3) and RFI, then injects the paper's "worst overload case"
failures and measures 99th-percentile latencies against the 5-second
SLA — a miniature, annotated version of the paper's Figure 5 pipeline.
"""

from repro.cluster import (ClusterConfig, ClusterExperiment,
                           worst_overload_failures)
from repro.core.cubefit import CubeFit
from repro.algorithms.rfi import RFI
from repro.sim.figures import fill_cluster
from repro.workloads import DiscreteUniformClients

SERVERS = 12
CONFIG = ClusterConfig(warmup=20.0, measure=40.0, seed=0)


def drill(name, factory, failure_counts=(0, 1, 2)) -> None:
    clients = DiscreteUniformClients(1, 15)
    filled = fill_cluster(factory, clients, max_servers=SERVERS, seed=0)
    print(f"\n--- {name}: {filled.num_tenants} tenants, "
          f"{filled.total_clients} clients on <= {SERVERS} servers ---")
    experiment = ClusterExperiment(filled.tenant_homes,
                                   filled.tenant_clients, CONFIG)
    for f in failure_counts:
        plan = worst_overload_failures(filled.tenant_homes,
                                       filled.tenant_clients, f)
        result = experiment.run(fail_servers=plan.failed)
        verdict = "meets SLA" if result.meets_sla else "VIOLATES SLA"
        drops = f", {result.dropped} queries had no surviving replica" \
            if result.dropped else ""
        print(f"  {f} failure(s) {list(plan.failed)!s:<10} "
              f"worst-server p99 = {result.p99:5.2f}s, "
              f"cluster p99 = {result.global_p99:5.2f}s -> "
              f"{verdict}{drops}")


def recovery_drill() -> None:
    """Re-replication: how fast repair shrinks the unavailability gap."""
    filled = fill_cluster(lambda: CubeFit(gamma=2, num_classes=5),
                          DiscreteUniformClients(1, 15),
                          max_servers=SERVERS, seed=0)
    plan = worst_overload_failures(filled.tenant_homes,
                                   filled.tenant_clients, 2)
    print(f"\n--- recovery drill: CubeFit gamma=2, failing "
          f"{list(plan.failed)} ---")
    for delay in (None, 5.0):
        config = ClusterConfig(warmup=CONFIG.warmup,
                               measure=CONFIG.measure, seed=0,
                               recovery_delay=delay)
        experiment = ClusterExperiment(filled.tenant_homes,
                                       filled.tenant_clients, config)
        result = experiment.run(fail_servers=plan.failed)
        label = "no recovery" if delay is None \
            else f"re-replicate after {delay:.0f}s"
        print(f"  {label:<24} p99 = {result.p99:5.2f}s, "
              f"{result.dropped} dropped queries, "
              f"{result.recovered_replicas} replicas re-homed")


def main() -> None:
    print(f"SLA: {CONFIG.sla_seconds:.0f}s at the 99th percentile "
          f"(= unit server load)")
    drill("CubeFit gamma=2, K=5 (tolerates 1 failure)",
          lambda: CubeFit(gamma=2, num_classes=5))
    drill("CubeFit gamma=3, K=5 (tolerates 2 failures)",
          lambda: CubeFit(gamma=3, num_classes=5))
    drill("RFI gamma=2, mu=0.85 (tolerates 1 failure)",
          lambda: RFI(gamma=2))
    recovery_drill()
    print("\nReading the drill: every policy should survive one "
          "failure;\nafter two simultaneous failures only the "
          "gamma=3 configuration\nhas reserved enough capacity "
          "(the paper's Figure 5). Re-replication bounds the damage\n"
          "when the tolerance is exceeded — at the cost of cold-cache "
          "warm-up\non the new replica homes.")


if __name__ == "__main__":
    main()
