"""Tests of Theorem 2's statement (I): CUBEFIT bins carry weight >= 1,
except O(1) of them."""

import pytest

from repro.analysis.weights import (count_underweight_bins,
                                    placement_bin_weights)
from repro.core.cubefit import CubeFit
from repro.workloads.distributions import UniformLoad
from repro.workloads.sequences import generate_sequence


def packing(n, gamma=2, num_classes=13, tiny_policy="alpha", seed=0):
    seq = generate_sequence(UniformLoad(1.0), n, seed=seed)
    algo = CubeFit(gamma=gamma, num_classes=num_classes,
                   tiny_policy=tiny_policy, first_stage=False)
    algo.consolidate(seq)
    return algo


class TestStatementI:
    def test_underweight_bins_bounded_by_constant(self):
        """The number of bins below weight 1 must not grow with n."""
        small = packing(400)
        large = packing(3200)
        under_small = count_underweight_bins(small.placement, 13, "alpha")
        under_large = count_underweight_bins(large.placement, 13, "alpha")
        # O(1): the bound is the in-flight groups, independent of n.
        assert under_large <= under_small + 30
        # And a loose absolute constant: gamma * sum_tau tau^(gamma-1)
        # in-flight bins plus active multi-replicas.
        constant = 2 * sum(range(1, 13)) + 20
        assert under_small <= constant
        assert under_large <= constant

    def test_full_class_bins_weigh_exactly_one(self):
        """A mature class-tau bin holds tau replicas of weight 1/tau."""
        # Class 2 for gamma=2: replicas in (1/4, 1/3]; tenants 0.6.
        seq = [0.6] * 8  # 8 tenants -> 2 generations of class-2 cubes
        from repro.core.tenant import make_tenants
        algo = CubeFit(gamma=2, num_classes=13, tiny_policy="alpha",
                       first_stage=False)
        algo.consolidate(make_tenants(seq))
        weights = placement_bin_weights(algo.placement, 13, "alpha")
        full_bins = [w for sid, w in weights.items()
                     if len(algo.placement.server(sid)) == 2]
        assert full_bins
        for weight in full_bins:
            assert weight == pytest.approx(1.0)

    def test_weight_lower_bound_consistency(self):
        """Total bin weight equals W(sigma); OPT >= W/r follows."""
        from repro.analysis.weights import total_weight
        algo = packing(300)
        weights = placement_bin_weights(algo.placement, 13, "alpha")
        seq_total = float(total_weight(
            [algo.placement.tenant_load(t)
             for t in algo.placement.tenant_ids], 2, 13, "alpha"))
        assert sum(weights.values()) == pytest.approx(seq_total, rel=1e-6)
