"""Unit tests for the whole-domain failure audit."""

import numpy as np
import pytest

from repro.core.cubefit import CubeFit, TAG_DOMAIN
from repro.core.placement import PlacementState
from repro.core.tenant import Tenant, make_tenants
from repro.core.validation import audit, domain_failure_audit


class TestDomainFailureAudit:
    def test_singleton_domains_match_single_failure_audit(self):
        """With every server its own domain, the audit reduces to the
        single-failure condition."""
        ps = PlacementState(gamma=2)
        for _ in range(4):
            ps.open_server()
        ps.place_tenant(Tenant(0, 0.8), [0, 1])
        ps.place_tenant(Tenant(1, 0.6), [2, 3])
        report = domain_failure_audit(ps, domain_of={})
        single = audit(ps, failures=1)
        assert report.ok == single.ok
        assert report.min_slack == pytest.approx(single.min_slack)

    def test_detects_correlated_overload(self):
        """Two servers in one domain whose joint failure overloads a
        survivor that each alone would not."""
        ps = PlacementState(gamma=2)
        for _ in range(3):
            ps.open_server()
        # Server 2 holds both tenants' primaries (0.26 each); their
        # secondaries sit on servers 0 and 1 — one per server, so the
        # single-failure condition holds (0.52 + 0.26 = 0.78) but the
        # joint failure of {0, 1} redirects both (0.52 + 0.52 = 1.04).
        ps.place_tenant(Tenant(0, 0.52), [2, 0])
        ps.place_tenant(Tenant(1, 0.52), [2, 1])
        assert audit(ps, failures=1).ok
        report = domain_failure_audit(ps, domain_of={0: 7, 1: 7})
        assert not report.ok
        worst = max(report.violations, key=lambda v: v.overload)
        assert worst.server_id == 2
        assert set(worst.failed_set) == {0, 1}
        assert worst.overload == pytest.approx(0.04)

    def test_cubefit_domains_bound_availability_not_latency(self):
        """With enforced domains, losing one whole domain leaves every
        tenant with gamma-1 live replicas (availability holds) even if
        the conservative load condition reports overload."""
        rng = np.random.default_rng(31)
        algo = CubeFit(gamma=3, num_classes=5,
                       enforce_fault_domains=True)
        algo.consolidate(make_tenants(list(rng.uniform(0.05, 0.9, 80))))
        placement = algo.placement
        domain_of = {s.server_id: s.tags.get(TAG_DOMAIN)
                     for s in placement if TAG_DOMAIN in s.tags}
        # Availability: failing all of domain 0 kills at most one
        # replica of any tenant.
        failed = {sid for sid, d in domain_of.items() if d == 0}
        for tid in placement.tenant_ids:
            homes = set(placement.tenant_servers(tid).values())
            assert len(homes - failed) >= 2
        # The latency-side audit may or may not pass — it must at least
        # run and report a finite slack.
        report = domain_failure_audit(placement, domain_of)
        assert report.min_slack != float("inf")

    def test_empty_placement(self):
        ps = PlacementState(gamma=2)
        assert domain_failure_audit(ps, {}).ok
