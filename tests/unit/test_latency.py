"""Unit tests for the latency recorder and SLA evaluation."""

import pytest

from repro.cluster.latency import LatencyRecorder
from repro.errors import ConfigurationError


def filled_recorder():
    rec = LatencyRecorder(window_start=10.0, window_end=20.0)
    # 100 in-window samples on server 0 (tenant 0): latencies 1..100 ms
    for i in range(100):
        rec.record(completed_at=10.0 + i * 0.05, tenant_id=0,
                   query_name="Q1", latency=(i + 1) / 100.0,
                   server_id=0)
    return rec


class TestWindowing:
    def test_out_of_window_samples_excluded(self):
        rec = LatencyRecorder(window_start=10.0, window_end=20.0)
        rec.record(5.0, 0, "Q1", 1.0, server_id=0)    # warm-up
        rec.record(25.0, 0, "Q1", 1.0, server_id=0)   # drain
        rec.record(15.0, 0, "Q1", 1.0, server_id=0)   # measured
        assert rec.count == 1
        assert rec.total_completed == 3

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            LatencyRecorder(window_start=5.0, window_end=1.0)


class TestPercentiles:
    def test_p99(self):
        rec = filled_recorder()
        assert rec.p99() == pytest.approx(0.9901)

    def test_mean(self):
        rec = filled_recorder()
        assert rec.mean_latency() == pytest.approx(0.505)

    def test_throughput(self):
        rec = filled_recorder()
        assert rec.throughput() == pytest.approx(10.0)

    def test_empty_window_raises(self):
        rec = LatencyRecorder()
        with pytest.raises(ConfigurationError):
            rec.p99()


class TestPerTenantAndServer:
    def test_per_tenant_p99(self):
        rec = LatencyRecorder()
        for lat in (1.0, 2.0):
            rec.record(0.0, 1, "Q1", lat, server_id=0)
        rec.record(0.0, 2, "Q1", 9.0, server_id=0)
        per = rec.per_tenant_p99()
        assert per[2] == pytest.approx(9.0)
        assert per[1] < 2.01

    def test_min_samples_filter(self):
        rec = LatencyRecorder()
        rec.record(0.0, 1, "Q1", 9.0, server_id=0)
        for _ in range(10):
            rec.record(0.0, 2, "Q1", 1.0, server_id=1)
        assert 1 not in rec.per_tenant_p99(min_samples=5)
        assert rec.worst_tenant_p99(min_samples=5) == pytest.approx(1.0)

    def test_worst_tenant_falls_back_when_all_filtered(self):
        rec = LatencyRecorder()
        rec.record(0.0, 1, "Q1", 9.0, server_id=0)
        assert rec.worst_tenant_p99(min_samples=100) == pytest.approx(9.0)

    def test_per_server_p99_and_violations(self):
        rec = LatencyRecorder()
        for _ in range(300):
            rec.record(0.0, 1, "Q1", 1.0, server_id=0)
        for _ in range(300):
            rec.record(0.0, 2, "Q1", 8.0, server_id=1)
        per = rec.per_server_p99(min_samples=200)
        assert per[0] == pytest.approx(1.0)
        assert per[1] == pytest.approx(8.0)
        assert rec.worst_server_p99() == pytest.approx(8.0)
        assert rec.violating_servers(sla_seconds=5.0) == [1]


class TestSla:
    def test_meets_sla_true(self):
        rec = LatencyRecorder()
        for _ in range(300):
            rec.record(0.0, 1, "Q1", 1.0, server_id=0)
        assert rec.meets_sla(sla_seconds=5.0)

    def test_violation_by_latency(self):
        rec = LatencyRecorder()
        for _ in range(300):
            rec.record(0.0, 1, "Q1", 6.0, server_id=0)
        assert not rec.meets_sla(sla_seconds=5.0)

    def test_dropped_queries_violate_sla(self):
        """An unavailable tenant violates its SLA regardless of latency."""
        rec = LatencyRecorder()
        for _ in range(300):
            rec.record(0.0, 1, "Q1", 0.1, server_id=0)
        rec.record_dropped()
        assert not rec.meets_sla(sla_seconds=5.0)
        assert rec.dropped == 1
