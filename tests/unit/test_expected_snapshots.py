"""Snapshot regression tests against committed expected outputs.

Theorem 2's sweep is pure exact arithmetic — any change to its values
is either a bug or an intentional analysis change that must be made
consciously (regenerate ``benchmarks/expected/theorem2.csv`` via the
snippet in this file's docstring)::

    python - <<'EOF'
    from repro.sim.figures import theorem2
    from repro.analysis.report import theorem2_table
    theorem2_table(theorem2()).to_csv("benchmarks/expected/theorem2.csv")
    EOF
"""

from pathlib import Path

from repro.analysis.report import theorem2_table
from repro.sim.figures import theorem2

EXPECTED = Path(__file__).resolve().parents[2] / "benchmarks" / \
    "expected" / "theorem2.csv"


def test_theorem2_sweep_matches_snapshot():
    result = theorem2()
    fresh = theorem2_table(result).to_csv()
    assert fresh == EXPECTED.read_text(), (
        "Theorem 2 sweep changed; if intentional, regenerate "
        "benchmarks/expected/theorem2.csv")
