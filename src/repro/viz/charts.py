"""Generic bar and line charts rendered to SVG.

Encodes the house rules: one y-axis only, thin marks with rounded data
ends, 2px surface gaps between adjacent bars, recessive grid, a legend
whenever there are two or more series plus selective direct labels,
status colors reserved for thresholds (the SLA line), and text always
in ink tokens.  Every mark carries a native ``<title>`` tooltip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from . import palette
from .svg import Document, circle, group, line, polyline, rect, text

#: Layout constants (pixels).
MARGIN_LEFT = 64
MARGIN_RIGHT = 24
MARGIN_TOP = 56
MARGIN_BOTTOM = 64
LEGEND_HEIGHT = 22
BAR_GAP = 2          # surface gap between adjacent bars
GROUP_GAP = 18
BAR_ROUND = 2        # rounded data ends


@dataclass
class BarSeries:
    """One bar per group; optional symmetric error whiskers (95% CI)."""

    name: str
    values: Sequence[float]
    errors: Optional[Sequence[float]] = None


@dataclass
class LineSeries:
    """A connected series of (x, y) points."""

    name: str
    points: Sequence[Tuple[float, float]]


@dataclass(frozen=True)
class Threshold:
    """A horizontal reference line (e.g. the 5 s SLA)."""

    value: float
    label: str
    color: str = palette.STATUS_SERIOUS


def _nice_ticks(upper: float, target: int = 5) -> List[float]:
    """0-based axis ticks on a 1/2/5 ladder."""
    if upper <= 0:
        return [0.0, 1.0]
    raw_step = upper / max(target - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 5, 10):
        step = multiple * magnitude
        if step >= raw_step:
            break
    ticks = [0.0]
    value = 0.0
    while value < upper - 1e-12:
        value += step
        ticks.append(round(value, 10))
    return ticks


def _fmt_value(value: float) -> str:
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _legend(doc: Document, names: Sequence[str], y: float) -> None:
    """Swatch + name per series, one row, ink-colored text."""
    x = MARGIN_LEFT
    for index, name in enumerate(names):
        doc.add(rect(x, y - 9, 12, 12, fill=palette.series_color(index),
                     rx=2))
        label = text(x + 17, y + 1, name, size=12,
                     fill=palette.TEXT_SECONDARY)
        doc.add(label)
        x += 17 + 7 * len(name) + 26


def _frame(doc: Document, plot_left: float, plot_top: float,
           plot_right: float, plot_bottom: float,
           ticks: Sequence[float], scale_y, y_label: str) -> None:
    """Grid lines, y tick labels, axis line, y-axis caption."""
    for tick in ticks:
        y = scale_y(tick)
        doc.add(line(plot_left, y, plot_right, y, stroke=palette.GRID,
                     width=1))
        doc.add(text(plot_left - 8, y + 4, _fmt_value(tick), size=11,
                     fill=palette.TEXT_SECONDARY, anchor="end"))
    doc.add(line(plot_left, plot_bottom, plot_right, plot_bottom,
                 stroke=palette.AXIS, width=1))
    caption = text(16, plot_top - 10, y_label, size=12,
                   fill=palette.TEXT_SECONDARY)
    doc.add(caption)


def _threshold(doc: Document, threshold: Threshold, plot_left: float,
               plot_right: float, scale_y) -> None:
    y = scale_y(threshold.value)
    doc.add(line(plot_left, y, plot_right, y, stroke=threshold.color,
                 width=1.5, dash="6,4"))
    doc.add(text(plot_right, y - 6, threshold.label, size=11,
                 fill=threshold.color, anchor="end"))


def grouped_bar_chart(title: str, group_labels: Sequence[str],
                      series: Sequence[BarSeries],
                      y_label: str,
                      threshold: Optional[Threshold] = None,
                      width: int = 760, height: int = 400,
                      direct_labels: bool = True) -> Document:
    """Grouped vertical bars with optional CI whiskers and threshold."""
    if not series:
        raise ConfigurationError("need at least one series")
    for s in series:
        if len(s.values) != len(group_labels):
            raise ConfigurationError(
                f"series {s.name!r} has {len(s.values)} values for "
                f"{len(group_labels)} groups")
        if s.errors is not None and len(s.errors) != len(s.values):
            raise ConfigurationError(
                f"series {s.name!r}: errors/values length mismatch")
    doc = Document(width, height, background=palette.SURFACE)
    doc.add(text(MARGIN_LEFT, 24, title, size=14,
                 fill=palette.TEXT_PRIMARY, weight="600"))
    show_legend = len(series) >= 2
    plot_top = MARGIN_TOP + (LEGEND_HEIGHT if show_legend else 0)
    plot_left = MARGIN_LEFT
    plot_right = width - MARGIN_RIGHT
    plot_bottom = height - MARGIN_BOTTOM
    if show_legend:
        _legend(doc, [s.name for s in series], MARGIN_TOP)

    peak = 0.0
    trough = 0.0
    for s in series:
        for i, value in enumerate(s.values):
            err = s.errors[i] if s.errors is not None else 0.0
            peak = max(peak, value + err)
            trough = min(trough, value - err)
    if threshold is not None:
        peak = max(peak, threshold.value)
        trough = min(trough, threshold.value)
    # Ticks span the positive side on the 1/2/5 ladder; the negative
    # side (if any) mirrors the same step below zero.
    ticks = _nice_ticks(peak * 1.08 if peak > 0 else 1.0)
    top_value = ticks[-1]
    step = ticks[1] - ticks[0] if len(ticks) > 1 else 1.0
    bottom_value = 0.0
    while bottom_value > trough * 1.08:
        bottom_value -= step
        ticks.insert(0, round(bottom_value, 10))

    def scale_y(value: float) -> float:
        span = plot_bottom - plot_top
        return plot_bottom - ((value - bottom_value)
                              / (top_value - bottom_value)) * span

    _frame(doc, plot_left, plot_top, plot_right, plot_bottom, ticks,
           scale_y, y_label)
    if bottom_value < 0:
        # Emphasize the zero baseline when bars extend below it.
        zero_y = scale_y(0.0)
        doc.add(line(plot_left, zero_y, plot_right, zero_y,
                     stroke=palette.AXIS, width=1))

    n_groups = len(group_labels)
    n_series = len(series)
    group_width = (plot_right - plot_left - GROUP_GAP * (n_groups + 1)) \
        / n_groups
    # Thin marks: cap the bar width and center the bars in their group.
    bar_width = min((group_width - BAR_GAP * (n_series - 1)) / n_series,
                    56.0)
    content = bar_width * n_series + BAR_GAP * (n_series - 1)
    marks = doc.add(group())
    for gi, label in enumerate(group_labels):
        group_x = plot_left + GROUP_GAP + gi * (group_width + GROUP_GAP)
        gx = group_x + (group_width - content) / 2
        baseline = scale_y(0.0)
        for si, s in enumerate(series):
            value = s.values[gi]
            x = gx + si * (bar_width + BAR_GAP)
            y = scale_y(value)
            top = min(y, baseline)
            bar = rect(x, top, bar_width, max(abs(baseline - y), 0.5),
                       fill=palette.series_color(si), rx=BAR_ROUND)
            bar.title(f"{s.name} — {label}: {_fmt_value(value)}")
            marks.add(bar)
            if s.errors is not None and s.errors[gi] > 0:
                err = s.errors[gi]
                cx = x + bar_width / 2
                y_hi, y_lo = scale_y(value + err), scale_y(value - err)
                marks.add(line(cx, y_hi, cx, y_lo,
                               stroke=palette.TEXT_PRIMARY, width=1.2))
                for wy in (y_hi, y_lo):
                    marks.add(line(cx - 4, wy, cx + 4, wy,
                                   stroke=palette.TEXT_PRIMARY,
                                   width=1.2))
            if direct_labels:
                if value >= 0:
                    label_y = scale_y(value) - 5
                    if s.errors is not None and s.errors[gi] > 0:
                        label_y = scale_y(value + s.errors[gi]) - 5
                else:
                    label_y = scale_y(value) + 13
                    if s.errors is not None and s.errors[gi] > 0:
                        label_y = scale_y(value - s.errors[gi]) + 13
                marks.add(text(x + bar_width / 2, label_y,
                               _fmt_value(value), size=10,
                               fill=palette.TEXT_SECONDARY,
                               anchor="middle"))
        doc.add(text(group_x + group_width / 2, plot_bottom + 18, label,
                     size=11, fill=palette.TEXT_SECONDARY,
                     anchor="middle"))
    if threshold is not None:
        _threshold(doc, threshold, plot_left, plot_right, scale_y)
    return doc


def line_chart(title: str, series: Sequence[LineSeries],
               x_label: str, y_label: str,
               threshold: Optional[Threshold] = None,
               width: int = 760, height: int = 400,
               y_from_zero: bool = False) -> Document:
    """Multi-series line chart with round markers and direct end labels."""
    if not series or not any(s.points for s in series):
        raise ConfigurationError("need at least one non-empty series")
    doc = Document(width, height, background=palette.SURFACE)
    doc.add(text(MARGIN_LEFT, 24, title, size=14,
                 fill=palette.TEXT_PRIMARY, weight="600"))
    show_legend = len(series) >= 2
    plot_top = MARGIN_TOP + (LEGEND_HEIGHT if show_legend else 0)
    plot_left = MARGIN_LEFT
    plot_right = width - MARGIN_RIGHT - 40  # room for direct end labels
    plot_bottom = height - MARGIN_BOTTOM
    if show_legend:
        _legend(doc, [s.name for s in series], MARGIN_TOP)

    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    x_min, x_max = min(xs), max(xs)
    y_min = 0.0 if y_from_zero else min(ys)
    y_max = max(ys)
    if threshold is not None:
        y_min = min(y_min, threshold.value)
        y_max = max(y_max, threshold.value)
    if x_max == x_min:
        x_max = x_min + 1.0
    pad = (y_max - y_min) * 0.08 or 1.0
    y_min = 0.0 if y_from_zero and y_min >= 0 else y_min - pad
    y_max += pad

    def scale_x(value: float) -> float:
        return plot_left + (value - x_min) / (x_max - x_min) \
            * (plot_right - plot_left)

    def scale_y(value: float) -> float:
        return plot_bottom - (value - y_min) / (y_max - y_min) \
            * (plot_bottom - plot_top)

    # Grid from nice ticks over the [y_min, y_max] span.
    span_ticks = _nice_ticks(y_max - y_min)
    ticks = [round(y_min + t, 10) for t in span_ticks
             if y_min + t <= y_max]
    for tick in ticks:
        y = scale_y(tick)
        doc.add(line(plot_left, y, plot_right, y, stroke=palette.GRID,
                     width=1))
        doc.add(text(plot_left - 8, y + 4, _fmt_value(tick), size=11,
                     fill=palette.TEXT_SECONDARY, anchor="end"))
    doc.add(line(plot_left, plot_bottom, plot_right, plot_bottom,
                 stroke=palette.AXIS, width=1))
    doc.add(text(16, plot_top - 10, y_label, size=12,
                 fill=palette.TEXT_SECONDARY))
    doc.add(text((plot_left + plot_right) / 2, height - 16, x_label,
                 size=12, fill=palette.TEXT_SECONDARY, anchor="middle"))
    for x in sorted({x for s in series for x, _ in s.points}):
        doc.add(text(scale_x(x), plot_bottom + 18, _fmt_value(x),
                     size=10, fill=palette.TEXT_MUTED, anchor="middle"))

    for si, s in enumerate(series):
        color = palette.series_color(si)
        pts = [(scale_x(x), scale_y(y)) for x, y in sorted(s.points)]
        if len(pts) >= 2:
            doc.add(polyline(pts, stroke=color, width=2))
        for (x, y), (px, py) in zip(sorted(s.points), pts):
            dot = circle(px, py, 4, fill=color,
                         stroke=palette.SURFACE, stroke_width=2)
            dot.title(f"{s.name}: ({_fmt_value(x)}, {_fmt_value(y)})")
            doc.add(dot)
        # Direct label at the series' last point, ink-colored.
        end_x, end_y = pts[-1]
        doc.add(text(end_x + 8, end_y + 4, s.name, size=11,
                     fill=palette.TEXT_SECONDARY))
    if threshold is not None:
        _threshold(doc, threshold, plot_left, plot_right, scale_y)
    return doc
