"""Fleet-scale soak: route, execute shards in parallel, verify.

The soak is the fleet's bench-and-drill harness.  It runs in three
phases, shaped so that the result is **bit-identical at any ``jobs``
setting**:

1. **Route.**  The whole admission stream goes through the batched
   :class:`~repro.fleet.router.PlacementRouter` queue.  Routing uses
   only the router's own estimates, so the per-shard sub-streams are
   fixed before any shard exists.
2. **Execute.**  Each shard's sub-stream runs in a
   :func:`repro.par.pmap` worker that owns the shard's
   :class:`~repro.fleet.shard.ShardController` (and therefore its WAL
   + checkpoint directory) exclusively.  Per-shard work is fully
   self-contained; ``jobs`` only changes wall-clock time.  When the
   config names a crash shard, that worker SIGKILL-simulates its
   controller mid-stream (abandoned with no shutdown), recovers from
   the shard's own WAL + checkpoint, verifies every acked placement
   came back replica-for-replica, and finishes its stream on the
   recovered controller.
3. **Spill.**  Tenants refused by their budgeted shard come back and
   are re-admitted serially through a live
   :class:`~repro.fleet.fleet.PlacementFleet` (router spillover, ring
   order).  Unbudgeted fleets never spill.

Latency is measured, not inferred: when an obs registry is attached,
the per-operation ``placement.place.seconds`` histograms
(:data:`~repro.obs.LATENCY_BUCKETS`) from every worker are absorbed in
shard order and the soak reports their p50/p99.

:func:`run_streaming_soak` is the bounded-memory sibling of the
three-phase soak: instead of materializing the whole admission stream
up front, tenants are drawn lazily
(:func:`~repro.workloads.sequences.stream_tenants`), routed through
the router's windowed queue (:meth:`PlacementRouter.stream`), and
admitted window by window through each shard's
:meth:`~repro.fleet.shard.ShardController.place_batch` — at most one
window of the stream is ever resident, which is what lets ``repro
fleet-soak`` ingest millions of tenants in one process.  Packing
fingerprints are maintained incrementally (per-shard tenant ids are
strictly increasing, so the canonical sorted serialization can be
hashed as admissions happen), and the crash drill verifies recovery
by fingerprint instead of replaying an acked map it never kept.
Unbudgeted runs are fingerprint-identical to the three-phase soak;
budgeted runs may pack differently because streaming re-admits a
refused tenant immediately (ring order) while the batch soak defers
every spill to a final serial phase.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.tenant import Tenant
from ..errors import ConfigurationError, ShardSaturatedError
from ..obs import LATENCY_BUCKETS, active
from ..par import pmap
from ..store.wal import FSYNC_ALWAYS
from ..workloads.distributions import UniformLoad
from ..workloads.sequences import generate_sequence, stream_tenants
from .fleet import PlacementFleet, write_fleet_meta
from .router import POLICIES, PlacementRouter
from .shard import ShardController, shard_directory

PathLike = Union[str, Path]


@dataclass(frozen=True)
class FleetSoakConfig:
    """Parameters of one fleet soak."""

    shards: int = 4
    tenants: int = 10000
    policy: str = "hash"
    gamma: int = 2
    seed: int = 0
    batch_size: int = 256
    #: Upper bound of the uniform tenant-load distribution.
    max_load: float = 0.6
    max_servers_per_shard: Optional[int] = None
    #: Shard to SIGKILL-simulate mid-stream (``None`` disables the
    #: crash drill; the default crashes shard 0).
    crash_shard: Optional[int] = 0
    segment_records: int = 512

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}")
        if self.tenants < 1:
            raise ConfigurationError(
                f"tenants must be >= 1, got {self.tenants}")
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; known: {POLICIES}")
        if self.crash_shard is not None and not (
                0 <= self.crash_shard < self.shards):
            raise ConfigurationError(
                f"crash_shard must be in [0, {self.shards}), got "
                f"{self.crash_shard}")


@dataclass
class ShardOutcome:
    """What one shard's worker did (picklable; crosses the pool)."""

    shard_id: int
    tenants: int
    servers: int
    nonempty_servers: int
    total_load: float
    utilization: float
    audit_ok: bool
    min_slack: float
    wal_next_seq: int
    #: sha256 over the sorted ``tenant -> [servers]`` mapping — the
    #: deterministic identity of this shard's packing.
    fingerprint: str
    elapsed: float
    #: ``(tenant_id, load)`` pairs the shard refused (budget).
    spilled: List[Tuple[int, float]] = field(default_factory=list)
    #: Crash-drill evidence, when this shard was the victim.
    crash: Optional[Dict[str, object]] = None


@dataclass
class FleetSoakResult:
    """Aggregate of one fleet soak."""

    config: FleetSoakConfig
    outcomes: List[ShardOutcome]
    placed: int
    spill_placed: int
    spill_unplaced: int
    servers: int
    utilization: float
    wall_seconds: float
    tenants_per_second: float
    #: Sum over shards of (tenants / shard seconds): the rate the fleet
    #: sustains when shards run on independent cores.
    aggregate_tenants_per_second: float
    latency_p50: Optional[float]
    latency_p99: Optional[float]
    router: Dict[str, object]

    @property
    def audits_ok(self) -> bool:
        return all(o.audit_ok for o in self.outcomes)

    @property
    def crash_outcome(self) -> Optional[ShardOutcome]:
        for outcome in self.outcomes:
            if outcome.crash is not None:
                return outcome
        return None

    @property
    def crash_divergences(self) -> List[str]:
        outcome = self.crash_outcome
        if outcome is None:
            return []
        return list(outcome.crash["divergences"])

    @property
    def ok(self) -> bool:
        return (self.audits_ok and not self.crash_divergences
                and self.placed + self.spill_placed
                + self.spill_unplaced == self.config.tenants)

    def fingerprint(self) -> str:
        """Deterministic identity of the whole run (jobs-invariant)."""
        digest = hashlib.sha256()
        for outcome in self.outcomes:
            digest.update(outcome.fingerprint.encode("ascii"))
        digest.update(json.dumps(self.router,
                                 sort_keys=True).encode("utf-8"))
        return digest.hexdigest()

    def __str__(self) -> str:
        cfg = self.config
        lines = [
            f"Fleet soak: {cfg.tenants} tenants over {cfg.shards} "
            f"shard(s), policy {cfg.policy}, gamma {cfg.gamma}, "
            f"seed {cfg.seed}",
            f"  placed {self.placed} (+{self.spill_placed} spilled, "
            f"{self.spill_unplaced} refused) on {self.servers} "
            f"servers at {self.utilization:.4f} utilization",
            f"  wall {self.wall_seconds:.2f}s = "
            f"{self.tenants_per_second:,.0f} tenants/s; aggregate "
            f"{self.aggregate_tenants_per_second:,.0f} tenants/s "
            f"across shards",
        ]
        if self.latency_p99 is not None:
            lines.append(
                f"  place latency p50 {self.latency_p50 * 1e6:.0f}us, "
                f"p99 {self.latency_p99 * 1e6:.0f}us")
        outcome = self.crash_outcome
        if outcome is not None:
            crash = outcome.crash
            verdict = ("clean" if not crash["divergences"]
                       else f"{len(crash['divergences'])} DIVERGENCES")
            lines.append(
                f"  crash drill: shard {outcome.shard_id} killed after "
                f"{crash['acked']} acked placements, recovered "
                f"replica-for-replica: {verdict}")
        lines.append(
            f"  audits: "
            f"{'all clean' if self.audits_ok else 'VIOLATED'} "
            f"({sum(o.audit_ok for o in self.outcomes)}/"
            f"{len(self.outcomes)} shards)")
        return "\n".join(lines)


def _packing_fingerprint(acked: Dict[int, List[int]]) -> str:
    canon = json.dumps(sorted(acked.items()), separators=(",", ":"))
    return hashlib.sha256(canon.encode("ascii")).hexdigest()


def _run_shard(item, registry) -> ShardOutcome:
    """Worker body: run one shard's sub-stream to completion.

    ``item`` is ``(shard_id, root, gamma, max_servers,
    segment_records, assignment, crash_at)`` where ``assignment`` is
    the routed ``(tenant_id, load)`` sub-stream and ``crash_at`` is an
    index into it (-1: no crash drill on this shard).
    """
    (shard_id, root, gamma, max_servers, segment_records,
     assignment, crash_at) = item

    def fresh() -> ShardController:
        return ShardController(
            shard_id, shard_directory(root, shard_id), gamma=gamma,
            max_servers=max_servers, obs=registry,
            segment_records=segment_records)

    started = time.perf_counter()
    controller = fresh()
    acked: Dict[int, List[int]] = {}
    spilled: List[Tuple[int, float]] = []
    crash_report: Optional[Dict[str, object]] = None
    for index, (tenant_id, load) in enumerate(assignment):
        if index == crash_at:
            # SIGKILL semantics: abandon the controller with no
            # shutdown, then recover from the shard's own WAL +
            # checkpoint and verify every acked placement survived.
            controller.crash()
            controller = fresh()
            recovered = controller.recovered_state
            divergences: List[str] = []
            placement = controller.placement
            if placement.num_tenants != len(acked):
                divergences.append(
                    f"recovered {placement.num_tenants} tenants, "
                    f"acked {len(acked)}")
            for tid, servers in acked.items():
                by_index = placement.tenant_servers(tid)
                got = [by_index[i] for i in sorted(by_index)]
                if got != servers:
                    divergences.append(
                        f"tenant {tid}: acked {servers}, "
                        f"recovered {got}")
            crash_report = {
                "at": index,
                "acked": len(acked),
                "divergences": divergences,
                "audit_ok": (recovered is not None
                             and recovered.audit.ok),
                "records_replayed": (
                    0 if recovered is None
                    else recovered.records_replayed),
                "checkpoint_seq": (
                    0 if recovered is None
                    else recovered.checkpoint_seq),
            }
        try:
            servers = controller.place(Tenant(tenant_id, load))
        except ShardSaturatedError:
            spilled.append((tenant_id, load))
            continue
        acked[tenant_id] = list(servers)
    controller.checkpoint_and_compact()
    report = controller.audit()
    elapsed = time.perf_counter() - started
    placement = controller.placement
    outcome = ShardOutcome(
        shard_id=shard_id,
        tenants=placement.num_tenants,
        servers=placement.num_servers,
        nonempty_servers=placement.num_nonempty_servers,
        total_load=placement.total_load(),
        utilization=placement.utilization(),
        audit_ok=report.ok,
        min_slack=report.min_slack,
        wal_next_seq=controller.store.wal.next_seq,
        fingerprint=_packing_fingerprint(acked),
        elapsed=elapsed,
        spilled=spilled,
        crash=crash_report,
    )
    controller.close()
    return outcome


def run_fleet_soak(root: PathLike,
                   config: Optional[FleetSoakConfig] = None,
                   obs=None, jobs: int = 1) -> FleetSoakResult:
    """Run a fleet soak under ``root``; see the module docstring."""
    cfg = config if config is not None else FleetSoakConfig()
    gated = active(obs)
    root = Path(root)
    sequence = generate_sequence(UniformLoad(cfg.max_load),
                                 cfg.tenants, seed=cfg.seed)
    load_budget = (None if cfg.max_servers_per_shard is None
                   else float(cfg.max_servers_per_shard))
    router = PlacementRouter(cfg.shards, policy=cfg.policy,
                             seed=cfg.seed, batch_size=cfg.batch_size,
                             load_budget=load_budget)
    routed = router.route_stream(list(sequence))
    assignments: Dict[int, List[Tuple[int, float]]] = {
        shard: [] for shard in range(cfg.shards)}
    for shard, tenant in routed:
        assignments[shard].append((tenant.tenant_id, tenant.load))
    write_fleet_meta(root, shards=cfg.shards, gamma=cfg.gamma,
                     capacity=1.0, policy=cfg.policy, seed=cfg.seed,
                     max_servers_per_shard=cfg.max_servers_per_shard)

    items = []
    for shard in range(cfg.shards):
        assignment = assignments[shard]
        crash_at = -1
        if cfg.crash_shard == shard and assignment:
            crash_at = max(1, len(assignment) // 2)
        items.append((shard, str(root), cfg.gamma,
                      cfg.max_servers_per_shard, cfg.segment_records,
                      assignment, crash_at))

    started = time.perf_counter()
    outcomes: List[ShardOutcome] = pmap(_run_shard, items, jobs=jobs,
                                        obs=gated)

    spill_placed = spill_unplaced = 0
    spilled = [pair for outcome in outcomes
               for pair in outcome.spilled]
    if spilled:
        with PlacementFleet(root, obs=gated) as fleet:
            for tenant_id, load in spilled:
                try:
                    fleet.place(Tenant(tenant_id, load))
                except ShardSaturatedError:
                    spill_unplaced += 1
                else:
                    spill_placed += 1
            fleet.checkpoint_all()
            servers = fleet.status()["servers"]
            total_load = sum(c.total_load for c in fleet.shards)
            nonempty = sum(c.placement.num_nonempty_servers
                           for c in fleet.shards)
            audits = fleet.audit_all()
            for outcome, controller in zip(outcomes, fleet.shards):
                outcome.audit_ok = audits[controller.shard_id].ok
            router_snapshot = fleet.router.snapshot()
        utilization = (total_load / nonempty) if nonempty else 0.0
    else:
        servers = sum(o.servers for o in outcomes)
        total_load = sum(o.total_load for o in outcomes)
        nonempty = sum(o.nonempty_servers for o in outcomes)
        utilization = (total_load / nonempty) if nonempty else 0.0
        router_snapshot = router.snapshot()
    wall = time.perf_counter() - started

    placed = sum(o.tenants for o in outcomes)
    aggregate = sum(o.tenants / o.elapsed for o in outcomes
                    if o.elapsed > 0 and o.tenants)
    p50 = p99 = None
    if gated is not None:
        histogram = gated.histogram("placement.place.seconds",
                                    buckets=LATENCY_BUCKETS)
        if histogram.count:
            p50 = histogram.percentile(50.0)
            p99 = histogram.percentile(99.0)
    return FleetSoakResult(
        config=cfg, outcomes=outcomes, placed=placed,
        spill_placed=spill_placed, spill_unplaced=spill_unplaced,
        servers=servers, utilization=utilization,
        wall_seconds=wall,
        tenants_per_second=(cfg.tenants / wall if wall > 0 else 0.0),
        aggregate_tenants_per_second=aggregate,
        latency_p50=p50, latency_p99=p99, router=router_snapshot)


# ----------------------------------------------------------------------
# Streaming ingestion (bounded resident memory)
# ----------------------------------------------------------------------

#: Tenants routed + admitted per streaming window (a multiple of the
#: admission batch keeps the shard-side chunks full).
DEFAULT_WINDOW = 4096


class _StreamShard:
    """In-process bookkeeping for one shard of a streaming soak."""

    __slots__ = ("shard_id", "controller", "hasher", "first", "acked",
                 "elapsed", "foreign", "crash_report", "refused")

    def __init__(self, shard_id: int,
                 controller: ShardController) -> None:
        self.shard_id = shard_id
        self.controller = controller
        # Incremental sha256 over the canonical sorted
        # ``[tenant, [servers]]`` serialization: per-shard tenant ids
        # arrive strictly increasing, so admission order *is* sorted
        # order and the digest can be fed as placements are acked.
        self.hasher = hashlib.sha256()
        self.first = True
        self.acked = 0
        self.elapsed = 0.0
        #: Tenant ids admitted here via spillover from another shard's
        #: refusal — excluded from the fingerprint, exactly like the
        #: batch soak's phase-3 spills.
        self.foreign: set = set()
        self.crash_report: Optional[Dict[str, object]] = None
        self.refused: List[Tuple[int, float]] = []

    def feed(self, tenant_id: int, servers) -> None:
        item = json.dumps([tenant_id, list(servers)],
                          separators=(",", ":"))
        if self.first:
            self.hasher.update(b"[")
            self.first = False
        else:
            self.hasher.update(b",")
        self.hasher.update(item.encode("ascii"))
        self.acked += 1

    def fingerprint(self) -> str:
        digest = self.hasher.copy()
        digest.update(b"]" if not self.first else b"[]")
        return digest.hexdigest()


def _recovered_fingerprint(placement, exclude: set) -> Tuple[str, int]:
    """Canonical packing fingerprint of a recovered placement.

    Streams the recovered ``tenant -> [servers]`` mapping through the
    same incremental serialization :class:`_StreamShard` maintains, so
    a clean recovery reproduces the running digest bit-for-bit without
    the soak ever keeping an acked map.
    """
    hasher = hashlib.sha256()
    first = True
    count = 0
    for tenant_id in sorted(placement.tenant_ids):
        if tenant_id in exclude:
            continue
        by_index = placement.tenant_servers(tenant_id)
        servers = [by_index[i] for i in sorted(by_index)]
        item = json.dumps([tenant_id, servers], separators=(",", ":"))
        hasher.update(b"[" if first else b",")
        first = False
        hasher.update(item.encode("ascii"))
        count += 1
    hasher.update(b"]" if not first else b"[]")
    return hasher.hexdigest(), count


def run_streaming_soak(root: PathLike,
                       config: Optional[FleetSoakConfig] = None,
                       obs=None, window: int = DEFAULT_WINDOW,
                       fsync: str = FSYNC_ALWAYS) -> FleetSoakResult:
    """Run a fleet soak by windowed streaming ingestion.

    Same admission stream, routing decisions, and (unbudgeted)
    packings as :func:`run_fleet_soak`, but the stream is never
    materialized: tenants are generated lazily, routed ``window`` at a
    time, and each window's per-shard groups are admitted through
    :meth:`ShardController.place_batch` on long-lived in-process
    controllers.  The crash drill (``config.crash_shard``) fires once
    the victim shard has acked half its expected share and verifies
    recovery by packing fingerprint.  ``fsync`` is forwarded to every
    shard's WAL (the default ``always`` keeps the single-controller
    durability contract; ``rotate``/``never`` trade it for ingest
    speed on throughput drills).
    """
    cfg = config if config is not None else FleetSoakConfig()
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    gated = active(obs)
    root = Path(root)
    load_budget = (None if cfg.max_servers_per_shard is None
                   else float(cfg.max_servers_per_shard))
    router = PlacementRouter(cfg.shards, policy=cfg.policy,
                             seed=cfg.seed, batch_size=window,
                             load_budget=load_budget)
    write_fleet_meta(root, shards=cfg.shards, gamma=cfg.gamma,
                     capacity=1.0, policy=cfg.policy, seed=cfg.seed,
                     max_servers_per_shard=cfg.max_servers_per_shard)

    def fresh(shard_id: int) -> ShardController:
        return ShardController(
            shard_id, shard_directory(root, shard_id), gamma=cfg.gamma,
            max_servers=cfg.max_servers_per_shard, obs=gated,
            fsync=fsync, segment_records=cfg.segment_records)

    shards = [_StreamShard(sid, fresh(sid))
              for sid in range(cfg.shards)]
    crash_at = (None if cfg.crash_shard is None
                else max(1, cfg.tenants // (2 * cfg.shards)))

    def crash_drill(shard: _StreamShard) -> None:
        # SIGKILL semantics, as in the batch soak's worker: abandon
        # the controller, recover from the shard's own WAL +
        # checkpoint, and verify every acked placement survived — here
        # by comparing the recovered packing's fingerprint against the
        # running digest (the streaming soak keeps no acked map).
        shard.controller.crash()
        controller = fresh(shard.shard_id)
        recovered = controller.recovered_state
        placement = controller.placement
        divergences: List[str] = []
        got_fp, got_count = _recovered_fingerprint(
            placement, shard.foreign)
        if got_count != shard.acked:
            divergences.append(
                f"recovered {got_count} tenants, acked {shard.acked}")
        if got_fp != shard.fingerprint():
            divergences.append(
                f"recovered packing fingerprint {got_fp[:16]}..., "
                f"acked {shard.fingerprint()[:16]}...")
        shard.crash_report = {
            "at": shard.acked,
            "acked": shard.acked,
            "divergences": divergences,
            "audit_ok": (recovered is not None
                         and recovered.audit.ok),
            "records_replayed": (0 if recovered is None
                                 else recovered.records_replayed),
            "checkpoint_seq": (0 if recovered is None
                               else recovered.checkpoint_seq),
        }
        shard.controller = controller

    spill_placed = spill_unplaced = 0
    stream = stream_tenants(UniformLoad(cfg.max_load), cfg.tenants,
                            seed=cfg.seed)
    started = time.perf_counter()
    for groups in router.stream(stream):
        for shard_id in sorted(groups):
            shard = shards[shard_id]
            if (crash_at is not None and cfg.crash_shard == shard_id
                    and shard.crash_report is None
                    and shard.acked >= crash_at):
                crash_drill(shard)
            group_started = time.perf_counter()
            outcomes = shard.controller.place_batch(groups[shard_id])
            shard.elapsed += time.perf_counter() - group_started
            for tenant, servers in outcomes:
                if servers is not None:
                    shard.feed(tenant.tenant_id, servers)
                    continue
                # Budget refusal: spill immediately, ring order.
                shard.refused.append((tenant.tenant_id, tenant.load))
                router.record_remove(shard_id, tenant.load)
                for sibling in router.spill_order(tenant, shard_id):
                    try:
                        shards[sibling].controller.place(tenant)
                    except ShardSaturatedError:
                        continue
                    router.record_place(sibling, tenant.load)
                    shards[sibling].foreign.add(tenant.tenant_id)
                    spill_placed += 1
                    break
                else:
                    spill_unplaced += 1
    if crash_at is not None:
        # Imbalanced routing can leave the victim short of the
        # trigger; the drill still fires once (post-stream) so every
        # configured soak exercises recovery.
        victim = shards[cfg.crash_shard]
        if victim.crash_report is None and victim.acked > 0:
            crash_drill(victim)

    outcomes: List[ShardOutcome] = []
    for shard in shards:
        controller = shard.controller
        controller.checkpoint_and_compact()
        report = controller.audit()
        placement = controller.placement
        outcomes.append(ShardOutcome(
            shard_id=shard.shard_id,
            tenants=placement.num_tenants,
            servers=placement.num_servers,
            nonempty_servers=placement.num_nonempty_servers,
            total_load=placement.total_load(),
            utilization=placement.utilization(),
            audit_ok=report.ok,
            min_slack=report.min_slack,
            wal_next_seq=controller.store.wal.next_seq,
            fingerprint=shard.fingerprint(),
            elapsed=shard.elapsed,
            spilled=shard.refused,
            crash=shard.crash_report,
        ))
        controller.close()
    wall = time.perf_counter() - started

    servers = sum(o.servers for o in outcomes)
    total_load = sum(o.total_load for o in outcomes)
    nonempty = sum(o.nonempty_servers for o in outcomes)
    utilization = (total_load / nonempty) if nonempty else 0.0
    placed = sum(o.tenants for o in outcomes) - spill_placed
    aggregate = sum(shard.acked / shard.elapsed for shard in shards
                    if shard.elapsed > 0 and shard.acked)
    p50 = p99 = None
    if gated is not None:
        histogram = gated.histogram("placement.place.seconds",
                                    buckets=LATENCY_BUCKETS)
        if histogram.count:
            p50 = histogram.percentile(50.0)
            p99 = histogram.percentile(99.0)
    return FleetSoakResult(
        config=cfg, outcomes=outcomes, placed=placed,
        spill_placed=spill_placed, spill_unplaced=spill_unplaced,
        servers=servers, utilization=utilization,
        wall_seconds=wall,
        tenants_per_second=(cfg.tenants / wall if wall > 0 else 0.0),
        aggregate_tenants_per_second=aggregate,
        latency_p50=p50, latency_p99=p99, router=router.snapshot())
