"""Unit tests for the SLA violation model (`repro.analysis.sla`)."""

import math

import pytest

from repro.analysis.sla import (DEFAULT_POLICY, SlaPolicy, cheapest_gamma,
                                gamma_map, p_violate, p_violate_curve)
from repro.core.tenant import Tenant
from repro.errors import ConfigurationError


class TestPViolate:
    def test_gamma_one_is_the_failure_probability(self):
        # One replica: any failure is total loss, regardless of load.
        for load in (0.05, 0.5, 0.95):
            assert p_violate(load, 1) == DEFAULT_POLICY.failure_prob

    def test_light_tenant_gamma_two_needs_both_failures(self):
        # 0.4 re-shared onto one survivor stays under 0.75: only the
        # double failure violates.
        assert math.isclose(p_violate(0.4, 2), 0.05 ** 2)

    def test_heavy_tenant_gamma_two_violates_on_any_failure(self):
        # 0.8 overloads the lone survivor, so one failure is enough:
        # p^2 + 2pq.
        expected = 0.05 ** 2 + 2 * 0.05 * 0.95
        assert math.isclose(p_violate(0.8, 2), expected)

    def test_replication_can_hurt_a_heavy_tenant(self):
        # The non-monotone case the module docstring calls out: at 0.8
        # load, gamma 2 doubles the chance of an overloading failure.
        assert p_violate(0.8, 2) > p_violate(0.8, 1)
        assert p_violate(0.8, 3) < p_violate(0.8, 1)

    def test_monotone_in_load(self):
        for gamma in (1, 2, 3):
            curve = p_violate_curve([l / 20 for l in range(1, 20)],
                                    gamma)
            assert curve == sorted(curve)

    def test_zero_failure_prob_never_violates(self):
        policy = SlaPolicy(failure_prob=0.0)
        assert p_violate(0.9, 1, policy) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            p_violate(0.0, 2)
        with pytest.raises(ConfigurationError):
            p_violate(0.5, 0)


class TestPolicyValidation:
    def test_bad_failure_prob(self):
        with pytest.raises(ConfigurationError):
            SlaPolicy(failure_prob=1.0)
        with pytest.raises(ConfigurationError):
            SlaPolicy(failure_prob=-0.1)

    def test_bad_overload(self):
        with pytest.raises(ConfigurationError):
            SlaPolicy(overload=0.0)

    def test_bad_gamma_menu(self):
        with pytest.raises(ConfigurationError):
            SlaPolicy(gammas=())
        with pytest.raises(ConfigurationError):
            SlaPolicy(gammas=(0, 1))
        with pytest.raises(ConfigurationError, match="ascending"):
            SlaPolicy(gammas=(2, 1))


class TestCheapestGamma:
    def test_picks_smallest_meeting_target(self):
        # 0.05 / 0.0025 / 0.000125 for a light tenant.
        assert cheapest_gamma(0.1, 0.05) == 1
        assert cheapest_gamma(0.1, 0.01) == 2
        assert cheapest_gamma(0.1, 0.001) == 3

    def test_falls_back_to_most_reliable(self):
        # No gamma in the menu reaches 1e-9; argmin p_violate wins.
        assert cheapest_gamma(0.1, 1e-9) == 3
        # For a heavy tenant the argmin skips the harmful gamma 2.
        assert cheapest_gamma(0.8, 1e-9) == 3

    def test_respects_restricted_menu(self):
        # gamma 1 -> 0.05, gamma 2 -> 0.0025; neither meets 0.001, so
        # the most reliable allowed choice (2) wins — never gamma 3,
        # which the menu excludes.
        policy = SlaPolicy(gammas=(1, 2))
        assert cheapest_gamma(0.1, 0.001, policy) == 2
        assert cheapest_gamma(0.1, 0.01, policy) == 2
        assert cheapest_gamma(0.1, 0.05, policy) == 1

    def test_bad_target(self):
        with pytest.raises(ConfigurationError):
            cheapest_gamma(0.5, 0.0)
        with pytest.raises(ConfigurationError):
            cheapest_gamma(0.5, 1.5)


class TestGammaMap:
    def test_fleet_wide_target(self):
        plan = gamma_map([(0, 0.1), (1, 0.4), (2, 0.8)], 0.01)
        assert plan == {0: 2, 1: 2, 2: 3}

    def test_accepts_tenant_objects(self):
        tenants = [Tenant(tenant_id=7, load=0.1)]
        assert gamma_map(tenants, 0.05) == {7: 1}

    def test_per_tenant_targets(self):
        plan = gamma_map([(0, 0.1), (1, 0.1)], {0: 0.05, 1: 0.001})
        assert plan == {0: 1, 1: 3}

    def test_missing_per_tenant_target_rejected(self):
        with pytest.raises(ConfigurationError, match="no SLA target"):
            gamma_map([(0, 0.1), (1, 0.1)], {0: 0.05})

    def test_tighter_target_never_cheapens_any_tenant(self):
        loads = [(i, 0.05 + 0.045 * i) for i in range(20)]
        loose = gamma_map(loads, 0.05)
        tight = gamma_map(loads, 0.001)
        for tid, _ in loads:
            assert tight[tid] >= loose[tid] or \
                p_violate(dict(loads)[tid], tight[tid]) <= \
                p_violate(dict(loads)[tid], loose[tid])
