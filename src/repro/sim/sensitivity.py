"""Parameter sensitivity studies.

The paper inherits two magic numbers it never sweeps: RFI's
interleaving threshold ``mu = 0.85`` ("as recommended in [12]") and its
own class count K (it uses 5 on the cluster and 10 in simulation, with
one sentence of guidance).  These harnesses sweep both so the choices
are evidence instead of folklore:

* :func:`mu_sensitivity` — servers used by RFI as a function of mu, per
  distribution.  Too-low mu wastes primary capacity; mu = 1.0 removes
  the interleaving headroom entirely.
* :func:`k_sensitivity` — servers used by CUBEFIT as a function of K
  (complements the ablation bench with a full curve).
* :func:`sla_sensitivity` — servers used by the mixed-gamma first-fit
  path as a function of the fleet-wide SLA violation target: each point
  derives a per-tenant gamma plan via
  :func:`repro.analysis.sla.gamma_map` and consolidates under it,
  charting the cost of tighter availability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..algorithms.rfi import RFI
from ..analysis.report import Table
from ..core.cubefit import CubeFit
from ..errors import ConfigurationError
from ..par import pmap
from ..workloads.distributions import LoadDistribution
from ..workloads.sequences import generate_sequence


@dataclass
class SensitivityPoint:
    """One (parameter value, servers) measurement."""

    parameter: float
    servers: int
    utilization: float


@dataclass
class SensitivityCurve:
    """A full sweep for one distribution."""

    parameter_name: str
    distribution: str
    tenants: int
    points: List[SensitivityPoint] = field(default_factory=list)

    def best(self) -> SensitivityPoint:
        return min(self.points, key=lambda p: (p.servers, p.parameter))

    def servers_at(self, parameter: float) -> int:
        for point in self.points:
            if abs(point.parameter - parameter) < 1e-12:
                return point.servers
        raise ConfigurationError(
            f"{self.parameter_name}={parameter} was not swept")

    def to_table(self) -> Table:
        table = Table(
            title=f"{self.parameter_name} sensitivity on "
                  f"{self.distribution} ({self.tenants} tenants)",
            columns=[self.parameter_name, "servers", "utilization"])
        for p in self.points:
            table.add_row(p.parameter, p.servers,
                          round(p.utilization, 4))
        return table

    def __str__(self) -> str:
        return self.to_table().to_text()


DEFAULT_MUS: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 1.0)


def mu_sensitivity(distribution: LoadDistribution,
                   n_tenants: int = 2000,
                   mus: Sequence[float] = DEFAULT_MUS,
                   gamma: int = 2,
                   seed: int = 0,
                   jobs: int = 1,
                   obs=None) -> SensitivityCurve:
    """Sweep RFI's interleaving threshold over one workload.

    ``jobs > 1`` runs the sweep points on a forked worker pool
    (:func:`repro.par.pmap`); every point consolidates the same
    seed-generated sequence in its own process, so the curve is
    bit-identical at any ``jobs``.
    """
    if not mus:
        raise ConfigurationError("no mu values to sweep")
    sequence = generate_sequence(distribution, n_tenants, seed=seed)
    curve = SensitivityCurve(parameter_name="mu",
                             distribution=distribution.name,
                             tenants=n_tenants)

    def measure(mu: float, point_obs) -> SensitivityPoint:
        algo = RFI(gamma=gamma, mu=mu)
        algo.attach_obs(point_obs)
        algo.consolidate(sequence)
        return SensitivityPoint(
            parameter=mu,
            servers=algo.placement.num_servers,
            utilization=algo.placement.utilization())

    curve.points.extend(pmap(measure, mus, jobs=jobs, obs=obs))
    return curve


DEFAULT_KS: Sequence[int] = (2, 3, 5, 8, 10, 15, 20)


def k_sensitivity(distribution: LoadDistribution,
                  n_tenants: int = 2000,
                  ks: Sequence[int] = DEFAULT_KS,
                  gamma: int = 2,
                  seed: int = 0,
                  jobs: int = 1,
                  obs=None) -> SensitivityCurve:
    """Sweep CUBEFIT's class count over one workload.

    Parallelizes exactly like :func:`mu_sensitivity`: one worker per
    ``K``, bit-identical results at any ``jobs``.
    """
    if not ks:
        raise ConfigurationError("no K values to sweep")
    sequence = generate_sequence(distribution, n_tenants, seed=seed)
    curve = SensitivityCurve(parameter_name="K",
                             distribution=distribution.name,
                             tenants=n_tenants)

    def measure(k: int, point_obs) -> SensitivityPoint:
        algo = CubeFit(gamma=gamma, num_classes=k)
        algo.attach_obs(point_obs)
        algo.consolidate(sequence)
        return SensitivityPoint(
            parameter=float(k),
            servers=algo.placement.num_servers,
            utilization=algo.placement.utilization())

    curve.points.extend(pmap(measure, ks, jobs=jobs, obs=obs))
    return curve


DEFAULT_SLA_TARGETS: Sequence[float] = (0.1, 0.05, 0.01, 0.005, 0.001)


def sla_sensitivity(distribution: LoadDistribution,
                    n_tenants: int = 2000,
                    targets: Sequence[float] = DEFAULT_SLA_TARGETS,
                    gamma: int = 2,
                    seed: int = 0,
                    jobs: int = 1,
                    obs=None,
                    policy=None) -> SensitivityCurve:
    """Sweep the fleet-wide SLA target under mixed-gamma placement.

    Each point maps the sequence's tenants through
    :func:`~repro.analysis.sla.gamma_map` (cheapest gamma meeting
    ``target`` under ``policy``, default :data:`DEFAULT_POLICY`) and
    consolidates with
    :class:`~repro.algorithms.mixed.MixedGammaFirstFit`; ``gamma`` is
    the fallback for tenants the policy leaves unmapped (none, here).
    Parallelizes exactly like :func:`mu_sensitivity`.
    """
    from ..algorithms.mixed import MixedGammaFirstFit
    from ..analysis.sla import DEFAULT_POLICY, gamma_map

    if not targets:
        raise ConfigurationError("no SLA targets to sweep")
    if policy is None:
        policy = DEFAULT_POLICY
    sequence = generate_sequence(distribution, n_tenants, seed=seed)
    curve = SensitivityCurve(parameter_name="sla_target",
                             distribution=distribution.name,
                             tenants=n_tenants)

    def measure(target: float, point_obs) -> SensitivityPoint:
        plan = gamma_map(sequence, target, policy)
        algo = MixedGammaFirstFit(plan, gamma=gamma)
        algo.attach_obs(point_obs)
        algo.consolidate(sequence)
        return SensitivityPoint(
            parameter=target,
            servers=algo.placement.num_servers,
            utilization=algo.placement.utilization())

    curve.points.extend(pmap(measure, targets, jobs=jobs, obs=obs))
    return curve
