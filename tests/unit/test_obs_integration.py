"""Integration tests: observability wired through algorithms,
recovery/repacking, the cluster engine, and the sim harnesses."""

import pytest

from repro.core.cubefit import CubeFit
from repro.core.recovery import RecoveryPlanner
from repro.core.tenant import Tenant
from repro.obs import EventJournal, MetricsRegistry, replay, set_enabled
from repro.sim.churn import ChurnConfig, run_churn
from repro.sim.elasticity import ElasticityConfig, run_elasticity
from repro.sim.soak import SoakConfig, run_soak
from repro.sim.timing import scaling_study
from repro.workloads.distributions import UniformLoad


def cubefit():
    return CubeFit(gamma=2, num_classes=10)


def instrumented():
    return MetricsRegistry(journal=EventJournal())


class TestAlgorithmInstrumentation:
    def test_operations_journal_one_event_each(self):
        reg = instrumented()
        algo = cubefit()
        algo.attach_obs(reg)
        algo.place(Tenant(0, 0.4))
        algo.place(Tenant(1, 0.3))
        algo.update_load(0, 0.5)
        algo.remove(1)
        counts = replay(reg.journal).counts
        assert counts["place"] == 2
        assert counts["resize"] == 1  # NOT an extra remove+place pair
        assert counts["remove"] == 1
        assert reg.counter("placement.place").value == 2
        assert reg.counter("placement.remove").value == 1
        assert reg.counter("placement.resize").value == 1
        assert reg.histogram("placement.place.seconds").count == 2

    def test_open_server_events_match_fleet(self):
        reg = instrumented()
        algo = cubefit()
        algo.attach_obs(reg)
        for tid in range(6):
            algo.place(Tenant(tid, 0.6))
        opened = reg.journal.events("open_server")
        assert len(opened) == algo.placement.num_servers
        assert reg.counter("placement.servers_opened").value == \
            algo.placement.num_servers
        assert sorted(e.data["server"] for e in opened) == \
            list(range(algo.placement.num_servers))

    def test_uninstrumented_by_default(self):
        algo = cubefit()
        assert algo.obs is None
        algo.place(Tenant(0, 0.4))  # no registry, no cost, no error


class TestRecoveryAndRepackEvents:
    def test_recovery_moves_journaled(self):
        reg = instrumented()
        algo = cubefit()
        for tid in range(6):
            algo.place(Tenant(tid, 0.6))
        victim = next(s.server_id for s in algo.placement if len(s) > 0)
        plan = RecoveryPlanner(algo.placement, failures=1,
                               obs=reg).recover([victim])
        moves = reg.journal.events("recovery_move")
        assert len(moves) == plan.replicas_relocated > 0
        assert reg.counter("recovery.moves").value == len(moves)
        assert reg.histogram("span.recovery.seconds").count == 1

    def test_soak_repack_events_journaled(self):
        reg = instrumented()
        result = run_soak(
            cubefit, SoakConfig(operations=300, seed=0), obs=reg)
        if result.counts.get("repack", 0):
            assert len(reg.journal.events("repack")) == \
                result.counts["repack"]


class TestSoakJournalReplay:
    """Acceptance criterion: an instrumented soak run's journal replays
    to exactly the operation counts reported in SoakResult.counts."""

    @pytest.fixture(scope="class")
    def run(self):
        reg = instrumented()
        result = run_soak(cubefit, SoakConfig(operations=300, seed=0),
                          obs=reg)
        return result, reg

    def test_replay_counts_equal_result_counts(self, run):
        result, reg = run
        summary = replay(reg.journal)
        for op, count in result.counts.items():
            assert summary.count(op) == count, op

    def test_replay_survives_jsonl_round_trip(self, run, tmp_path):
        from repro.obs import read_journal
        result, reg = run
        path = tmp_path / "soak.jsonl"
        reg.journal.write(path)
        summary = replay(read_journal(path))
        assert {op: summary.count(op) for op in result.counts} == \
            result.counts

    def test_metrics_snapshot_in_result(self, run):
        result, reg = run
        assert result.metrics is not None
        assert result.metrics["placement.place"]["value"] == \
            result.counts["place"]


class TestDifferentialDisabledIdentical:
    """Results must be identical with and without instrumentation."""

    def test_soak_scalars_identical(self):
        cfg = SoakConfig(operations=200, seed=3)
        plain = run_soak(cubefit, cfg)
        instr = run_soak(cubefit, cfg, obs=instrumented())
        assert plain.counts == instr.counts
        assert plain.final_servers == instr.final_servers
        assert plain.final_tenants == instr.final_tenants
        assert plain.recovered_replicas == instr.recovered_replicas
        assert plain.repacked_servers == instr.repacked_servers
        assert plain.violations == instr.violations
        assert plain.metrics is None and instr.metrics is not None

    def test_churn_timeline_identical(self):
        cfg = ChurnConfig(arrival_rate=5.0, mean_lifetime=10.0,
                          horizon=40.0, sample_every=10.0, seed=1)
        plain = run_churn(cubefit, UniformLoad(0.3), cfg)
        instr = run_churn(cubefit, UniformLoad(0.3), cfg,
                          obs=MetricsRegistry())
        assert plain.samples == instr.samples
        assert plain.arrivals == instr.arrivals
        assert plain.departures == instr.departures

    def test_global_off_switch_blanks_everything(self):
        reg = instrumented()
        set_enabled(False)
        try:
            result = run_soak(cubefit, SoakConfig(operations=80, seed=2),
                              obs=reg)
        finally:
            set_enabled(True)
        assert result.ok
        assert result.metrics is None
        assert len(reg) == 0
        assert len(reg.journal) == 0


class TestHarnessMetricsFields:
    def test_elasticity_metrics(self):
        reg = MetricsRegistry()
        result = run_elasticity(
            cubefit, UniformLoad(0.4),
            ElasticityConfig(n_tenants=40, n_updates=60, seed=0),
            obs=reg)
        assert result.metrics is not None
        assert result.metrics["placement.resize"]["value"] == \
            result.updates
        if result.migrations:
            assert result.metrics["elasticity.migrations"]["value"] == \
                result.migrations

    def test_churn_metrics_gauges(self):
        reg = MetricsRegistry()
        result = run_churn(
            cubefit, UniformLoad(0.3),
            ChurnConfig(arrival_rate=4.0, mean_lifetime=8.0,
                        horizon=30.0, sample_every=10.0, seed=0),
            obs=reg)
        assert result.metrics is not None
        last = result.samples[-1]
        assert result.metrics["churn.tenants"]["value"] == last.tenants
        assert result.metrics["churn.servers"]["value"] == \
            last.servers_nonempty

    def test_scaling_study_metrics(self):
        reg = MetricsRegistry()
        study = scaling_study({"cubefit": cubefit}, UniformLoad(0.3),
                              tenant_counts=[50, 100], seed=0, obs=reg)
        assert study.metrics is not None
        assert study.metrics["placement.place"]["value"] == 150

    def test_cluster_experiment_metrics(self):
        from repro.cluster.experiment import (ClusterConfig,
                                              ClusterExperiment)
        reg = MetricsRegistry()
        experiment = ClusterExperiment(
            {0: [0, 1], 1: [0, 1]}, {0: 8, 1: 8},
            ClusterConfig(warmup=5.0, measure=15.0, seed=0))
        result = experiment.run(obs=reg)
        snap = reg.snapshot()
        assert snap["sim.events"]["value"] == result.events
        assert snap["cluster.queries"]["value"] >= result.completed > 0
        assert snap["cluster.query_seconds"]["count"] == \
            snap["cluster.queries"]["value"]
        assert snap["cluster.meets_sla"]["value"] in (0.0, 1.0)
