"""Benchmark E7 — ablations of CUBEFIT's design choices.

Covers the knobs the paper calls out:

* the class count K ("as the number of servers is increased, increasing
  the number of classes will yield better performance");
* the tiny-tenant policy (class K-1 versus the theoretical alpha_K
  construction — Section V-A says K-1 "is best" empirically);
* the m-fit first stage (reusing mature bins' leftover space).

Each ablation reports the server count it achieves on a fixed workload
so regressions in packing quality — not just speed — are visible.
"""

import pytest

from repro.core.cubefit import CubeFit
from repro.core.validation import audit
from repro.workloads.distributions import NormalizedClients, UniformLoad, \
    ZipfClients
from repro.workloads.sequences import generate_sequence

N_TENANTS = 3_000


@pytest.fixture(scope="module")
def uniform_sequence():
    return generate_sequence(UniformLoad(0.4), N_TENANTS, seed=0)


@pytest.fixture(scope="module")
def zipf_sequence():
    return generate_sequence(NormalizedClients(ZipfClients(3.0, 52)),
                             N_TENANTS, seed=0)


def run_config(benchmark, sequence, **config):
    def run():
        algo = CubeFit(gamma=2, **config)
        algo.consolidate(sequence)
        return algo

    algo = benchmark.pedantic(run, rounds=1, iterations=1)
    assert audit(algo.placement).ok
    benchmark.extra_info["servers"] = algo.placement.num_servers
    benchmark.extra_info["utilization"] = round(
        algo.placement.utilization(), 4)
    return algo


@pytest.mark.parametrize("k", [3, 5, 10, 15])
def test_class_count_ablation(benchmark, uniform_sequence, k):
    run_config(benchmark, uniform_sequence, num_classes=k)


def test_more_classes_pack_tighter(uniform_sequence):
    """The paper's guidance: more classes help at scale."""
    few = CubeFit(gamma=2, num_classes=3)
    few.consolidate(uniform_sequence)
    many = CubeFit(gamma=2, num_classes=10)
    many.consolidate(uniform_sequence)
    assert many.placement.num_servers <= few.placement.num_servers


@pytest.mark.parametrize("policy,k", [("last-class", 12), ("alpha", 12)])
def test_tiny_policy_ablation(benchmark, zipf_sequence, policy, k):
    run_config(benchmark, zipf_sequence, num_classes=k,
               tiny_policy=policy)


def test_last_class_policy_beats_alpha(zipf_sequence):
    """Section V-A: tiny tenants 'are best placed in class K-1 (instead
    of alpha_K)'."""
    last = CubeFit(gamma=2, num_classes=12, tiny_policy="last-class")
    last.consolidate(zipf_sequence)
    alpha = CubeFit(gamma=2, num_classes=12, tiny_policy="alpha")
    alpha.consolidate(zipf_sequence)
    assert last.placement.num_servers <= alpha.placement.num_servers


@pytest.mark.parametrize("first_stage", [True, False])
def test_first_stage_ablation(benchmark, uniform_sequence, first_stage):
    run_config(benchmark, uniform_sequence, num_classes=10,
               first_stage=first_stage)


def test_first_stage_saves_servers(uniform_sequence):
    on = CubeFit(gamma=2, num_classes=10, first_stage=True)
    on.consolidate(uniform_sequence)
    off = CubeFit(gamma=2, num_classes=10, first_stage=False)
    off.consolidate(uniform_sequence)
    assert on.placement.num_servers <= off.placement.num_servers
