"""Elastic tenancy study: tenants whose load changes over time.

The RTP baseline's setting is *elastic* in-memory clusters — a tenant's
client count (and so its load) moves with demand.  This harness drives
a placement algorithm with load-update events on a fixed tenant
population and measures what elasticity costs:

* **migrations** — load updates that moved the tenant to different
  servers (data movement an operator must pay for);
* **in-place updates** — updates absorbed by the tenant's current
  servers (CUBEFIT's slot recycling makes same-class resizes in-place
  whenever the robustness check admits them);
* fleet size over time, under the invariant that robustness holds
  after every single update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..algorithms.base import OnlinePlacementAlgorithm
from ..analysis.report import Table
from ..core.tenant import Tenant
from ..core.validation import audit
from ..errors import ConfigurationError
from ..workloads.distributions import LoadDistribution


@dataclass(frozen=True)
class ElasticityConfig:
    """Workload parameters for an elasticity run."""

    n_tenants: int = 200
    n_updates: int = 400
    #: Multiplicative resize factor range (log-uniform).
    min_factor: float = 0.5
    max_factor: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_tenants < 1 or self.n_updates < 0:
            raise ConfigurationError(
                "n_tenants must be >= 1 and n_updates >= 0")
        if not (0 < self.min_factor <= self.max_factor):
            raise ConfigurationError(
                "need 0 < min_factor <= max_factor")


@dataclass
class ElasticityResult:
    """Outcome of one elasticity run."""

    algorithm: str
    config: ElasticityConfig
    updates: int = 0
    migrations: int = 0
    in_place: int = 0
    load_migrated: float = 0.0
    servers_start: int = 0
    servers_end: int = 0
    robust_throughout: bool = True
    #: Metrics snapshot of the run (None when not instrumented).
    metrics: Optional[Dict[str, object]] = None

    @property
    def migration_rate(self) -> float:
        return self.migrations / self.updates if self.updates else 0.0

    def to_table(self) -> Table:
        table = Table(
            title=f"Elasticity — {self.algorithm}",
            columns=["updates", "migrations", "in_place",
                     "migration_rate", "load_migrated",
                     "servers_start", "servers_end"])
        table.add_row(self.updates, self.migrations, self.in_place,
                      round(self.migration_rate, 3),
                      round(self.load_migrated, 2),
                      self.servers_start, self.servers_end)
        return table


def run_elasticity(factory: Callable[[], OnlinePlacementAlgorithm],
                   distribution: LoadDistribution,
                   config: Optional[ElasticityConfig] = None,
                   audit_every: int = 50,
                   obs=None) -> ElasticityResult:
    """Place a population, then apply random resizes.

    ``audit_every`` controls how often the full robustness audit runs
    during the update stream (every update would be quadratic); the
    final state is always audited.

    ``load_migrated`` counts only the load of replicas that actually
    changed servers: a resize that moves one of gamma replicas costs
    one replica's share (``new_load / gamma``) of data movement, not
    the tenant's whole load.

    ``obs`` (a :class:`~repro.obs.MetricsRegistry`) instruments the
    run; the final snapshot lands in ``ElasticityResult.metrics``.
    """
    cfg = config if config is not None else ElasticityConfig()
    rng = np.random.default_rng(cfg.seed)
    algorithm = factory()
    from ..obs import active
    gated = active(obs)
    if gated is not None:
        algorithm.attach_obs(gated)
    loads = distribution.sample(rng, cfg.n_tenants)
    for tid, load in enumerate(loads):
        algorithm.place(Tenant(tid, float(load)))
    result = ElasticityResult(algorithm=algorithm.name, config=cfg,
                              servers_start=algorithm.placement
                              .num_nonempty_servers)
    current = {tid: float(load) for tid, load in enumerate(loads)}
    log_lo, log_hi = np.log(cfg.min_factor), np.log(cfg.max_factor)
    for step in range(cfg.n_updates):
        tid = int(rng.integers(0, cfg.n_tenants))
        factor = float(np.exp(rng.uniform(log_lo, log_hi)))
        new_load = min(max(current[tid] * factor, 1e-4), 1.0)
        before = set(algorithm.placement.tenant_servers(tid).values())
        algorithm.update_load(tid, new_load)
        after = set(algorithm.placement.tenant_servers(tid).values())
        result.updates += 1
        if after == before:
            result.in_place += 1
        else:
            result.migrations += 1
            # Only the replicas that landed on new servers move data;
            # each carries new_load / gamma of the tenant's load.
            moved = len(after - before)
            migrated = (new_load / algorithm.placement.gamma) * moved
            result.load_migrated += migrated
            if gated is not None:
                gated.counter("elasticity.migrations").inc()
                gated.histogram("elasticity.migrated_load").observe(
                    migrated)
        current[tid] = new_load
        if audit_every and (step + 1) % audit_every == 0:
            if not audit(algorithm.placement).ok:
                result.robust_throughout = False
    if not audit(algorithm.placement).ok:
        result.robust_throughout = False
    result.servers_end = algorithm.placement.num_nonempty_servers
    if gated is not None:
        result.metrics = gated.snapshot()
    return result
