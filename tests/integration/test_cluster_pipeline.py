"""Integration: fill a cluster, plan failures, run the DES, check SLA.

A miniature version of Figure 5's pipeline — small enough for the test
suite, structured identically to the benchmark.
"""

import pytest

from repro.cluster.experiment import ClusterConfig, ClusterExperiment
from repro.cluster.failures import worst_overload_failures
from repro.core.cubefit import CubeFit
from repro.algorithms.rfi import RFI
from repro.sim.figures import fill_cluster
from repro.workloads.distributions import DiscreteUniformClients


CONFIG = ClusterConfig(warmup=10.0, measure=30.0, seed=0)
SERVERS = 10


def run_scenario(factory, failures):
    filled = fill_cluster(factory, DiscreteUniformClients(1, 15),
                          max_servers=SERVERS, seed=0)
    experiment = ClusterExperiment(filled.tenant_homes,
                                   filled.tenant_clients, CONFIG)
    plan = worst_overload_failures(filled.tenant_homes,
                                   filled.tenant_clients, failures)
    return experiment.run(fail_servers=plan.failed)


class TestFailureScenarios:
    def test_cubefit3_survives_two_failures(self):
        """The paper's headline: gamma = 3 tolerates two simultaneous
        worst-case failures without dropping queries."""
        result = run_scenario(lambda: CubeFit(gamma=3, num_classes=5), 2)
        assert result.dropped == 0
        assert result.completed > 100

    def test_cubefit2_survives_one_failure_without_drops(self):
        result = run_scenario(lambda: CubeFit(gamma=2, num_classes=5), 1)
        assert result.dropped == 0

    def test_rfi_survives_one_failure_without_drops(self):
        result = run_scenario(lambda: RFI(gamma=2), 1)
        assert result.dropped == 0

    def test_latency_monotone_in_failures(self):
        filled = fill_cluster(lambda: CubeFit(gamma=3, num_classes=5),
                              DiscreteUniformClients(1, 15),
                              max_servers=SERVERS, seed=0)
        experiment = ClusterExperiment(filled.tenant_homes,
                                       filled.tenant_clients, CONFIG)
        p99s = []
        for f in (0, 1, 2):
            plan = worst_overload_failures(filled.tenant_homes,
                                           filled.tenant_clients, f)
            p99s.append(experiment.run(fail_servers=plan.failed).p99)
        # Worst-case failures should not make the hot server *faster*.
        assert p99s[1] >= p99s[0] * 0.9
        assert p99s[2] >= p99s[1] * 0.9

    def test_worst_case_hotter_than_arbitrary_failure(self):
        filled = fill_cluster(lambda: CubeFit(gamma=2, num_classes=5),
                              DiscreteUniformClients(1, 15),
                              max_servers=SERVERS, seed=0)
        experiment = ClusterExperiment(filled.tenant_homes,
                                       filled.tenant_clients, CONFIG)
        plan = worst_overload_failures(filled.tenant_homes,
                                       filled.tenant_clients, 1)
        worst = experiment.run(fail_servers=plan.failed)
        # Compare against failing some other server.
        all_servers = sorted({h for hs in filled.tenant_homes.values()
                              for h in hs})
        other = next(s for s in all_servers if s not in plan.failed)
        arbitrary = experiment.run(fail_servers=[other])
        assert worst.p99 >= arbitrary.p99 * 0.8
