"""Experiment harnesses reproducing the paper's evaluation section."""

from .scenarios import (ScaleProfile, current_scale, FULL_SCALE,
                        DEFAULT_SCALE, FULL_SCALE_ENV,
                        figure6_distributions, table1_distributions,
                        figure5_client_distributions,
                        FIGURE6_UNIFORM_MAXES, FIGURE6_ZIPF_EXPONENTS)
from .runner import (RunStats, ComparisonResult, run_once, compare,
                     AlgorithmFactory)
from .timing import ScalingPoint, ScalingStudy, scaling_study
from .churn import (ChurnConfig, ChurnSample, ChurnResult, run_churn,
                    run_churn_seeds)
from .sensitivity import (SensitivityPoint, SensitivityCurve,
                          mu_sensitivity, k_sensitivity, DEFAULT_MUS,
                          DEFAULT_KS, sla_sensitivity,
                          DEFAULT_SLA_TARGETS)
from .optgap import (GapRow, GapReport, run_opt_gap,
                     DEFAULT_GAP_ALGORITHMS)
from .elasticity import (ElasticityConfig, ElasticityResult,
                         run_elasticity)
from .soak import (SoakConfig, SoakResult, run_soak, run_soak_seeds,
                   DEFAULT_MIX)
from .chaos import (ChaosConfig, ChaosReport, FaultEvent,
                    SOAK_FAILPOINTS, default_schedule, format_schedule,
                    parse_schedule, run_chaos_soak)
from .figures import (figure5, figure6, table1, theorem2, fill_cluster,
                      FilledCluster, Figure5Result, Figure6Result,
                      Table1Result, Theorem2Result, Figure5Row,
                      Figure6Row, Table1Row, Theorem2Row,
                      figure5_configurations, THEOREM2_KS)

__all__ = [
    "ScaleProfile", "current_scale", "FULL_SCALE", "DEFAULT_SCALE",
    "FULL_SCALE_ENV", "figure6_distributions", "table1_distributions",
    "figure5_client_distributions", "FIGURE6_UNIFORM_MAXES",
    "FIGURE6_ZIPF_EXPONENTS", "RunStats", "ComparisonResult", "run_once",
    "compare", "AlgorithmFactory", "figure5", "figure6", "table1",
    "theorem2", "fill_cluster", "FilledCluster", "Figure5Result",
    "Figure6Result", "Table1Result", "Theorem2Result", "Figure5Row",
    "Figure6Row", "Table1Row", "Theorem2Row", "figure5_configurations",
    "THEOREM2_KS", "ScalingPoint", "ScalingStudy", "scaling_study",
    "ChurnConfig", "ChurnSample", "ChurnResult", "run_churn",
    "run_churn_seeds",
    "SensitivityPoint", "SensitivityCurve", "mu_sensitivity",
    "k_sensitivity", "DEFAULT_MUS", "DEFAULT_KS", "sla_sensitivity",
    "DEFAULT_SLA_TARGETS", "GapRow", "GapReport", "run_opt_gap",
    "DEFAULT_GAP_ALGORITHMS", "ElasticityConfig",
    "ElasticityResult", "run_elasticity", "SoakConfig", "SoakResult",
    "run_soak", "run_soak_seeds", "DEFAULT_MIX",
    "ChaosConfig", "ChaosReport", "FaultEvent", "SOAK_FAILPOINTS",
    "default_schedule", "format_schedule", "parse_schedule",
    "run_chaos_soak",
]
