"""Base class, registry, and shared machinery for placement algorithms.

Every consolidation algorithm in this package is *online*: it receives
tenants one at a time through :meth:`OnlinePlacementAlgorithm.place` and
must commit each tenant's ``gamma`` replicas to servers before seeing the
next tenant.

The module also provides :class:`ServerIndex`, a small numpy-backed view
over a :class:`~repro.core.placement.PlacementState` that supports the
hot operation both CUBEFIT's first stage and RFI need: *"among servers
with at least ``r`` robust availability, try candidates from the fullest
down"* without scanning every server in Python.
"""

from __future__ import annotations

import heapq
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence,
                    Tuple, Type)

import numpy as np

from .. import faults
from ..core import arrays
from ..core.arrays import SCREEN_MARGIN as _SCREEN_MARGIN
from ..core.placement import PlacementState
from ..core.tenant import LOAD_EPS, Replica, Tenant
from ..errors import ConfigurationError, FaultInjected
from ..obs import LATENCY_BUCKETS


class OnlinePlacementAlgorithm(ABC):
    """Interface all placement algorithms implement.

    Subclasses define :attr:`name` (used by the registry and reports) and
    the :meth:`_place` hook.  A fresh instance holds a fresh, empty
    :class:`PlacementState`; instances are single-use per tenant sequence.

    The public mutation entry points (:meth:`place`, :meth:`remove`,
    :meth:`update_load`) are thin instrumented wrappers around the
    ``_place`` / ``_remove`` / ``_update_load`` hooks: when a
    :class:`~repro.obs.MetricsRegistry` is attached via
    :meth:`attach_obs` they emit per-operation counters, duration
    histograms, and journal events (including ``open_server`` events
    for every server a placement opened); with nothing attached each
    wrapper pays a single ``is None`` check.

    ``gamma = 1`` (no replication, hence no failure tolerance —
    :attr:`guaranteed_failures` is 0) is accepted by the base class;
    algorithms whose guarantees require replication (RFI's one-failure
    reserve, CUBEFIT's cube geometry) enforce ``gamma >= 2`` themselves.
    """

    #: Registry/report identifier; subclasses must override.
    name: str = "abstract"

    def __init__(self, gamma: int, capacity: float = 1.0) -> None:
        if gamma < 1:
            raise ConfigurationError(
                f"replication factor gamma must be >= 1, got {gamma}")
        self.gamma = gamma
        self.placement = PlacementState(gamma=gamma, capacity=capacity)
        #: Wall-clock seconds spent inside :meth:`place` calls.
        self.placement_seconds = 0.0
        #: Attached metrics registry (None = uninstrumented).
        self._obs = None
        #: Attached durable store (None = not persisted).
        self._store = None

    # ------------------------------------------------------------------
    # Observability / durability
    # ------------------------------------------------------------------
    def attach_obs(self, registry) -> None:
        """Attach a :class:`~repro.obs.MetricsRegistry` (or detach with
        ``None``).  Respects the global ``repro.obs`` off-switch: when
        observability is disabled the attachment is a no-op."""
        from ..obs import active
        self._obs = active(registry)

    @property
    def obs(self):
        """The attached metrics registry, if any."""
        return self._obs

    def attach_store(self, store) -> None:
        """Attach a :class:`~repro.store.DurableStore` (or detach with
        ``None``).

        Once attached, every committed mutation — :meth:`place`,
        :meth:`remove`, :meth:`update_load`, plus the servers they open
        — is appended to the store's write-ahead log *after* it has been
        applied in memory, so the log never records an operation that
        failed.  Binding writes the run's invariants (gamma, capacity,
        algorithm name, failure budget) to the store's ``meta.json``.
        """
        self._store = store
        if store is not None:
            store.bind(self)

    @property
    def store(self):
        """The attached durable store, if any."""
        return self._store

    def _record_op(self, obs, kind: str, seconds: float,
                   opened_before: int, **fields) -> None:
        """Emit the metrics + journal events of one mutation."""
        obs.counter(f"placement.{kind}").inc()
        obs.histogram(f"placement.{kind}.seconds",
                      buckets=LATENCY_BUCKETS).observe(seconds)
        opened = self.placement.num_servers - opened_before
        if opened > 0:
            obs.counter("placement.servers_opened").inc(opened)
            for sid in range(opened_before, self.placement.num_servers):
                obs.emit("open_server", server=sid)
        obs.emit(kind, seconds=seconds, **fields)

    # ------------------------------------------------------------------
    # Instrumented public entry points
    # ------------------------------------------------------------------
    @abstractmethod
    def _place(self, tenant: Tenant) -> Tuple[int, ...]:
        """Place all replicas of ``tenant``; return the server ids used.

        Contract: ``chosen[j]`` is the server hosting replica ``j`` —
        the returned tuple is in replica-index order.  WAL replay
        (:mod:`repro.store.recovery`) reconstructs placements from these
        tuples via :meth:`PlacementState.place_tenant`, so an
        implementation returning servers in any other order would break
        crash recovery.
        """

    def _rollback_partial(self, tenant_id: int) -> None:
        """Unwind whatever replicas of ``tenant_id`` a hook interrupted
        by an injected fault left behind (fault-transactional place).

        Index-based algorithms heal through the placement's dirty
        tracker; algorithms with per-tenant side bookkeeping outside
        the placement (CUBEFIT's multi-replica slots) are only safe
        against faults at seams that fire *before* the hook mutates
        anything — see ``docs/testing.md``.
        """
        for index, sid in sorted(
                self.placement.tenant_servers(tenant_id).items()):
            self.placement.unplace((tenant_id, index), sid)

    def place(self, tenant: Tenant) -> Tuple[int, ...]:
        """Place all replicas of ``tenant``; return the server ids used."""
        obs = self._obs
        store = self._store
        if obs is None and store is None and not faults.active():
            return self._place(tenant)
        faults.fire("algo.place")
        before = self.placement.num_servers
        start = time.perf_counter()
        try:
            chosen = self._place(tenant)
        except FaultInjected:
            self._rollback_partial(tenant.tenant_id)
            raise
        seconds = time.perf_counter() - start
        if store is not None:
            store.log_open_through(self.placement._next_server_id)
            store.log_place(tenant.tenant_id, tenant.load, chosen)
        if obs is not None:
            self._record_op(obs, "place", seconds,
                            before, tenant=tenant.tenant_id,
                            load=tenant.load, servers=list(chosen))
        return chosen

    #: Arrival-chunk length :meth:`consolidate` hands to
    #: :meth:`place_batch`.  Large enough to amortize the per-chunk
    #: core sync and screen-cache builds, small enough that a fleet
    #: window (``repro.fleet``) holds only a few chunks resident.
    DEFAULT_BATCH = 256

    def place_batch(self, tenants: Iterable[Tenant]
                    ) -> List[Tuple[int, ...]]:
        """Place a chunk of arrivals, amortizing index work across it.

        Semantically this is exactly ``[self.place(t) for t in
        tenants]`` — packings, server counts, ``feasibility.*``
        counters, journals and WAL records are bit-identical at every
        chunk length — but inside the window the algorithm's
        :class:`ServerIndex` syncs its array core once up front and
        answers probes of same-band replica loads from a quantized
        screen cache (:meth:`ServerIndex.begin_batch`).  The window is
        always closed, even if a placement raises.
        """
        batch = tenants if isinstance(tenants, list) else list(tenants)
        if not batch:
            return []
        with self.batched(batch):
            return [self.place(tenant) for tenant in batch]

    @contextmanager
    def batched(self, batch: Sequence[Tenant]) -> Iterator[None]:
        """Open a batch window around caller-driven placements.

        For callers that must interleave their own bookkeeping with
        the placements of a chunk (e.g. a fleet shard's post-hoc
        server-budget check and rollback), instead of handing the
        whole chunk to :meth:`place_batch`::

            with algorithm.batched(chunk):
                for tenant in chunk:
                    ...algorithm.place(tenant)...

        Placements inside the window behave exactly as outside it —
        the window only lets the index amortize its sync and screen
        work across the chunk.  Always closed, even on error.
        """
        self._begin_batch(list(batch))
        try:
            yield
        finally:
            self._end_batch()

    def _begin_batch(self, batch: List[Tenant]) -> None:
        """Open a batch window (default: on the ``_index``, if any)."""
        index = getattr(self, "_index", None)
        if index is not None:
            index.begin_batch([tenant.load for tenant in batch])

    def _end_batch(self) -> None:
        index = getattr(self, "_index", None)
        if index is not None:
            index.end_batch()

    def consolidate(self, tenants: Iterable[Tenant],
                    batch_size: Optional[int] = None) -> PlacementState:
        """Place an entire (online) sequence, tracking wall time.

        Arrivals stream through :meth:`place_batch` in chunks of
        ``batch_size`` (default :attr:`DEFAULT_BATCH`; ``<= 1`` runs
        the plain sequential loop).  Chunking changes amortization
        only, never decisions, and never holds more than one chunk of
        the stream resident.  Returns the final placement for
        inspection/auditing.
        """
        if batch_size is None:
            batch_size = self.DEFAULT_BATCH
        start = time.perf_counter()
        if batch_size <= 1:
            for tenant in tenants:
                self.place(tenant)
        else:
            batch: List[Tenant] = []
            append = batch.append
            for tenant in tenants:
                append(tenant)
                if len(batch) >= batch_size:
                    self.place_batch(batch)
                    batch.clear()
            if batch:
                self.place_batch(batch)
        self.placement_seconds += time.perf_counter() - start
        return self.placement

    def _remove(self, tenant_id: int) -> None:
        """Departure hook; see :meth:`remove` for semantics."""
        self.placement.remove_tenant(tenant_id)

    def remove(self, tenant_id: int) -> None:
        """Handle a tenant's departure (dynamic tenancy).

        Removing replicas only ever lowers loads and shared loads, so
        every robustness invariant is preserved for free; subclasses
        extend the :meth:`_remove` hook to reclaim algorithm-specific
        bookkeeping (e.g. CUBEFIT shrinks an active multi-replica).
        Freed space is reused by subsequent placements through the
        normal candidate search; any :class:`ServerIndex` picks up the
        freed servers through the placement's dirty tracker.
        """
        obs = self._obs
        store = self._store
        if obs is None and store is None and not faults.active():
            self._remove(tenant_id)
            return
        faults.fire("algo.remove")
        before = self.placement.num_servers
        start = time.perf_counter()
        self._remove(tenant_id)
        seconds = time.perf_counter() - start
        if store is not None:
            store.log_remove(tenant_id)
        if obs is not None:
            self._record_op(obs, "remove", seconds,
                            before, tenant=tenant_id)

    def _update_load(self, tenant_id: int,
                     new_load: float) -> Tuple[int, ...]:
        """Elastic-resize hook; see :meth:`update_load` for semantics.

        Calls the ``_remove`` / ``_place`` hooks directly so an
        instrumented resize journals as a single ``resize`` event, not
        a remove + place pair.
        """
        self._remove(tenant_id)
        return self._place(Tenant(tenant_id, new_load))

    def update_load(self, tenant_id: int,
                    new_load: float) -> Tuple[int, ...]:
        """Handle an elastic load change (the tenant grew or shrank).

        The paper's load model is per-arrival static; elastic tenants
        (the RTP baseline's setting) change load as their client count
        changes.  The safe generic strategy is remove-and-replace: the
        tenant departs and immediately re-arrives with the new load, so
        every robustness invariant is enforced by the normal placement
        path.  The tenant may move servers — that is the migration cost
        of elasticity; subclasses can override :meth:`_update_load`
        with an in-place fast path when the new load still fits the old
        slots.

        Returns the server ids hosting the tenant afterwards.
        """
        if new_load <= 0.0:
            raise ConfigurationError(
                f"new_load must be positive, got {new_load!r}")
        if not self.placement.tenant_servers(tenant_id):
            raise ConfigurationError(
                f"tenant {tenant_id} is not placed")
        obs = self._obs
        store = self._store
        if obs is None and store is None and not faults.active():
            return self._update_load(tenant_id, new_load)
        faults.fire("algo.update_load")
        prior = None
        if faults.active():
            # Captured only under active fault injection: an injected
            # fault mid-resize restores the pre-resize replicas with
            # their exact loads (fault-transactional update_load).
            prior = [(index, sid,
                      self.placement.server(sid)
                          .replicas[(tenant_id, index)].load)
                     for index, sid in sorted(
                         self.placement.tenant_servers(tenant_id).items())]
        before = self.placement.num_servers
        start = time.perf_counter()
        try:
            chosen = self._update_load(tenant_id, new_load)
        except FaultInjected:
            self._rollback_partial(tenant_id)
            for index, sid, load in prior or ():
                self.placement.place(
                    Replica(tenant_id=tenant_id, index=index, load=load),
                    sid)
            raise
        seconds = time.perf_counter() - start
        if store is not None:
            store.log_open_through(self.placement._next_server_id)
            store.log_update_load(tenant_id, new_load, chosen)
        if obs is not None:
            self._record_op(obs, "resize", seconds,
                            before, tenant=tenant_id, load=new_load,
                            servers=list(chosen))
        return chosen

    # ------------------------------------------------------------------
    # Crash resume
    # ------------------------------------------------------------------
    def adopt(self, placement: PlacementState) -> None:
        """Resume from a recovered placement (crash restart).

        Replaces this *fresh* instance's empty placement with
        ``placement`` (typically
        :attr:`~repro.store.RecoveredState.placement`) and gives the
        algorithm a chance to rebuild its internal bookkeeping through
        the :meth:`_adopted` hook.  Algorithms whose decisions depend on
        state that is not reconstructible from the placement alone
        (CUBEFIT's cube geometry and in-flight multi-replicas) do not
        implement the hook and raise
        :class:`~repro.errors.ConfigurationError` — resume those runs
        with an adoptable algorithm instead.
        """
        if placement.gamma != self.gamma:
            raise ConfigurationError(
                f"cannot adopt placement with gamma={placement.gamma} "
                f"into {self.name!r} built for gamma={self.gamma}")
        if placement.capacity != self.placement.capacity:
            raise ConfigurationError(
                f"cannot adopt placement with capacity="
                f"{placement.capacity!r} into {self.name!r} built for "
                f"capacity={self.placement.capacity!r}")
        if self.placement.num_servers or self.placement.num_tenants:
            raise ConfigurationError(
                f"adopt requires a fresh {self.name!r} instance; this "
                f"one has already placed work")
        self.placement = placement
        self._adopted(placement)

    def _adopted(self, placement: PlacementState) -> None:
        """Rebuild algorithm-internal state after :meth:`adopt`.

        Default: refuse — only algorithms whose bookkeeping is a pure
        function of the placement can safely resume.
        """
        raise ConfigurationError(
            f"algorithm {self.name!r} cannot adopt a recovered "
            f"placement (its internal state is not reconstructible "
            f"from the placement alone)")

    # Convenience pass-throughs -------------------------------------------------
    @property
    def guaranteed_failures(self) -> int:
        """Simultaneous server failures this algorithm's packings are
        guaranteed to survive.  Default: ``gamma - 1`` (the problem's
        full budget); algorithms with a smaller reserve override it
        (RFI guarantees one failure regardless of gamma)."""
        return self.gamma - 1

    @property
    def num_servers(self) -> int:
        return self.placement.num_servers

    def describe(self) -> Dict[str, object]:
        """Summary statistics for reports."""
        return {
            "algorithm": self.name,
            "gamma": self.gamma,
            "servers": self.placement.num_servers,
            "tenants": self.placement.num_tenants,
            "utilization": self.placement.utilization(),
            "placement_seconds": self.placement_seconds,
        }


class ServerIndex:
    """Numpy-backed availability/level index over a placement.

    Tracks, per server id, the bin *level* and the *robust availability*::

        avail = capacity - level - worst_failover_load(failures)

    ``avail >= r`` is a necessary condition for placing a replica of load
    ``r`` on the server without violating the ``failures``-failure reserve
    (necessary, not sufficient, because placing the replica can also raise
    the worst-case failover load through new shared partners).  The index
    is used to prune candidates; callers re-verify exactly.

    The index subscribes to the placement's invalidation stream
    (:meth:`PlacementState.dirty_tracker`) and refreshes exactly the
    servers affected since the last query, so algorithms no longer need
    to hand-maintain refresh calls after every mutation.  :meth:`track`
    is still required when a server the algorithm wants indexed is
    opened (eligibility is an algorithm-level notion).
    """

    _GROW = 1024

    #: Lazy extraction budget of :meth:`iter_candidates`: after this
    #: many argmax pulls the remainder is sorted in one pass (a consumer
    #: that scans this deep is probably consuming everything).
    _LAZY_PULLS = 12
    #: Below this many survivors the full sort is cheaper than pulling.
    _LAZY_CUTOFF = 4
    #: Load-quantization denominator of the batched screen cache (a
    #: power of two, so band edges are exact binary rationals and the
    #: edge comparisons below are exact).
    _BAND_DENOM = 128.0
    #: Band caches kept per index before the map is reset.
    _BAND_CACHE_CAP = 128
    #: Scalar probes a :meth:`select` scan runs before it starts
    #: consulting the band screen cache (see the method's docstring).
    _SCAN_DEPTH_CACHE = 8

    def __init__(self, placement: PlacementState, failures: int,
                 probe_only: bool = False) -> None:
        self.placement = placement
        self.failures = failures
        #: Load-band -> :class:`_BandScreenCache`, consulted only while
        #: a batch is active (:meth:`begin_batch`).
        self._band_caches: Dict[int, "_BandScreenCache"] = {}
        self._batch_active = False
        #: Servers whose cached verdicts (in *every* band) are stale —
        #: one shared set, fed from the core's refresh log, patched in
        #: bulk by :meth:`_patch_band_caches`.
        self._screen_stale: set = set()
        self._screen_pos = 0
        self._screen_epoch = -1
        if probe_only:
            # Probe-only algorithms (Next Fit) never issue candidate
            # queries, so an array core would only tax their scalar
            # probes: every probed server was just mutated, so the
            # inlined fast path of :func:`robust_after_placement` fails
            # its staleness gates after paying for them.  The legacy
            # engine keeps the index usable (level/avail reads) without
            # registering a core, restoring the pre-array-core probe
            # cost.
            self._init_legacy(placement)
            return
        if arrays.enabled():
            # Array-core engine: level/avail/eligibility (and the
            # worst-failover and headroom vectors) live in a
            # struct-of-arrays mirror synced through the dirty tracker.
            # Registering it makes the same vectors serve the scalar
            # probe path (robust_after_placement) — the index's own
            # candidate queries keep them fresh, so probes right after
            # a query are pure vector reads.
            self._core: Optional[arrays.ArrayCore] = arrays.ArrayCore(
                placement, failures, eligibility=True)
            self._tracker = self._core._tracker
            placement.register_array_core(self._core)
        else:
            self._init_legacy(placement)

    def _init_legacy(self, placement: PlacementState) -> None:
        # Legacy engine (PR 4): the index maintains its own level
        # and availability arrays.  Preserved verbatim behind the
        # ``REPRO_ARRAY_CORE`` off-switch as the differential
        # reference (and used by probe-only algorithms).
        self._core = None
        self._level = np.zeros(self._GROW, dtype=np.float64)
        self._avail = np.full(self._GROW, -np.inf, dtype=np.float64)
        #: Servers eligible for candidate queries (CUBEFIT maturity).
        self._eligible = np.zeros(self._GROW, dtype=bool)
        self._size = 0
        self._tracker = placement.dirty_tracker()

    def _ensure(self, server_id: int) -> None:
        while server_id >= len(self._level):
            for attr in ("_level", "_avail", "_eligible"):
                arr = getattr(self, attr)
                if arr.dtype == bool:
                    pad = np.zeros(self._GROW, dtype=bool)
                elif attr == "_avail":
                    pad = np.full(self._GROW, -np.inf, dtype=np.float64)
                else:
                    pad = np.zeros(self._GROW, dtype=np.float64)
                setattr(self, attr, np.concatenate([arr, pad]))
        self._size = max(self._size, server_id + 1)

    def track(self, server_id: int, eligible: bool = True) -> None:
        """Start indexing ``server_id`` (must exist in the placement)."""
        if self._core is not None:
            self._core.track(server_id, eligible)
            return
        self._ensure(server_id)
        self._eligible[server_id] = eligible
        self.refresh([server_id])

    def set_eligible(self, server_id: int, eligible: bool) -> None:
        if self._core is not None:
            self._core.set_eligible(server_id, eligible)
            return
        self._ensure(server_id)
        if bool(self._eligible[server_id]) == eligible:
            return
        self._eligible[server_id] = eligible
        self.refresh([server_id])

    def is_eligible(self, server_id: int) -> bool:
        if self._core is not None:
            return self._core.is_eligible(server_id)
        return server_id < self._size and bool(self._eligible[server_id])

    def refresh(self, server_ids: Iterable[int]) -> None:
        """Recompute level/availability for the given servers.

        Ineligible servers keep ``avail = -inf`` — the sentinel doubles
        as the eligibility filter in :meth:`candidates`, which lets the
        hot query path test a single float array.  Their true
        availability is recomputed the moment :meth:`set_eligible`
        promotes them.
        """
        if self._core is not None:
            self._core.refresh(server_ids)
            return
        placement = self.placement
        servers = placement._servers
        wfl = placement.worst_failover_load
        failures = self.failures
        eligible = self._eligible
        size = self._size
        for sid in server_ids:
            if sid >= size:
                continue
            server = servers[sid]
            self._level[sid] = server.load
            if eligible[sid]:
                self._avail[sid] = (server.capacity - server.load
                                    - wfl(sid, failures))
            else:
                self._avail[sid] = -np.inf

    def sync(self) -> None:
        """Refresh every server mutated since the last query.

        Drains the placement's dirty tracker; cost is O(affected
        *eligible* servers).  Dirty servers that are currently
        ineligible are skipped — candidate queries cannot return them
        (their ``avail`` sentinel is ``-inf``), and their availability
        is recomputed from the placement if they ever become eligible —
        under CUBEFIT most mutations land on immature bins, so the skip
        saves the bulk of the failover-load recomputation.  Called
        automatically by :meth:`candidates`, :meth:`level` and
        :meth:`avail`.
        """
        if self._core is not None:
            self._core.sync()
            return
        dirty = self._tracker.drain()
        if not dirty:
            return
        placement = self.placement
        servers = placement._servers
        wfl = placement.worst_failover_load
        failures = self.failures
        eligible = self._eligible
        size = self._size
        level = self._level
        avail = self._avail
        for sid in dirty:
            if sid < size and eligible[sid]:
                server = servers[sid]
                level[sid] = server.load
                avail[sid] = (server.capacity - server.load
                              - wfl(sid, failures))

    def _arrays(self):
        """Post-sync ``(level, avail, size)`` views of either engine."""
        core = self._core
        if core is not None:
            core.sync()
            return core._load, core._avail, core.size
        if self._tracker._dirty:
            self.sync()
        return self._level, self._avail, self._size

    @staticmethod
    def _survivors(level, avail, size, min_avail, max_level, exclude):
        """Ascending ids passing the avail/level filters, or None."""
        # Ineligible servers sit at avail == -inf (see refresh), so one
        # float compare is both the availability and eligibility filter.
        mask = avail[:size] >= min_avail - LOAD_EPS
        if max_level is not None:
            mask &= level[:size] <= max_level + LOAD_EPS
        ids = np.nonzero(mask)[0]
        if exclude and len(ids):
            for excluded_id in exclude:
                ids = ids[ids != excluded_id]
        return ids

    def candidates(self, min_avail: float,
                   max_level: Optional[float] = None,
                   exclude: Iterable[int] = ()) -> List[int]:
        """Eligible servers with ``avail >= min_avail``, fullest first.

        ``max_level`` additionally caps the current level (used for RFI's
        interleaving threshold ``mu``).  ``exclude`` removes specific ids
        (e.g. servers already hosting a sibling replica); any container
        is accepted — list, tuple, set — and iterated once per call
        (the typical exclusion is the ``gamma - 1`` sibling servers, so
        a per-id vectorized compare beats ``np.isin``'s sort).
        """
        level, avail, size = self._arrays()
        if size == 0:
            return []
        ids = self._survivors(level, avail, size, min_avail, max_level,
                              exclude)
        if len(ids) == 0:
            return []
        if len(ids) == 1:
            # A single survivor needs no ordering pass.
            return [int(ids[0])]
        # Fullest (highest level) first; stable tie-break on id for
        # determinism (``ids`` is ascending, so a stable single-key
        # sort is equivalent to lexsort((ids, -level)) and cheaper).
        order = np.argsort(-level[ids], kind="stable")
        return ids[order].tolist()

    def iter_candidates(self, min_avail: float,
                        max_level: Optional[float] = None,
                        exclude: Iterable[int] = ()) -> Iterable[int]:
        """Same ids in the same order as :meth:`candidates`, lazily.

        First-feasible consumers (Best Fit scans, CUBEFIT's mature-bin
        search) typically accept one of the first few candidates; this
        pulls them by repeated masked argmax and only sorts the
        remainder if a scan runs deep, so the common probe never pays
        the full fullest-first sort of a large survivor set.

        Ordering identity with :meth:`candidates` holds because
        ``argmax`` returns the *first* maximum — over ascending ids
        that is exactly the stable sort's smallest-id tie-break.

        The sync here is *eager* (same as :meth:`candidates`).  A
        deferred-refresh variant — mask over stale availabilities, full
        refresh only when the scan reaches a dirty server — was
        prototyped for the batched pipeline and measured a net loss:
        fullest-first scans probe exactly the servers the previous
        placement just dirtied (they are the fullest), so ~97% of the
        deferred refreshes happened anyway, with the per-server call
        and generator overhead on top (see docs/performance.md).
        """
        level, avail, size = self._arrays()
        if size == 0:
            return iter(())
        ids = self._survivors(level, avail, size, min_avail, max_level,
                              exclude)
        n = len(ids)
        if n == 0:
            return iter(())
        if n == 1:
            return iter((int(ids[0]),))
        if n <= self._LAZY_CUTOFF:
            order = np.argsort(-level[ids], kind="stable")
            return iter(ids[order].tolist())
        return self._pull_candidates(ids, level[ids])

    def _pull_candidates(self, ids, keys) -> Iterator[int]:
        for _ in range(self._LAZY_PULLS):
            best = int(keys.argmax())
            if keys[best] == -np.inf:
                return
            yield int(ids[best])
            keys[best] = -np.inf
        remaining = np.nonzero(keys != -np.inf)[0]
        if len(remaining) == 0:
            return
        order = np.argsort(-keys[remaining], kind="stable")
        for position in remaining[order].tolist():
            yield int(ids[position])

    def candidates_by_id(self, min_avail: float,
                         max_level: Optional[float] = None,
                         exclude: Iterable[int] = ()) -> List[int]:
        """Filtered ids in ascending id order.

        Identical to ``sorted(candidates(...))`` without paying for the
        fullest-first sort it would immediately throw away (First Fit's
        and the offline baseline's scan order).
        """
        level, avail, size = self._arrays()
        if size == 0:
            return []
        ids = self._survivors(level, avail, size, min_avail, max_level,
                              exclude)
        return ids.tolist()

    def level(self, server_id: int) -> float:
        core = self._core
        if core is not None:
            core.sync()
            if not core.is_eligible(server_id):
                # Ineligible servers are skipped by sync; recompute.
                core._load[server_id] = \
                    self.placement._servers[server_id].load
            return float(core._load[server_id])
        self.sync()
        if server_id < self._size and not self._eligible[server_id]:
            # Ineligible servers are skipped by sync; recompute on read.
            self._level[server_id] = \
                self.placement._servers[server_id].load
        return float(self._level[server_id])

    def avail(self, server_id: int) -> float:
        """True slack of ``server_id`` (even while ineligible — the
        internal ``-inf`` eligibility sentinel is never returned)."""
        core = self._core
        if core is not None:
            core.sync()
            if not core.is_eligible(server_id):
                server = self.placement._servers[server_id]
                return float(server.capacity - server.load
                             - self.placement.worst_failover_load(
                                 server_id, self.failures))
            return float(core._avail[server_id])
        self.sync()
        if server_id < self._size and not self._eligible[server_id]:
            server = self.placement._servers[server_id]
            return float(server.capacity - server.load
                         - self.placement.worst_failover_load(
                             server_id, self.failures))
        return float(self._avail[server_id])

    # ------------------------------------------------------------------
    # Batched admission (see OnlinePlacementAlgorithm.place_batch)
    # ------------------------------------------------------------------
    def begin_batch(self, loads: Iterable[float]) -> None:
        """Open a batch window: sync the core once for the whole chunk
        and enable the load-quantized screen caches for its probes.

        ``loads`` (the chunk's replica loads) is consumed only to decide
        whether batching is worthwhile; the per-band screen verdicts are
        built lazily by :meth:`select` for exactly the bands the chunk's
        probes touch, and persist across chunks until invalidated.
        """
        self._batch_active = True
        core = self._core
        if core is None or not arrays._ENABLED \
                or self.failures <= 0 \
                or not self.placement._slack_cache_enabled \
                or self.placement.shadow_audit \
                or faults.FAILPOINTS._active:
            return
        # One eager sync per chunk: every band cache built inside this
        # window starts from fully fresh vectors, so its stale set only
        # accumulates the chunk's own mutations.
        core.sync()

    def end_batch(self) -> None:
        """Close the batch window.  The band caches are kept (their
        epoch/stale bookkeeping keeps them sound); only the *use* of
        them is gated on an active window, so sequential placements
        behave exactly as before."""
        self._batch_active = False

    def _band_of(self, replica_load: float) -> int:
        """Quantization band ``k`` with ``k/128 <= load <= (k+1)/128``.

        128 is a power of two, so the band edges are exact binary
        rationals and the correction loops below terminate after at
        most one step; they guard the float truncation of
        ``int(load * 128)`` landing one band off at exact edges.
        """
        denom = self._BAND_DENOM
        k = int(replica_load * denom)
        while k / denom > replica_load:
            k -= 1
        while (k + 1) / denom < replica_load:
            k += 1
        return k

    def _band_cache(self, replica_load: float):
        """Validated screen cache for ``replica_load``'s band, or None.

        Returns None whenever a cached verdict could diverge from the
        scalar probe: outside a batch window, with no array core, under
        shadow audit / slack-cache off / global switch off, with a zero
        failure budget, or while fault injection is active (the scalar
        probe must fire its failpoint).
        """
        if not self._batch_active or self.failures <= 0 \
                or faults.FAILPOINTS._active:
            return None
        core = self._core
        if core is None or not arrays._ENABLED \
                or not self.placement._slack_cache_enabled \
                or self.placement.shadow_audit:
            return None
        if core.refresh_epoch != self._screen_epoch:
            # Refresh-log rollover: positions are void, start over.
            self._band_caches.clear()
            self._screen_stale.clear()
            self._screen_epoch = core.refresh_epoch
            self._screen_pos = 0
        log = core.refresh_log
        if len(log) > self._screen_pos:
            self._screen_stale.update(log[self._screen_pos:])
            self._screen_pos = len(log)
        k = self._band_of(replica_load)
        cache = self._band_caches.get(k)
        if cache is None or cache.cap != len(core._cap):
            # No cache for this band yet, or the core's arrays were
            # reallocated since the build.
            return self._build_band_cache(k, core)
        if len(self._screen_stale) > 512:
            # Re-verdict the accumulated stale ids across every band in
            # one vectorized gather each (elementwise-identical to a
            # rebuild); below the threshold the consult path skips the
            # stale ids individually.
            self._patch_band_caches(core)
        return cache

    def _build_band_cache(self, k: int, core):
        """(Re)build the screen verdicts of band ``k`` from the core.

        Soundness of applying a band verdict to any load ``L`` in
        ``[lo, hi]``: IEEE-754 add/sub/mul are correctly rounded, hence
        monotone in each argument, so

        * ``empty_after(L) = (cap - load) - L >= (cap - load) - hi``
          and ``<= (cap - load) - lo`` — the band's pessimistic
          (``e_hi``) and optimistic (``e_lo``) headrooms bracket the
          scalar probe's value;
        * ``sure_inf`` uses the *optimistic* headroom against the
          necessary bound: if even ``e_lo`` rejects, so does the
          scalar's ``empty_after(L)``;
        * ``sure_feas`` uses the *pessimistic* headroom against the
          sufficient bound with the worst bump count ``hi * failures
          >= L * min(failures, n_bumped)``: if ``e_hi`` clears it, the
          scalar's band test cannot trigger, so the scalar decides
          feasible without an exact sum.

        Both implications go one way only — a probe neither verdict
        settles falls through to the scalar check unchanged.
        """
        denom = self._BAND_DENOM
        lo = k / denom
        hi = (k + 1) / denom
        # Verdicts span the core's array *capacity* so later server
        # opens patch into pre-allocated slots instead of forcing a
        # whole-array rebuild; entries past ``size`` are never read.
        head = core._cap - core._load
        wfl = core._wfl
        sure_inf = (head - lo) + LOAD_EPS < wfl - _SCREEN_MARGIN
        sure_feas = (head - hi) >= \
            (wfl + _SCREEN_MARGIN) + hi * self.failures
        cache = _BandScreenCache(lo, hi, sure_feas, sure_inf,
                                 len(core._cap))
        caches = self._band_caches
        if len(caches) >= self._BAND_CACHE_CAP:
            caches.clear()
        caches[k] = cache
        return cache

    def _patch_band_caches(self, core) -> None:
        """Recompute the stale ids' verdicts in every band, in place.

        Elementwise-identical to rebuilding each band: the build's
        whole-array expressions and this gather evaluate the same
        scalar formula per entry, and every entry *not* in the stale
        set still mirrors the core values it was built from (any core
        write is refresh-logged, hence lands in the set — deferred
        lazy-sync servers excepted, which the consult path skips via
        the live pending set until their refresh is logged too).
        """
        stale = self._screen_stale
        idx = np.fromiter(stale, dtype=np.int64, count=len(stale))
        head = core._cap[idx] - core._load[idx]
        wfl = core._wfl[idx]
        cap_len = len(core._cap)
        failures = self.failures
        caches = self._band_caches
        for k in list(caches):
            cache = caches[k]
            if cache.cap != cap_len:
                # Built against a reallocated generation; rebuilt on
                # demand the next time its band is probed.
                del caches[k]
                continue
            cache.sure_inf[idx] = \
                (head - cache.lo) + LOAD_EPS < wfl - _SCREEN_MARGIN
            cache.sure_feas[idx] = (head - cache.hi) >= \
                (wfl + _SCREEN_MARGIN) + cache.hi * failures
        stale.clear()

    def select(self, replica_load: float, chosen: Sequence[int], *,
               min_avail: float, max_level: Optional[float] = None,
               exclude: Iterable[int] = (), extra_reserve: float = 0.0,
               future_siblings: int = 0, obs=None,
               accept=None) -> Optional[int]:
        """First candidate (fullest-first) that passes the robustness
        probe, or None.

        This is the shared candidate-scan kernel of Best Fit, RFI and
        CUBEFIT's mature-bin search: it fuses :meth:`iter_candidates`
        with :func:`robust_after_placement` so a batch window can
        short-circuit probes through the band screen cache.  ``accept``
        is an optional per-candidate prefilter (CUBEFIT's tag checks)
        applied before any feasibility work.  Decisions, probe order and
        ``feasibility.*`` accounting are identical to the open-coded
        loop at every call site.

        Cache economics: the typical select accepts one of the very
        first candidates (the bench workloads average under one probe
        per select), and a scalar probe is itself a cheap vector read —
        so consulting the cache up front would cost more than it saves.
        The first :attr:`_SCAN_DEPTH_CACHE` probes therefore always run
        the scalar check, and only a scan that survives past them (the
        deep, reject-heavy tail where screen rejects cluster) validates
        the band cache and consults it for the remainder.
        """
        placement = self.placement
        failures = self.failures
        candidates = self.iter_candidates(min_avail, max_level, exclude)
        cache_pending = self._batch_active
        cache = None
        depth = 0
        stale = pending = sure_inf = sure_feas = None
        feas_ok = False
        for sid in candidates:
            if accept is not None and not accept(sid):
                continue
            depth += 1
            if cache_pending and depth > self._SCAN_DEPTH_CACHE:
                cache_pending = False
                cache = self._band_cache(replica_load)
                if cache is not None:
                    # The consult must skip any server whose core
                    # vectors are not the ones the verdicts were
                    # computed from: servers refreshed since the
                    # build/patch (``_screen_stale``, fed from the
                    # refresh log — the candidate query's eager sync
                    # ran before ``_band_cache`` took its log
                    # position) and servers left pending by a
                    # scalar-read probe (drained by that sync in
                    # practice; one lookup keeps it airtight).
                    stale = self._screen_stale
                    pending = self._core._pending
                    sure_inf = cache.sure_inf
                    sure_feas = cache.sure_feas
                    # The sufficient-bound shortcut returns without
                    # probing the sibling servers, so it is only taken
                    # when there are none (and no extra reserve, which
                    # the band verdict does not model).
                    feas_ok = not chosen and extra_reserve == 0.0
            if cache is not None \
                    and sid not in stale and sid not in pending:
                if sure_inf[sid]:
                    if obs is not None:
                        obs.counter("feasibility.screened").inc()
                    continue
                if feas_ok and sure_feas[sid]:
                    if obs is not None:
                        obs.counter("feasibility.screened").inc()
                    return sid
            if robust_after_placement(placement, sid, replica_load,
                                      chosen, failures, extra_reserve,
                                      future_siblings, obs=obs):
                return sid
        return None


class _BandScreenCache:
    """Screen verdicts of one load-quantization band (see
    :meth:`ServerIndex._build_band_cache`).

    The verdict arrays span the core's array capacity (``cap`` pins the
    allocation generation they were gathered from); staleness is
    tracked index-wide in ``ServerIndex._screen_stale``, not per band.
    """

    __slots__ = ("lo", "hi", "sure_feas", "sure_inf", "cap")

    def __init__(self, lo: float, hi: float, sure_feas, sure_inf,
                 cap: int) -> None:
        self.lo = lo
        self.hi = hi
        self.sure_feas = sure_feas
        self.sure_inf = sure_inf
        self.cap = cap


def worst_shared_sum(placement: PlacementState, server_id: int,
                     failures: int,
                     bumps: Optional[Dict[int, float]] = None,
                     extra_partners: Sequence[float] = ()) -> float:
    """Sum of the ``failures`` largest shared loads of ``server_id``.

    ``bumps`` maps partner server ids to *additional* shared load that a
    hypothetical placement would create; partners not yet in the shared
    index are allowed.  ``extra_partners`` adds hypothetical *fresh*
    partners with the given shared loads (used to anticipate sibling
    replicas that have not been placed yet).  This is the primitive
    behind the exact m-fit and RFI feasibility checks.

    Hot-path shape: with no ``bumps`` the live shared-load mapping is
    read in place (no copy), and when the failure budget covers every
    partner the values are summed without building a heap.  When a
    top-``failures`` selection is needed it comes from the placement's
    memoized :meth:`~repro.core.placement.PlacementState.top_partners`
    (invalidated through the dirty tracker), so repeated ambiguous-band
    probes against an unchanged server re-rank only the handful of
    bumped values instead of re-heaping the whole partner set.
    """
    shared: Dict[int, float] = placement.shared_partners_view(server_id)
    if failures <= 0:
        return 0.0
    if not bumps:
        survivors = len(shared) + len(extra_partners)
        if survivors == 0:
            return 0.0
        if survivors <= failures:
            return sum(shared.values()) + sum(extra_partners)
        top = placement.top_partners(server_id, failures)
        if not extra_partners:
            return sum(value for value, _ in top)
        pool = [value for value, _ in top]
        pool.extend(extra_partners)
        return sum(heapq.nlargest(failures, pool))
    new_partners = 0
    for other in bumps:
        if other != server_id and other not in shared:
            new_partners += 1
    survivors = len(shared) + new_partners + len(extra_partners)
    if survivors == 0:
        return 0.0
    if survivors <= failures:
        # Every partner survives the cut: reproduce the merged-mapping
        # summation order bit for bit — existing partners in shared
        # order (bumped in place), fresh bump partners in bump order,
        # then the extras as their own accumulation.
        total = 0.0
        for other, value in shared.items():
            extra = bumps.get(other)
            if extra is not None and other != server_id:
                total += value + extra
            else:
                total += value
        for other, extra in bumps.items():
            if other != server_id and other not in shared:
                total += extra
        return total + sum(extra_partners)
    # Ranking pass.  Any non-bumped partner appearing in the bumped
    # multiset's top-``failures`` must already sit in the memoized
    # top-``failures`` of the unbumped mapping (bumps only increase
    # values), so the cached selection minus the bumped entries, plus
    # the bumped values and the extras, is an exhaustive pool — the
    # resulting value multiset (hence the descending float sum) is
    # identical to heaping the full merged mapping.
    top = placement.top_partners(server_id, failures)
    pool = [value for value, other in top if other not in bumps]
    for other, extra in bumps.items():
        if other == server_id:
            continue
        pool.append(shared.get(other, 0.0) + extra)
    pool.extend(extra_partners)
    return sum(heapq.nlargest(failures, pool))


def exact_robust_after_placement(placement: PlacementState,
                                 server_id: int,
                                 replica_load: float,
                                 chosen: Sequence[int],
                                 failures: int,
                                 extra_reserve: float = 0.0,
                                 future_siblings: int = 0) -> bool:
    """Exact feasibility of placing a replica on ``server_id``.

    Checks that, with the replica added and shared loads bumped against
    the sibling servers in ``chosen``:

    * ``server_id`` keeps ``load + worst_failover <= capacity``,
    * every server in ``chosen`` keeps the same property (their shared
      load against ``server_id`` grows by ``replica_load``).

    ``extra_reserve`` demands additional headroom on ``server_id`` itself
    (used by policies that hold space back for future growth).

    ``future_siblings`` anticipates that this tenant still has that many
    replicas to place, each of which will add a shared load of
    ``replica_load`` against ``server_id`` and every server in ``chosen``
    — possibly on *fresh* servers, in which case no later feasibility
    check would guard these servers.  Algorithms whose fallback opens a
    new server (RFI, the naive baselines) must pass it; CUBEFIT's first
    stage rolls the whole tenant back on any failure, so its final check
    sees all shares and it may pass 0.

    This is the reference semantics; the hot paths call
    :func:`robust_after_placement`, which screens with cached-slack
    bounds and falls through to these exact sums only in the ambiguous
    band.  The two must agree on every input.
    """
    server = placement.server(server_id)
    bumps = {c: replica_load for c in chosen}
    future = [replica_load] * future_siblings
    worst = worst_shared_sum(placement, server_id, failures, bumps, future)
    empty_after = server.capacity - server.load - replica_load - extra_reserve
    if empty_after + LOAD_EPS < worst:
        return False
    for c in chosen:
        other = placement.server(c)
        worst_c = worst_shared_sum(placement, c, failures,
                                   {server_id: replica_load}, future)
        if other.capacity - other.load + LOAD_EPS < worst_c:
            return False
    return True


def robust_after_placement(placement: PlacementState, server_id: int,
                           replica_load: float, chosen: Sequence[int],
                           failures: int,
                           extra_reserve: float = 0.0,
                           future_siblings: int = 0,
                           obs=None,
                           precomputed_worst: Optional[float] = None
                           ) -> bool:
    """Screened feasibility check — same decisions as
    :func:`exact_robust_after_placement`, much cheaper per probe.

    Every condition the exact check evaluates compares a server's
    post-placement headroom against a top-``f`` sum over its *bumped*
    shared-load multiset.  Two bounds follow from the placement's
    memoized :meth:`~repro.core.placement.PlacementState
    .worst_failover_load` (``W``, a cache hit on the hot path):

    * **necessary** — bumping loads and adding partners never shrinks
      the top-``f`` sum, so headroom below ``W`` rejects outright;
    * **sufficient** — at most ``min(f, bumped partners)`` of the top
      ``f`` values grow, each by at most ``replica_load``, so headroom
      of ``W + min(f, bumped) * replica_load`` accepts outright.

    Only probes landing between the bounds (the ambiguous band) pay for
    the exact :func:`worst_shared_sum`.  ``obs`` (a
    :class:`~repro.obs.MetricsRegistry`) records the hit rate: the
    ``feasibility.screened`` counter counts calls decided purely by the
    bounds, ``feasibility.exact`` calls that needed at least one exact
    sum.
    """
    if faults.FAILPOINTS._active:
        # Inlined emptiness guard: this is the hottest seam in the
        # package (one hit per candidate probe), so the disabled cost
        # must stay at two attribute loads and a truth test.
        faults.FAILPOINTS.fire("algo.feasibility")
    # Array-core fast path, fully inlined (this is the hottest read in
    # the package, so both the accessor gates and the staleness checks
    # are flattened into one conditional): a server untouched since the
    # last refresh is answered straight from the vectors — for
    # index-driven algorithms every probe follows a candidate query,
    # whose sync just refreshed exactly these servers.  The staleness
    # memberships come first: probe-only flows (Next Fit) never drain
    # the tracker, so their probes must fail out after one set lookup.
    # Capacity and load are mirrored exactly and the expression below
    # keeps the scalar parse order, so ``empty_after`` is bit-identical
    # to the dict path (taken for dirty, untracked or ineligible
    # servers — it reads the same memoized values the next refresh
    # would assign).
    core = placement._array_cores.get(failures)
    exact_used = False
    if core is not None \
            and server_id not in core._tracker._dirty \
            and server_id not in core._pending \
            and server_id < core.size \
            and core._eligible[server_id] \
            and arrays._ENABLED \
            and placement._slack_cache_enabled \
            and not placement.shadow_audit:
        cached = core._wfl.item(server_id)
        empty_after = ((core._cap.item(server_id)
                        - core._load.item(server_id)) - replica_load) \
            - extra_reserve
    else:
        server = placement.server(server_id)
        empty_after = server.capacity - server.load - replica_load \
            - extra_reserve
        cached = (placement.worst_failover_load(server_id, failures)
                  if failures > 0 else 0.0)
    decision = True
    future: Optional[List[float]] = None
    if failures <= 0:
        decision = empty_after + LOAD_EPS >= 0.0
    else:
        if empty_after + LOAD_EPS < cached - _SCREEN_MARGIN:
            decision = False
        elif empty_after < cached + _SCREEN_MARGIN + replica_load \
                * min(failures, len(chosen) + future_siblings):
            exact_used = True
            if precomputed_worst is not None:
                # A vectorized ambiguous-band pass (ArrayCore
                # .resolve_worst) already produced this server's exact
                # bumped top-``failures`` sum, bit-identical to the
                # worst_shared_sum call below; it still counts as an
                # exact resolution.
                worst = precomputed_worst
            else:
                bumps = {c: replica_load for c in chosen}
                future = [replica_load] * future_siblings
                worst = worst_shared_sum(placement, server_id, failures,
                                         bumps, future)
            decision = empty_after + LOAD_EPS >= worst
    if decision and failures > 0 and chosen:
        sibling_delta = replica_load * min(failures, 1 + future_siblings)
        for c in chosen:
            # Sibling servers were mutated moments ago (their replicas
            # were just placed), so an array-core read would fall back
            # to the dict path anyway — consult it directly.
            other = placement.server(c)
            headroom = other.capacity - other.load
            cached_c = placement.worst_failover_load(c, failures)
            if headroom + LOAD_EPS < cached_c - _SCREEN_MARGIN:
                decision = False
                break
            if headroom >= cached_c + sibling_delta + _SCREEN_MARGIN:
                continue
            exact_used = True
            if future is None:
                future = [replica_load] * future_siblings
            worst_c = worst_shared_sum(placement, c, failures,
                                       {server_id: replica_load}, future)
            if headroom + LOAD_EPS < worst_c:
                decision = False
                break
    if obs is not None:
        obs.counter("feasibility.exact" if exact_used
                    else "feasibility.screened").inc()
    return bool(decision)


def batch_robust_after_placement(placement: PlacementState,
                                 server_ids: Sequence[int],
                                 replica_load: float,
                                 chosen: Sequence[int] = (),
                                 failures: int = 0,
                                 extra_reserve: float = 0.0,
                                 future_siblings: int = 0,
                                 obs=None) -> List[bool]:
    """Vectorized bulk form of :func:`robust_after_placement`.

    Classifies every server in ``server_ids`` with one
    :meth:`~repro.core.arrays.ArrayCore.batch_screen` pass: servers the
    necessary bound rejects are settled without touching Python-object
    state at all, and only screen-feasible or ambiguous servers fall
    through to the scalar check (which itself resolves via the cached
    bounds and drops to :func:`worst_shared_sum` in the ambiguous band).

    Decisions, ``feasibility.screened`` / ``feasibility.exact``
    accounting and ``algo.feasibility`` failpoint hits are all identical
    to calling :func:`robust_after_placement` once per id, in order.
    Falls back to exactly that loop when the array core is unavailable
    (no :class:`ServerIndex` registered one for this failure budget,
    switch off, slack cache disabled, or shadow audit).
    """
    ids = [int(sid) for sid in server_ids]
    core = placement.array_core(failures)
    if core is None:
        return [robust_after_placement(placement, sid, replica_load,
                                       chosen, failures, extra_reserve,
                                       future_siblings, obs=obs)
                for sid in ids]
    verdict = core.batch_screen(
        replica_load, n_bumped=len(chosen) + future_siblings,
        extra_reserve=extra_reserve)
    size = len(verdict)
    eligible = core._eligible
    infeasible = arrays.INFEASIBLE
    ambiguous = arrays.AMBIGUOUS
    failpoints = faults.FAILPOINTS
    # Resolve every ambiguous-band server's exact bumped top-f sum in
    # one vectorized pass (ArrayCore.resolve_worst is bit-identical to
    # the per-server worst_shared_sum the scalar check would run) —
    # worthwhile once a handful of servers land in the band.
    resolved: Dict[int, float] = {}
    if not failpoints._active:
        chosen_set = set(chosen)
        amb_ids = [sid for sid in dict.fromkeys(ids)
                   if 0 <= sid < size and eligible[sid]
                   and verdict[sid] == ambiguous
                   and sid not in chosen_set]
        if len(amb_ids) >= 4:
            worsts = core.resolve_worst(amb_ids, replica_load,
                                        chosen, future_siblings)
            resolved = dict(zip(amb_ids, (float(w) for w in worsts)))
    decisions: List[bool] = []
    screen_rejects = 0
    for sid in ids:
        if 0 <= sid < size and eligible[sid] \
                and verdict[sid] == infeasible:
            # The scalar path would fire the probe failpoint, reject on
            # the necessary bound and count one screened decision.
            if failpoints._active:
                failpoints.fire("algo.feasibility")
            screen_rejects += 1
            decisions.append(False)
        else:
            decisions.append(robust_after_placement(
                placement, sid, replica_load, chosen, failures,
                extra_reserve, future_siblings, obs=obs,
                precomputed_worst=resolved.get(sid)))
    if obs is not None and screen_rejects:
        obs.counter("feasibility.screened").inc(screen_rejects)
    return decisions


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, Type[OnlinePlacementAlgorithm]] = {}


def register(cls: Type[OnlinePlacementAlgorithm]
             ) -> Type[OnlinePlacementAlgorithm]:
    """Class decorator adding the algorithm to the global registry."""
    if not cls.name or cls.name == "abstract":
        raise ConfigurationError(
            f"{cls.__name__} must define a unique 'name'")
    if cls.name in _REGISTRY:
        raise ConfigurationError(
            f"duplicate algorithm name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def available_algorithms() -> List[str]:
    """Names of all registered algorithms."""
    return sorted(_REGISTRY)


def make_algorithm(name: str, gamma: int,
                   **kwargs) -> OnlinePlacementAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; known: {available_algorithms()}"
        ) from None
    return cls(gamma=gamma, **kwargs)
